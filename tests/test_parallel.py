"""Tests for the parallel execution subsystem (repro.parallel).

The load-bearing property is the determinism contract: sharding any run
loop across worker processes must leave the statistics *bit-identical*
to a serial run, because every unit of work seeds itself from global
indices rather than shard-local state.  These tests pit ``jobs=1``
against ``jobs=4`` at (sub-)smoke scale for each of the four wired
harnesses, and check that shard seed derivation never collides.
"""

import dataclasses
import os

import pytest

from repro.apps import get_application
from repro.errors import ReproError
from repro.hardening.fence_sets import all_fences
from repro.hardening.insertion import EmpiricalFenceInserter
from repro.litmus import run_litmus
from repro.litmus.tests import ALL_TESTS, MP
from repro.parallel import (
    SERIAL,
    CheckShard,
    LitmusShard,
    ParallelConfig,
    merge_check_shards,
    merge_litmus_shards,
    parallel_map,
    resolve_config,
    shard_ranges,
)
from repro.rng import derive_seed
from repro.scale import SMOKE
from repro.stress.environment import standard_environments
from repro.stress.strategies import FixedLocationStress
from repro.testing.campaign import run_campaign, run_cell
from repro.tuning import shipped_params
from repro.tuning.patches import scan_patches

JOBS4 = ParallelConfig(jobs=4)


class TestParallelConfig:
    def test_serial_by_default(self):
        assert ParallelConfig().serial
        assert SERIAL.serial

    def test_zero_means_cpu_count(self):
        assert ParallelConfig(jobs=0).resolve_jobs() == (
            os.cpu_count() or 1
        )

    def test_negative_jobs_rejected(self):
        with pytest.raises(ReproError):
            ParallelConfig(jobs=-1)

    def test_bad_chunks_rejected(self):
        with pytest.raises(ReproError):
            ParallelConfig(jobs=2, chunks_per_job=0)

    def test_resolve_config_prefers_explicit(self):
        scale = dataclasses.replace(SMOKE, jobs=8)
        assert resolve_config(JOBS4, scale) is JOBS4
        assert resolve_config(None, scale).jobs == 8
        assert resolve_config(None, None) is SERIAL


class TestShardRanges:
    @pytest.mark.parametrize("n", [1, 2, 7, 16, 50, 1000])
    def test_shards_tile_the_range(self, n):
        ranges = shard_ranges(n, JOBS4)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in ranges]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == n

    def test_serial_single_shard(self):
        assert shard_ranges(10, SERIAL) == [(0, 10)]

    def test_empty_range(self):
        assert shard_ranges(0, JOBS4) == []

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            shard_ranges(-1, SERIAL)


class TestMerging:
    def test_litmus_merge_sums_coverage(self):
        shards = [
            LitmusShard(0, 4, 1),
            LitmusShard(4, 8, 2),
            LitmusShard(8, 10, 0),
        ]
        assert merge_litmus_shards(shards, 10) == 3

    def test_litmus_merge_rejects_gap(self):
        with pytest.raises(ReproError):
            merge_litmus_shards(
                [LitmusShard(0, 4, 1), LitmusShard(5, 10, 0)], 10
            )

    def test_litmus_merge_rejects_short_coverage(self):
        with pytest.raises(ReproError):
            merge_litmus_shards([LitmusShard(0, 4, 1)], 10)

    def test_check_merge_finds_first_error(self):
        shards = [
            CheckShard(0, 4, None),
            CheckShard(4, 8, 6),
            CheckShard(8, 12, 9),
        ]
        assert merge_check_shards(shards, 12) == 6

    def test_check_merge_all_pass(self):
        shards = [CheckShard(0, 6, None), CheckShard(6, 12, None)]
        assert merge_check_shards(shards, 12) is None


def _square(x):
    return x * x


class TestParallelMap:
    def test_preserves_order_serial(self):
        assert parallel_map(_square, range(6), SERIAL) == [
            0, 1, 4, 9, 16, 25,
        ]

    def test_preserves_order_parallel(self):
        assert parallel_map(_square, range(25), JOBS4) == [
            i * i for i in range(25)
        ]

    def test_on_result_serial_fires_in_order(self):
        seen = []
        parallel_map(
            _square, range(6), SERIAL,
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert seen == [(i, i * i) for i in range(6)]

    def test_on_result_parallel_covers_every_index(self):
        # Completion order is arbitrary under a pool (checkpointing must
        # not wait for a slow early chunk), but every (index, result)
        # pair is reported exactly once and the returned list is still
        # in input order.
        seen = []
        out = parallel_map(
            _square, range(25), JOBS4,
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert out == [i * i for i in range(25)]
        assert sorted(seen) == [(i, i * i) for i in range(25)]

    def test_on_result_exception_aborts_the_map(self):
        def bomb(index, result):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            parallel_map(_square, range(6), SERIAL, on_result=bomb)


class TestLitmusDeterminism:
    def test_jobs1_vs_jobs4_identical(self, titan):
        # A configuration known to exhibit weak behaviours, so the
        # equality below is not vacuous (0 == 0).
        spec = FixedLocationStress((0, 64), ("st", "ld"))
        serial = run_litmus(titan, MP, 64, spec, 50, seed=3)
        sharded = run_litmus(
            titan, MP, 64, spec, 50, seed=3, parallel=JOBS4
        )
        assert serial.weak > 0
        assert serial == sharded

    def test_odd_execution_counts_shard_cleanly(self, titan):
        spec = FixedLocationStress((64,), ("st", "ld"))
        for executions in (1, 3, 17):
            serial = run_litmus(titan, MP, 64, spec, executions, seed=5)
            sharded = run_litmus(
                titan, MP, 64, spec, executions, seed=5,
                parallel=ParallelConfig(jobs=3),
            )
            assert serial == sharded


class TestTuningDeterminism:
    def test_patch_scan_identical(self, titan):
        scale = dataclasses.replace(
            SMOKE,
            max_distance=96,
            distance_step=32,
            max_location=96,
            location_step=32,
            executions=12,
        )
        serial = scan_patches(titan, scale, seed=3)
        sharded = scan_patches(titan, scale, seed=3, parallel=JOBS4)
        assert serial.counts == sharded.counts
        assert sum(serial.counts.values()) > 0

    def test_scale_jobs_knob_feeds_the_grid(self, titan):
        scale = dataclasses.replace(
            SMOKE,
            max_distance=64,
            distance_step=32,
            max_location=64,
            location_step=32,
            executions=8,
        )
        serial = scan_patches(titan, scale, seed=3)
        via_scale = scan_patches(titan, scale.with_jobs(4), seed=3)
        assert serial.counts == via_scale.counts


class TestCampaignDeterminism:
    def test_grid_identical(self, k20):
        scale = dataclasses.replace(SMOKE, campaign_runs=6)
        apps = [get_application("cbe-dot"), get_application("cbe-ht")]
        envs = ["no-str-", "sys-str+"]
        serial = run_campaign(
            [k20], apps=apps, environments=envs, scale=scale, seed=3
        )
        sharded = run_campaign(
            [k20], apps=apps, environments=envs, scale=scale, seed=3,
            parallel=JOBS4,
        )
        assert serial == sharded
        assert any(cell.errors for cell in serial)

    def test_run_cell_identical(self, k20):
        env = {
            e.name: e
            for e in standard_environments(shipped_params("K20"))
        }["sys-str+"]
        app = get_application("cbe-dot")
        serial = run_cell(app, k20, env, runs=7, seed=2)
        sharded = run_cell(
            app, k20, env, runs=7, seed=2, parallel=JOBS4
        )
        assert serial == sharded


class TestHardeningDeterminism:
    def _inserters(self, titan):
        app = get_application("cbe-dot")
        scale = dataclasses.replace(SMOKE, stability_runs=20)
        return (
            EmpiricalFenceInserter(app, titan, scale=scale, seed=1),
            EmpiricalFenceInserter(
                app, titan, scale=scale, seed=1, parallel=JOBS4
            ),
            app,
        )

    def test_passing_check_identical(self, titan):
        serial, sharded, app = self._inserters(titan)
        fences = all_fences(app)
        assert serial.check_application(fences, 12) is True
        assert sharded.check_application(fences, 12) is True
        assert serial.check_runs == sharded.check_runs == 12

    def test_failing_check_stops_at_same_run(self, titan):
        serial, sharded, _app = self._inserters(titan)
        # No fences at all: the check should fail, and the parallel
        # merge must report the exact run a serial early-exit loop
        # would have stopped on (identical counter advance).
        assert serial.check_application(frozenset(), 40) is False
        assert sharded.check_application(frozenset(), 40) is False
        assert serial.check_runs == sharded.check_runs
        assert serial._check_counter == sharded._check_counter


class TestSeedDerivation:
    def test_no_collisions_across_shard_grid(self, titan):
        # Every (test, distance, location, execution) combination used
        # by a sharded patch scan must map to a distinct seed; a
        # collision would correlate supposedly independent executions.
        seeds = set()
        count = 0
        for test in ALL_TESTS:
            for d in range(0, 96, 32):
                for l in range(0, 96, 32):
                    cell_seed = derive_seed(0, "patch", test.name, d, l)
                    for i in range(24):
                        seeds.add(
                            derive_seed(
                                cell_seed, titan.short_name,
                                test.name, d, i,
                            )
                        )
                        count += 1
        assert len(seeds) == count

    def test_shard_boundaries_do_not_touch_seeds(self):
        # The seed of execution i is a function of i alone — recompute
        # the stream under two different shardings and compare.
        stream = [derive_seed(7, "K20", "MP", 64, i) for i in range(40)]
        for config in (SERIAL, ParallelConfig(jobs=3), JOBS4):
            rebuilt = []
            for start, stop in shard_ranges(40, config):
                rebuilt.extend(
                    derive_seed(7, "K20", "MP", 64, i)
                    for i in range(start, stop)
                )
            assert rebuilt == stream


class TestSharedPool:
    def test_serial_config_gets_no_pool(self):
        from repro.parallel import shared_pool

        assert shared_pool(SERIAL) is None

    def test_pool_cached_per_worker_count(self):
        from repro.parallel import close_shared_pools, shared_pool

        try:
            two = shared_pool(ParallelConfig(jobs=2))
            assert shared_pool(ParallelConfig(jobs=2)) is two
            three = shared_pool(ParallelConfig(jobs=3))
            assert three is not two
        finally:
            close_shared_pools()

    def test_close_forgets_pools(self):
        from repro.parallel import close_shared_pools, shared_pool

        pool = shared_pool(ParallelConfig(jobs=2))
        close_shared_pools()
        try:
            assert shared_pool(ParallelConfig(jobs=2)) is not pool
        finally:
            close_shared_pools()

    def test_pool_reuse_identical_results(self):
        from repro.parallel import close_shared_pools, shared_pool

        config = ParallelConfig(jobs=2)
        items = list(range(20))
        expected = parallel_map(_square, items, config)
        try:
            pool = shared_pool(config)
            first = parallel_map(_square, items, config, pool=pool)
            second = parallel_map(_square, items, config, pool=pool)
            assert first == second == expected
        finally:
            close_shared_pools()


def _square(x):
    return x * x


class TestResultHookError:
    def test_hook_failure_is_typed_with_index(self):
        from repro.errors import ResultHookError

        def hook(index, result):
            if index == 2:
                raise RuntimeError("disk full")

        with pytest.raises(ResultHookError) as info:
            parallel_map(_square, [1, 2, 3, 4], SERIAL, on_result=hook)
        assert info.value.index == 2
        assert "disk full" in str(info.value)

    def test_hook_raising_typed_error_passes_through(self):
        from repro.errors import ResultHookError

        original = ResultHookError(index=1, key="litmus:k", detail="x")

        def hook(index, result):
            raise original

        with pytest.raises(ResultHookError) as info:
            parallel_map(_square, [1, 2], SERIAL, on_result=hook)
        assert info.value is original
        assert info.value.key == "litmus:k"

    def test_submit_units_hook_error_names_content_key(self, tmp_path):
        # A checkpoint failure mid-campaign must surface the content key
        # of the record that could not be written.
        from repro.errors import ResultHookError
        from repro.litmus.units import litmus_unit
        from repro.store import RunLedger, litmus_key, submit_units
        from repro.stress.strategies import NoStress

        key = litmus_key("K20", "MP", "no-str", 64, 8, 0)
        unit = litmus_unit(key, "K20", "MP", 64, NoStress(), 8, seed=0)
        ledger = RunLedger.create(tmp_path / "led")

        class Exploding:
            def write(self, record):
                raise OSError("disk full")

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return None

        ledger.writer = lambda: Exploding()
        with pytest.raises(ResultHookError) as info:
            submit_units([unit], SERIAL, ledger)
        assert info.value.key == key
        assert "disk full" in str(info.value)


class TestWorkUnits:
    def _unit(self):
        from repro.litmus.units import litmus_unit
        from repro.store import litmus_key
        from repro.stress.strategies import NoStress

        key = litmus_key("K20", "MP", "no-str", 64, 8, 0)
        return litmus_unit(key, "K20", "MP", 64, NoStress(), 8, seed=0)

    def test_json_round_trip(self):
        from repro.parallel import WorkUnit

        unit = self._unit()
        assert WorkUnit.from_json(unit.to_json()) == unit

    def test_malformed_json_refused(self):
        from repro.parallel import WorkUnit

        for bad in (None, 17, {}, {"kind": "litmus"},
                    {"kind": 1, "key": "k", "spec": {}}):
            with pytest.raises(ReproError):
                WorkUnit.from_json(bad)

    def test_unknown_kind_refused(self):
        from repro.parallel import WorkUnit, execute_unit

        unit = WorkUnit(kind="no-such-kind", key="k", spec={})
        with pytest.raises(ReproError, match="no executor"):
            execute_unit(unit)

    def test_executor_key_mismatch_refused(self):
        from repro.litmus.units import execute_litmus_unit
        from repro.parallel import WorkUnit, execute_unit, plan

        unit = WorkUnit(kind="mismatch-kind", key="expected", spec={})
        record_unit = self._unit()
        plan.register_executor(
            "mismatch-kind", lambda u: execute_litmus_unit(record_unit)
        )
        try:
            with pytest.raises(ReproError, match="returned record key"):
                execute_unit(unit)
        finally:
            plan._EXECUTORS.pop("mismatch-kind", None)

    def test_run_units_matches_direct_execution(self):
        from repro.litmus.units import execute_litmus_unit
        from repro.parallel import run_units

        unit = self._unit()
        assert run_units([unit]) == [execute_litmus_unit(unit)]

    def test_run_units_streams_records(self):
        from repro.parallel import run_units

        unit = self._unit()
        seen = []
        run_units([unit], SERIAL, on_record=lambda i, r: seen.append((i, r.key)))
        assert seen == [(0, unit.key)]
