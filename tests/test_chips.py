"""Tests for chip profiles and the registry (paper Table 1)."""

import numpy as np
import pytest

from repro.chips import (
    CHIP_ORDER,
    SC_REFERENCE,
    all_chips,
    get_chip,
    table1_rows,
)
from repro.chips.power import NvmlSession, PowerModel
from repro.errors import PowerQueryUnsupportedError, UnknownChipError


class TestRegistry:
    def test_seven_chips(self):
        assert len(all_chips()) == 7

    def test_table1_order(self):
        assert CHIP_ORDER == (
            "980", "K5200", "Titan", "K20", "770", "C2075", "C2050",
        )

    def test_unknown_chip_raises(self):
        with pytest.raises(UnknownChipError):
            get_chip("H100")

    def test_reference_included_on_request(self):
        chips = all_chips(include_reference=True)
        assert chips[-1] is SC_REFERENCE

    def test_table1_rows_match_paper(self):
        rows = table1_rows()
        by_short = {r["short name"]: r for r in rows}
        assert by_short["980"]["architecture"] == "Maxwell"
        assert by_short["980"]["released"] == 2014
        assert by_short["K5200"]["architecture"] == "Kepler"
        assert by_short["Titan"]["released"] == 2013
        assert by_short["K20"]["architecture"] == "Kepler"
        assert by_short["770"]["released"] == 2013
        assert by_short["C2075"]["architecture"] == "Fermi"
        assert by_short["C2050"]["released"] == 2010

    @pytest.mark.parametrize("name", CHIP_ORDER)
    def test_patch_sizes_match_paper_table2(self, name):
        chip = get_chip(name)
        expected = {
            "980": 64, "K5200": 32, "Titan": 32, "K20": 32,
            "770": 32, "C2075": 64, "C2050": 64,
        }[name]
        assert chip.patch_size == expected

    def test_power_support_matches_paper(self):
        supported = {
            c.short_name for c in all_chips() if c.supports_power
        }
        assert supported == {"K5200", "Titan", "K20", "C2075"}


class TestChannelMapping:
    @pytest.mark.parametrize("name", CHIP_ORDER)
    def test_channel_constant_within_patch(self, name):
        chip = get_chip(name)
        base = 3 * chip.patch_size * chip.n_channels
        channels = {chip.channel(base + i) for i in range(chip.patch_size)}
        assert len(channels) == 1

    @pytest.mark.parametrize("name", CHIP_ORDER)
    def test_channel_changes_across_patch_boundary(self, name):
        chip = get_chip(name)
        assert chip.channel(0) != chip.channel(chip.patch_size)

    @pytest.mark.parametrize("name", CHIP_ORDER)
    def test_channel_period(self, name):
        chip = get_chip(name)
        period = chip.patch_size * chip.n_channels
        for addr in (0, 7, chip.patch_size + 3):
            assert chip.channel(addr) == chip.channel(addr + period)


class TestSensitivity:
    @pytest.mark.parametrize("name", CHIP_ORDER)
    def test_sensitivity_in_unit_range(self, name):
        sens = get_chip(name).sensitivity
        assert np.all(sens >= 0.0) and np.all(sens <= 1.0)

    @pytest.mark.parametrize("name", CHIP_ORDER)
    def test_at_least_two_responsive_channels(self, name):
        sens = get_chip(name).sensitivity
        assert np.count_nonzero(sens > 0.1) >= 2

    def test_sensitivity_is_stable(self):
        chip = get_chip("K20")
        assert np.array_equal(chip.sensitivity, chip.sensitivity)

    def test_sensitivity_is_readonly(self):
        with pytest.raises(ValueError):
            get_chip("K20").sensitivity[0] = 0.5


class TestSequenceStrength:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            get_chip("K20").sequence_strength(())

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            get_chip("K20").sequence_strength(("ld", "nop"))

    @pytest.mark.parametrize("name", CHIP_ORDER)
    def test_store_only_is_weak(self, name):
        chip = get_chip(name)
        weak = chip.sequence_strength(("st", "st", "st"))
        strong = chip.sequence_strength(chip.best_sequence)
        assert weak < 0.1 * strong

    @pytest.mark.parametrize("name", CHIP_ORDER)
    def test_best_sequence_is_global_maximum(self, name):
        import itertools

        chip = get_chip(name)
        best = chip.sequence_strength(chip.best_sequence)
        for length in range(1, 6):
            for seq in itertools.product(("ld", "st"), repeat=length):
                assert chip.sequence_strength(seq) <= best

    def test_rotations_not_equivalent(self):
        # Paper Sec. 3.3: rotationally equivalent sequences can score
        # differently.
        chip = get_chip("Titan")
        a = chip.sequence_strength(("ld", "st"))
        b = chip.sequence_strength(("st", "ld"))
        assert a != b


class TestTurbulence:
    @pytest.mark.parametrize("name", CHIP_ORDER)
    def test_two_hot_channels_is_peak(self, name):
        chip = get_chip(name)
        values = [chip.turbulence(h) for h in range(9)]
        assert values[2] == max(values)
        assert values[0] == 0.0

    def test_clamps_to_table_end(self):
        chip = get_chip("K20")
        assert chip.turbulence(100) == chip.turbulence(
            len(chip.turbulence_factors) - 1
        )


class TestScReference:
    def test_all_weak_knobs_zero(self):
        chip = SC_REFERENCE
        assert chip.reorder_base == 0.0
        assert chip.store_swap_leak == 0.0
        assert chip.load_delay_base == 0.0
        assert chip.reorder_gain == 0.0
        assert chip.load_delay_gain == 0.0
        assert all(t == 0.0 for t in chip.turbulence_factors)


class TestPowerModel:
    def test_idle_power_when_no_work(self, k20):
        assert PowerModel(k20).average_power(0, 0) == k20.idle_watts

    def test_full_activity_reaches_active_watts(self, k20):
        assert PowerModel(k20).average_power(1000, 0) == pytest.approx(
            k20.active_watts
        )

    def test_stalls_reduce_average_power(self, k20):
        model = PowerModel(k20)
        busy_only = model.average_power(1000, 0)
        with_stalls = model.average_power(500, 500)
        assert with_stalls < busy_only

    def test_energy_scales_with_time(self, k20):
        model = PowerModel(k20)
        assert model.energy_joules(2000, 0) == pytest.approx(
            2 * model.energy_joules(1000, 0)
        )

    def test_unsupported_chip_raises(self):
        session = NvmlSession(get_chip("980"))
        with pytest.raises(PowerQueryUnsupportedError):
            session.query_power(100, 0)

    def test_supported_chip_returns_sample(self, k20):
        sample = NvmlSession(k20).query_power(100, 10)
        assert k20.idle_watts <= sample.watts <= k20.active_watts
