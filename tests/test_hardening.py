"""Tests for empirical fence insertion (paper Sec. 5, Algorithm 1)."""

import dataclasses

import pytest

from repro.apps import get_application
from repro.errors import FenceInsertionError
from repro.hardening import (
    all_fences,
    empirical_fence_insertion,
    split_fences,
    sorted_sites,
)
from repro.hardening.insertion import EmpiricalFenceInserter
from repro.scale import SMOKE

FAST = dataclasses.replace(SMOKE, stability_runs=30)


class TestFenceSets:
    def test_all_fences_covers_every_site(self):
        app = get_application("cbe-dot")
        assert all_fences(app) == frozenset(app.sites())

    def test_sorted_sites_in_program_order(self):
        app = get_application("cbe-dot")
        assert sorted_sites(app, all_fences(app)) == list(app.sites())

    def test_sorted_sites_rejects_foreign(self):
        app = get_application("cbe-dot")
        with pytest.raises(ValueError):
            sorted_sites(app, frozenset({"not-a-site"}))

    def test_split_halves_by_code_location(self):
        app = get_application("cub-scan-nf")
        first, second = split_fences(app, all_fences(app))
        assert first | second == all_fences(app)
        assert not first & second
        order = {s: i for i, s in enumerate(app.sites())}
        assert max(order[s] for s in first) < min(order[s] for s in second)

    def test_split_single_fence(self):
        app = get_application("cbe-dot")
        first, second = split_fences(app, frozenset({app.sites()[0]}))
        assert first == frozenset()
        assert len(second) == 1


class _FakeOracle(EmpiricalFenceInserter):
    """Deterministic CheckApplication for algorithm-logic tests:
    a fence set passes iff it contains all required sites."""

    def __init__(self, app, required):
        # Bypass parent init: no chip needed for the pure algorithm.
        self.app = app
        self.required = frozenset(required)
        self.check_runs = 0
        self._check_counter = 0

    def check_application(self, fences, iterations):
        self.check_runs += iterations
        return self.required <= fences

    def empirically_stable(self, fences):
        return self.required <= fences

    def run(self, initial_iterations=4):
        initial = all_fences(self.app)
        after_binary = self.binary_reduction(initial, initial_iterations)
        return self.linear_reduction(after_binary, initial_iterations)


class TestAlgorithmLogic:
    @pytest.mark.parametrize(
        "app_name", ["cbe-dot", "cub-scan-nf", "ls-bh-nf", "tpo-tm"]
    )
    def test_reduction_finds_exactly_required(self, app_name):
        app = get_application(app_name)
        required = app.required_sites()
        oracle = _FakeOracle(app, required)
        assert oracle.run() == required

    def test_reduction_with_no_required_fences_empties(self):
        app = get_application("cbe-dot")
        oracle = _FakeOracle(app, frozenset())
        assert oracle.run() == frozenset()

    def test_reduction_keeps_all_when_all_required(self):
        app = get_application("cbe-dot")
        oracle = _FakeOracle(app, all_fences(app))
        assert oracle.run() == all_fences(app)

    def test_binary_reduction_worst_case_returns_input(self):
        # Required fences split across both halves: binary reduction
        # cannot remove either half (paper Sec. 5.1).
        app = get_application("cub-scan-nf")
        sites = list(app.sites())
        required = frozenset({sites[0], sites[-1]})
        oracle = _FakeOracle(app, required)
        result = oracle.binary_reduction(all_fences(app), 1)
        assert result == all_fences(app)

    def test_linear_reduction_minimises_after_binary(self):
        app = get_application("cub-scan-nf")
        sites = list(app.sites())
        required = frozenset({sites[0], sites[-1]})
        oracle = _FakeOracle(app, required)
        reduced = oracle.linear_reduction(all_fences(app), 1)
        assert reduced == required


class _RestartOracle(EmpiricalFenceInserter):
    """Full ``run()`` harness with a deterministic oracle: removals
    always pass their checks, and the stability verdict is scripted —
    so the restart loop's accounting is testable without simulation."""

    def __init__(self, app, chip, max_restarts, stable_after):
        # Bypass parent init: no engine/environment needed.
        self.app = app
        self.chip = chip
        self.max_restarts = max_restarts
        self._stable_after = stable_after
        self._stability_checks = 0
        self.check_runs = 0
        self._check_counter = 0

    def check_application(self, fences, iterations):
        self.check_runs += 1
        return True

    def empirically_stable(self, fences):
        self._stability_checks += 1
        return self._stability_checks >= self._stable_after

    @property
    def environment(self):  # pragma: no cover - never consulted
        raise AssertionError("oracle has no testing environment")


class TestRestartAccounting:
    """The two insertion bugfixes: ``iterations_used`` reports the last
    pass actually run, and exhausted restarts return instead of
    raising."""

    def test_unconverged_reports_last_budget_actually_run(self, titan):
        # 3 restarts at 4 -> 8 -> 16 iterations, never stable: the old
        # code reported 32 (the doubling past loop exit).
        oracle = _RestartOracle(
            get_application("cbe-dot"), titan, max_restarts=3,
            stable_after=10**9,
        )
        result = oracle.run(initial_iterations=4)
        assert not result.converged
        assert result.iterations_used == 16

    def test_unconverged_is_a_result_not_an_exception(self, titan):
        oracle = _RestartOracle(
            get_application("cbe-dot"), titan, max_restarts=2,
            stable_after=10**9,
        )
        result = oracle.run(initial_iterations=4)
        assert not result.converged
        assert result.chip == "Titan"
        # The all-removals-pass oracle reduces to the empty set.
        assert result.reduced == frozenset()

    def test_converged_on_first_pass_keeps_initial_budget(self, titan):
        oracle = _RestartOracle(
            get_application("cbe-dot"), titan, max_restarts=4,
            stable_after=1,
        )
        result = oracle.run(initial_iterations=8)
        assert result.converged
        assert result.iterations_used == 8

    def test_converged_after_restart_reports_doubled_budget(self, titan):
        oracle = _RestartOracle(
            get_application("cbe-dot"), titan, max_restarts=4,
            stable_after=3,
        )
        result = oracle.run(initial_iterations=8)
        assert result.converged
        assert result.iterations_used == 32  # 8 -> 16 -> 32, stable

    def test_zero_restarts_raises_before_any_work(self, titan):
        inserter = EmpiricalFenceInserter(
            get_application("cbe-dot"), titan, scale=FAST,
            max_restarts=0,
        )
        with pytest.raises(FenceInsertionError, match="max_restarts"):
            inserter.run()
        assert inserter.check_runs == 0

    def test_negative_restarts_raise(self, titan):
        oracle = _RestartOracle(
            get_application("cbe-dot"), titan, max_restarts=-1,
            stable_after=1,
        )
        with pytest.raises(FenceInsertionError):
            oracle.run()


class TestEndToEnd:
    @pytest.mark.slow
    def test_cbe_dot_converges_to_single_fence(self, titan):
        app = get_application("cbe-dot")
        result = empirical_fence_insertion(
            app, titan, scale=FAST, seed=1
        )
        assert result.converged
        assert result.reduced == app.required_sites()
        assert result.initial_fences == len(app.sites())

    @pytest.mark.slow
    def test_cbe_ht_converges_to_single_fence(self, titan):
        app = get_application("cbe-ht")
        result = empirical_fence_insertion(app, titan, scale=FAST, seed=1)
        assert result.converged
        assert len(result.reduced) == 1

    @pytest.mark.slow
    def test_result_row_shape(self, titan):
        app = get_application("cbe-dot")
        result = empirical_fence_insertion(app, titan, scale=FAST, seed=2)
        row = result.table6_row()
        assert row["app"] == "cbe-dot"
        assert row["init."] == 4
        assert row["red."] >= 1
