"""Tests for sequences, strategies, randomisation and environments."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidSequenceError, InvalidStressConfigError
from repro.stress import (
    CacheStress,
    FixedLocationStress,
    NoStress,
    RandomStress,
    StressConfig,
    TunedStress,
    all_sequences,
    format_sequence,
    parse_sequence,
    randomise_thread_ids,
    standard_environments,
)
from repro.stress.environment import ENVIRONMENT_ORDER
from repro.stress.randomisation import respects_blocks, respects_warps
from repro.stress.strategies import with_threads_range
from repro.tuning import shipped_params


class TestSequences:
    def test_count_matches_paper(self):
        # Length <= 5 over {ld, st}: 2+4+8+16+32 = 62 sequences (the
        # paper quotes 63 via the 2^(n+1)-1 node count of the binary
        # trie, which includes the empty root).
        assert len(all_sequences(5)) == 62

    def test_all_unique(self):
        seqs = all_sequences(5)
        assert len(set(seqs)) == len(seqs)

    def test_bad_length_rejected(self):
        with pytest.raises(InvalidSequenceError):
            all_sequences(0)

    @pytest.mark.parametrize(
        "seq,text",
        [
            (("ld",), "ld"),
            (("st", "st"), "st2"),
            (("ld", "st", "st", "ld"), "ld st2 ld"),
            (("ld",) * 4 + ("st",), "ld4 st"),
            (("ld", "ld", "ld", "st", "ld"), "ld3 st ld"),
        ],
    )
    def test_format_matches_paper_notation(self, seq, text):
        assert format_sequence(seq) == text

    @given(
        seq=st.lists(
            st.sampled_from(["ld", "st"]), min_size=1, max_size=8
        ).map(tuple)
    )
    def test_property_parse_roundtrips_format(self, seq):
        assert parse_sequence(format_sequence(seq)) == seq

    @pytest.mark.parametrize("bad", ["", "add", "ld0x", "ld-1"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(InvalidSequenceError):
            parse_sequence(bad)


class TestStressConfig:
    def test_table2_row(self):
        config = shipped_params("Titan")
        row = config.table2_row()
        assert row["chip"] == "Titan"
        assert row["c. patch size"] == 32
        assert row["sequence"] == "ld st2 ld"
        assert row["spread"] == 2

    def test_invalid_spread_rejected(self):
        with pytest.raises(ValueError):
            StressConfig("x", 32, ("ld",), spread=0)
        with pytest.raises(ValueError):
            StressConfig("x", 32, ("ld",), spread=100, scratch_regions=64)

    def test_scratch_words(self):
        config = StressConfig("x", 32, ("ld",), 2, scratch_regions=16)
        assert config.scratch_words == 512


class TestStrategies:
    def test_no_stress_zero_field(self, k20, rng):
        field = NoStress().build(k20, 1024, 4096, rng)
        assert field.press.sum() == 0
        assert NoStress().stress_units(30, rng) == 0

    def test_fixed_location_out_of_bounds(self, k20, rng):
        spec = FixedLocationStress((9999,), ("ld", "st"))
        with pytest.raises(InvalidStressConfigError):
            spec.build(k20, 1024, 4096, rng)

    def test_tuned_stress_uses_spread(self, k20, rng):
        spec = TunedStress(shipped_params("K20"))
        field = spec.build(k20, 0, 4096, rng)
        assert np.count_nonzero(field.press) <= 2
        assert field.press.max() > 0

    def test_tuned_stress_rejects_tiny_scratchpad(self, k20, rng):
        spec = TunedStress(shipped_params("K20"))
        with pytest.raises(InvalidStressConfigError):
            spec.build(k20, 0, k20.patch_size, rng)

    def test_tuned_stress_units_in_paper_range(self, k20, rng):
        spec = TunedStress(shipped_params("K20"))
        for _ in range(50):
            units = spec.stress_units(100, rng)
            assert 1 <= units <= 50  # 15%-50% of application blocks

    def test_rand_stress_is_diffuse(self, k20, rng):
        field = RandomStress().build(k20, 0, 4096, rng)
        assert field.hot_channels == 0

    def test_cache_stress_touches_all_channels(self, k20, rng):
        field = CacheStress().build(k20, 0, 4096, rng)
        assert np.all(field.press > 0)

    def test_with_threads_range(self, k20, rng):
        spec = with_threads_range(TunedStress(shipped_params("K20")),
                                  (8, 16))
        assert spec.threads_range == (8, 16)
        assert with_threads_range(NoStress(), (8, 16)) == NoStress()


class TestRandomisation:
    @pytest.mark.parametrize(
        "grid,block,warp", [(4, 32, 32), (8, 16, 8), (2, 10, 4), (1, 8, 8)]
    )
    def test_permutation_is_bijective(self, grid, block, warp, rng):
        perm = randomise_thread_ids(grid, block, warp, rng)
        assert sorted(perm) == list(range(grid * block))

    @given(
        grid=st.integers(1, 6),
        block_warps=st.integers(1, 4),
        warp=st.sampled_from([4, 8]),
        seed=st.integers(0, 1000),
    )
    def test_property_respects_membership(
        self, grid, block_warps, warp, seed
    ):
        block = block_warps * warp
        rng = np.random.default_rng(seed)
        perm = randomise_thread_ids(grid, block, warp, rng)
        assert respects_blocks(perm, grid, block)
        assert respects_warps(perm, grid, block, warp)

    def test_tail_warp_stays_in_place(self, rng):
        grid, block, warp = 2, 10, 4  # tail warp of 2 threads
        perm = randomise_thread_ids(grid, block, warp, rng)
        assert respects_warps(perm, grid, block, warp)

    def test_bad_dims_rejected(self, rng):
        with pytest.raises(ValueError):
            randomise_thread_ids(0, 8, 8, rng)


class TestEnvironments:
    def test_eight_environments_in_order(self):
        envs = standard_environments(shipped_params("K20"))
        assert tuple(e.name for e in envs) == ENVIRONMENT_ORDER

    def test_randomisation_suffix(self):
        envs = {e.name: e for e in
                standard_environments(shipped_params("K20"))}
        assert envs["sys-str+"].randomise
        assert not envs["sys-str-"].randomise
        assert isinstance(envs["no-str-"].strategy, NoStress)
        assert isinstance(envs["cache-str+"].strategy, CacheStress)
