"""Litmus-test synthesis: dedup, registry rediscovery, gate, CLI."""

from __future__ import annotations

import pytest

from repro.axiom.canon import canonical_key, canonical_program_key, canonicalize
from repro.axiom.model import axiom_outcomes, condition_verdict
from repro.axiom.synth import SynthConfig, synthesize
from repro.cli import main
from repro.litmus.ir import validate_test
from repro.litmus.sc import forbidden_sc_reachable
from repro.litmus.tests import ALL_TESTS, get_test
from repro.testing.soundness import soundness_gate

#: One bounded space shared by the expensive assertions below.
CFG = SynthConfig(threads=2, max_ops=2, locations=2, values=1,
                  rmw=True, fences=True)


@pytest.fixture(scope="module")
def report():
    return synthesize(CFG)


def test_registry_keys_distinguish_all_sixteen():
    keys = {canonical_key(t): t.name for t in ALL_TESTS}
    assert len(keys) == len(ALL_TESTS)


def test_program_key_ignores_condition():
    mp, sb = get_test("MP"), get_test("SB")
    assert canonical_program_key(mp.threads) == \
        canonical_program_key(canonicalize(mp).threads)
    assert canonical_program_key(mp.threads) != \
        canonical_program_key(sb.threads)


def test_synthesis_rediscovers_the_two_thread_family(report):
    """The bounded space contains the paper's two-thread idioms; the
    canonical-key match must recognise them as non-novel."""
    found = {s.matches for s in report.tests if s.matches}
    assert {"MP", "LB", "SB", "MP-F0", "MP-F1"} <= found


def test_synthesis_emits_at_least_five_novel_tests(report):
    assert len(report.novel) >= 5


def test_emitted_tests_are_deduplicated(report):
    keys = [canonical_key(s.test) for s in report.tests]
    assert len(keys) == len(set(keys))
    program_keys = [canonical_program_key(s.test.threads)
                    for s in report.tests]
    assert len(program_keys) == len(set(program_keys))


def test_emitted_tests_are_valid_and_distinguishing(report):
    for s in report.tests:
        validate_test(s.test)
        # The forbidden outcome is weak-allowed and SC-unreachable —
        # a genuine weak-memory litmus, never vacuous.
        assert condition_verdict(s.test) == "weak", s.test.name
        assert not forbidden_sc_reachable(s.test), s.test.name


def test_emitted_conditions_are_minimal(report):
    """Dropping any single conjunct must make the condition
    SC-reachable (the greedy minimiser ran to a fixed point)."""
    from repro.litmus.ir import And, compile_condition

    for s in report.tests[:10]:
        cond = s.test.forbidden
        if not isinstance(cond, And):
            continue
        sc_envs = [
            (dict(regs), dict(mem))
            for regs, mem in axiom_outcomes(s.test, "full")
        ]
        for i in range(len(cond.terms)):
            rest = cond.terms[:i] + cond.terms[i + 1:]
            reduced = And(*rest) if len(rest) > 1 else rest[0]
            pred = compile_condition(reduced)
            assert any(pred(r, m) for r, m in sc_envs), s.test.name


def test_novel_tests_pass_the_soundness_gate(report):
    novel = tuple(s.test for s in report.novel[:8])
    gate = soundness_gate(
        tests=novel,
        backends=("direct",),
        seed=7,
        executions={"direct": 20},
        check_sc_reference=False,
    )
    assert gate.ok, "\n".join(gate.violations)


def test_enumeration_counts_are_consistent(report):
    assert report.programs_enumerated >= report.programs_pruned
    assert report.programs_pruned >= report.programs_deduped
    assert report.programs_deduped >= report.distinguishing
    assert report.distinguishing == len(report.tests)


def test_limit_truncates_deterministically(report):
    limited = synthesize(SynthConfig(
        threads=CFG.threads, max_ops=CFG.max_ops,
        locations=CFG.locations, values=CFG.values,
        rmw=CFG.rmw, fences=CFG.fences, limit=3,
    ))
    assert len(limited.tests) == 3
    full_names = [(s.test.name, s.matches) for s in report.tests[:3]]
    lim_names = [(s.test.name, s.matches) for s in limited.tests]
    assert lim_names == full_names


def test_config_bounds_rejected():
    with pytest.raises(ValueError):
        SynthConfig(threads=4)
    with pytest.raises(ValueError):
        SynthConfig(max_ops=9)
    with pytest.raises(ValueError):
        SynthConfig(values=0)


def test_three_thread_synthesis_stays_bounded():
    rep = synthesize(SynthConfig(
        threads=3, max_ops=1, locations=2, values=1,
        rmw=False, fences=False,
    ))
    # One op per thread cannot build a 3-thread idiom's cycle.
    assert rep.programs_deduped > 0


def test_cli_axiom_smoke(capsys):
    assert main(["axiom", "mp"]) == 0
    out = capsys.readouterr().out
    assert "WEAK" in out and "witness" in out
    assert main(["axiom"]) == 0
    out = capsys.readouterr().out
    assert "IRIW" in out and "forbidden" in out


def test_cli_synth_smoke(capsys):
    code = main([
        "synth", "--max-ops", "2", "--values", "1", "--no-fences",
        "--chips", "K20", "--executions", "10", "--no-ir",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "novel tests:" in out
    assert "soundness gate" in out and "PASS" in out
    assert "cross-chip survey" in out


def test_cli_synth_rejects_bad_bounds(capsys):
    assert main(["synth", "--threads", "9"]) == 2
    assert "error" in capsys.readouterr().err
