"""Golden-statistics regression tests for both execution cores.

The hot-path overhauls (litmus: cached probability tables, BufferedRNG
block pre-draws, O(1) buffer bookkeeping, memory-system reuse; SIMT
engine: batch application driver, O(1) tick loop, scheduler choice
emulation) promise to be **behaviour-preserving**: at a fixed seed the
optimized cores must reproduce the pre-refactor cores' results bit for
bit.  These tests pin fixed-seed statistics captured from the
pre-refactor implementations, so this and future performance PRs cannot
silently shift the model.

Litmus path, three layers of increasing sensitivity:

* exact weak counts over MP/LB/SB x three chips x {no-str, sys-str} at
  smoke scale (40 executions, seed 7, distance 2 x patch size);
* per-execution weak *fingerprints* (exactly which global execution
  indices were weak) for three cells — a count could survive two
  cancelling draw-order changes, the fingerprint cannot;
* serial vs ``jobs=N`` equality, which additionally exercises the
  repro.parallel global-index seeding contract through the new core.

Application (SIMT engine) path:

* per-run fingerprints — (erroneous, ticks, fences, swaps, bypasses)
  for every run of four (app, chip, env) cells, captured from the
  pre-batch engine (every engine tick consumes the scheduler stream, so
  the tick count alone pins the entire pick/draw history);
* batch-vs-single parity: ``ApplicationBatch``/``run_application_batch``
  must equal standalone ``run_application`` results exactly;
* a campaign cell serially and at ``jobs=N``, against pinned counts.

The values are tied to numpy's stable PCG64 stream (raw outputs,
``next_double``, the Lemire bounded-integer path, Floyd sampling and
the scalar choice-with-p search — unchanged since numpy 1.17).
"""

from __future__ import annotations

import pytest

from repro.apps.base import (
    ApplicationBatch,
    run_application,
    run_application_batch,
)
from repro.apps.registry import get_application
from repro.chips import get_chip
from repro.litmus import LB, MP, SB, get_test, run_litmus
from repro.litmus.runner import LitmusInstance, _litmus_span
from repro.parallel import ParallelConfig
from repro.rng import derive_seed
from repro.stress.environment import standard_environments
from repro.stress.strategies import NoStress, TunedStress
from repro.testing.campaign import run_cell
from repro.tuning.pipeline import shipped_params

_SEED = 7
_EXECUTIONS = 40

#: Weak counts captured from the pre-refactor core (seed commit) at
#: ``run_litmus(chip, test, 2 * patch_size, spec, executions=40, seed=7)``.
GOLDEN_WEAK = {
    ("K20", "MP", "no-str"): 0,
    ("K20", "LB", "no-str"): 0,
    ("K20", "SB", "no-str"): 0,
    ("K20", "MP", "sys-str"): 10,
    ("K20", "LB", "sys-str"): 3,
    ("K20", "SB", "sys-str"): 2,
    ("Titan", "MP", "no-str"): 0,
    ("Titan", "LB", "no-str"): 0,
    ("Titan", "SB", "no-str"): 0,
    ("Titan", "MP", "sys-str"): 5,
    ("Titan", "LB", "sys-str"): 4,
    ("Titan", "SB", "sys-str"): 1,
    ("980", "MP", "no-str"): 0,
    ("980", "LB", "no-str"): 0,
    ("980", "SB", "no-str"): 0,
    ("980", "MP", "sys-str"): 0,
    ("980", "LB", "sys-str"): 1,
    ("980", "SB", "sys-str"): 0,
}

#: Which of the 40 global execution indices were weak (pre-refactor
#: core, sys-str cells) — a much stronger invariant than the count.
GOLDEN_FINGERPRINTS = {
    ("K20", "MP"): (2, 3, 8, 9, 10, 19, 26, 31, 36, 39),
    ("Titan", "LB"): (3, 4, 19, 31),
    ("980", "MP"): (),
}

#: Weak count of the K20/MP sys-str cell under thread randomisation,
#: 600 executions, seed 7 (pre-refactor core).
GOLDEN_RANDOMISE_WEAK = 117


def _env_spec(chip_name: str, env: str):
    if env == "no-str":
        return NoStress()
    return TunedStress(shipped_params(chip_name))


@pytest.mark.parametrize(
    "chip_name,test_name,env",
    sorted(GOLDEN_WEAK),
    ids=lambda v: str(v),
)
def test_weak_counts_match_pre_refactor_core(chip_name, test_name, env):
    chip = get_chip(chip_name)
    result = run_litmus(
        chip,
        get_test(test_name),
        2 * chip.patch_size,
        _env_spec(chip_name, env),
        executions=_EXECUTIONS,
        seed=_SEED,
    )
    assert result.weak == GOLDEN_WEAK[(chip_name, test_name, env)]


@pytest.mark.parametrize("chip_name,test_name", sorted(GOLDEN_FINGERPRINTS))
def test_weak_fingerprints_match_pre_refactor_core(chip_name, test_name):
    chip = get_chip(chip_name)
    spec = TunedStress(shipped_params(chip_name))
    instance = LitmusInstance.layout(
        chip, get_test(test_name), 2 * chip.patch_size
    )
    weak_indices = tuple(
        i
        for i in range(_EXECUTIONS)
        if _litmus_span(chip, instance, spec, _SEED, False, i, i + 1)
    )
    assert weak_indices == GOLDEN_FINGERPRINTS[(chip_name, test_name)]


def test_randomised_weak_count_matches_pre_refactor_core():
    chip = get_chip("K20")
    spec = TunedStress(shipped_params("K20"))
    instance = LitmusInstance.layout(chip, MP, 2 * chip.patch_size)
    weak = _litmus_span(chip, instance, spec, _SEED, True, 0, 600)
    assert weak == GOLDEN_RANDOMISE_WEAK


@pytest.mark.parametrize("jobs", [2, 3])
def test_sharded_runs_match_golden_counts(jobs):
    """jobs=N must reproduce both the serial result and the golden
    value (global-index seeding through the optimized core)."""
    chip = get_chip("K20")
    spec = TunedStress(shipped_params("K20"))
    result = run_litmus(
        chip,
        MP,
        2 * chip.patch_size,
        spec,
        executions=_EXECUTIONS,
        seed=_SEED,
        parallel=ParallelConfig(jobs=jobs),
    )
    assert result.weak == GOLDEN_WEAK[("K20", "MP", "sys-str")]


def test_any_span_partition_matches_golden_count():
    """Shard boundaries cannot influence a single draw: every partition
    of the execution range sums to the same weak count."""
    chip = get_chip("K20")
    spec = TunedStress(shipped_params("K20"))
    instance = LitmusInstance.layout(chip, MP, 2 * chip.patch_size)
    for bounds in ([0, 40], [0, 7, 40], [0, 13, 14, 31, 40]):
        total = sum(
            _litmus_span(chip, instance, spec, _SEED, False, a, b)
            for a, b in zip(bounds, bounds[1:])
        )
        assert total == GOLDEN_WEAK[("K20", "MP", "sys-str")]


# ----------------------------------------------------------------------
# application (SIMT engine) path
# ----------------------------------------------------------------------

#: Per-run (erroneous, ticks, n_fences, n_swaps, n_bypasses) for runs
#: ``i in range(12)`` at seed ``derive_seed(7, "app-golden", app, chip,
#: env, i)``, captured from the pre-batch engine (the seed commit of
#: this table).  Keyed by (app, chip, env, randomise).
GOLDEN_APP_FINGERPRINTS = {
    ("cbe-dot", "K20", "sys-str", True): (
        (0, 286, 0, 0, 0), (0, 330, 0, 0, 1), (0, 379, 0, 0, 0),
        (0, 287, 0, 0, 0), (1, 410, 0, 0, 1), (0, 429, 0, 0, 0),
        (0, 364, 0, 0, 0), (0, 334, 0, 0, 0), (0, 372, 0, 0, 0),
        (0, 288, 0, 0, 0), (0, 417, 0, 0, 0), (0, 286, 0, 0, 0),
    ),
    ("sdk-red-nf", "Titan", "sys-str", True): (
        (0, 90, 0, 0, 0), (0, 104, 0, 0, 0), (0, 82, 0, 0, 0),
        (0, 100, 0, 0, 0), (0, 94, 0, 0, 0), (0, 83, 0, 0, 0),
        (0, 103, 0, 0, 0), (0, 95, 0, 0, 0), (0, 84, 0, 0, 0),
        (0, 85, 0, 0, 0), (0, 99, 0, 0, 0), (0, 122, 0, 0, 0),
    ),
    ("tpo-tm", "980", "no-str", False): (
        (0, 758, 0, 0, 0), (0, 834, 0, 0, 0), (0, 656, 0, 0, 0),
        (0, 812, 0, 0, 0), (0, 834, 0, 0, 0), (0, 672, 0, 0, 0),
        (0, 767, 0, 0, 0), (0, 816, 0, 0, 0), (0, 763, 0, 0, 0),
        (0, 824, 0, 0, 0), (0, 713, 0, 0, 0), (0, 882, 0, 0, 0),
    ),
    ("ls-bh", "K20", "sys-str", True): (
        (0, 594, 44, 0, 2), (0, 721, 52, 0, 8), (1, 709, 60, 0, 3),
        (0, 789, 52, 0, 3), (0, 749, 44, 0, 3), (0, 686, 52, 0, 5),
        (0, 681, 44, 0, 2), (0, 762, 60, 0, 1), (0, 708, 52, 0, 1),
        (0, 958, 44, 0, 1), (1, 908, 44, 0, 1), (0, 776, 44, 0, 6),
    ),
}

#: ``run_cell(cbe-dot, K20, sys-str+, runs=16, seed=7)`` on the
#: pre-batch engine: (errors, timeouts).
GOLDEN_CAMPAIGN_CELL = (1, 0)


def _app_spec(chip_name: str, env: str):
    if env == "no-str":
        return NoStress()
    return TunedStress(shipped_params(chip_name))


def _app_fingerprint(run):
    result = run.result
    return (
        int(run.erroneous),
        result.ticks,
        result.n_fences,
        result.n_swaps,
        result.n_bypasses,
    )


def _golden_seeds(app_name, chip_name, env):
    return [
        derive_seed(7, "app-golden", app_name, chip_name, env, i)
        for i in range(12)
    ]


@pytest.mark.parametrize(
    "app_name,chip_name,env,randomise",
    sorted(GOLDEN_APP_FINGERPRINTS),
    ids=lambda v: str(v),
)
def test_app_fingerprints_match_pre_batch_engine(
    app_name, chip_name, env, randomise
):
    """Single runs reproduce the pre-overhaul engine bit for bit.

    Every engine tick consumes the scheduler's stream, so an identical
    tick count at a fixed seed pins the entire pick/draw history; the
    fence/swap/bypass tallies additionally pin the memory-system draws.
    """
    app = get_application(app_name)
    chip = get_chip(chip_name)
    spec = _app_spec(chip_name, env)
    got = tuple(
        _app_fingerprint(
            run_application(
                app, chip, stress_spec=spec, randomise=randomise, seed=seed
            )
        )
        for seed in _golden_seeds(app_name, chip_name, env)
    )
    assert got == GOLDEN_APP_FINGERPRINTS[(app_name, chip_name, env, randomise)]


@pytest.mark.parametrize(
    "app_name,chip_name,env,randomise",
    sorted(GOLDEN_APP_FINGERPRINTS),
    ids=lambda v: str(v),
)
def test_batch_runs_equal_single_runs(app_name, chip_name, env, randomise):
    """run_application_batch == [run_application(seed) ...], exactly.

    AppRun and ExecutionResult are frozen dataclasses, so ``==`` compares
    every field — outcome, ticks and all statistics must agree.
    """
    app = get_application(app_name)
    chip = get_chip(chip_name)
    spec = _app_spec(chip_name, env)
    seeds = _golden_seeds(app_name, chip_name, env)
    golden = GOLDEN_APP_FINGERPRINTS[(app_name, chip_name, env, randomise)]
    batched = run_application_batch(
        app, chip, seeds, stress_spec=spec, randomise=randomise
    )
    assert tuple(_app_fingerprint(r) for r in batched) == golden
    singles = [
        run_application(
            app, chip, stress_spec=spec, randomise=randomise, seed=seed
        )
        for seed in seeds
    ]
    assert batched == singles


def test_batch_interleaved_fence_sets_stay_identical():
    """One batch serves many fence sets (the insertion access pattern):
    interleaving candidate sets must not perturb any run's result."""
    app = get_application("ls-bh")
    chip = get_chip("K20")
    spec = _app_spec("K20", "sys-str")
    seeds = _golden_seeds("ls-bh", "K20", "sys-str")[:6]
    fence_sets = [frozenset(), app.base_fences, frozenset(app.sites())]
    batch = ApplicationBatch(app, chip, stress_spec=spec, randomise=True)
    interleaved = [
        batch.run(seed, fence_sites=fence_sets[i % len(fence_sets)])
        for i, seed in enumerate(seeds)
    ]
    for i, seed in enumerate(seeds):
        single = run_application(
            app,
            chip,
            stress_spec=spec,
            randomise=True,
            seed=seed,
            fence_sites=fence_sets[i % len(fence_sets)],
        )
        assert interleaved[i] == single


@pytest.mark.parametrize("jobs", [1, 2])
def test_campaign_cell_matches_pre_batch_engine(jobs):
    """A campaign cell reproduces the pinned counts serially and
    sharded (the batch driver inside each shard must not change any
    run's seed stream)."""
    env = next(
        e
        for e in standard_environments(shipped_params("K20"))
        if e.name == "sys-str+"
    )
    cell = run_cell(
        get_application("cbe-dot"),
        get_chip("K20"),
        env,
        runs=16,
        seed=7,
        parallel=ParallelConfig(jobs=jobs),
    )
    assert (cell.errors, cell.timeouts) == GOLDEN_CAMPAIGN_CELL


def test_all_three_tests_still_distinct():
    """Sanity guard: the three idioms remain distinct workloads (the
    golden table is not accidentally testing one program thrice)."""
    assert MP.thread0 != LB.thread0
    assert SB.thread0 != MP.thread0
    assert {t.name for t in (MP, LB, SB)} == {"MP", "LB", "SB"}
