"""Golden-statistics regression tests for the litmus execution core.

The hot-path overhaul (cached probability tables, BufferedRNG block
pre-draws, O(1) buffer bookkeeping, memory-system reuse) promises to be
**behaviour-preserving**: at a fixed seed the optimized core must
reproduce the pre-refactor core's results bit for bit.  These tests pin
fixed-seed weak-behaviour counts that were captured from the seed
(pre-refactor) implementation, so this and future performance PRs cannot
silently shift the model.

Three layers of increasing sensitivity:

* exact weak counts over MP/LB/SB x three chips x {no-str, sys-str} at
  smoke scale (40 executions, seed 7, distance 2 x patch size);
* per-execution weak *fingerprints* (exactly which global execution
  indices were weak) for three cells — a count could survive two
  cancelling draw-order changes, the fingerprint cannot;
* serial vs ``jobs=N`` equality, which additionally exercises the
  repro.parallel global-index seeding contract through the new core.

The values are tied to numpy's stable PCG64 stream (raw outputs,
``next_double``, the Lemire bounded-integer path and Floyd sampling —
unchanged since numpy 1.17).
"""

from __future__ import annotations

import pytest

from repro.chips import get_chip
from repro.litmus import LB, MP, SB, get_test, run_litmus
from repro.litmus.runner import LitmusInstance, _litmus_span
from repro.parallel import ParallelConfig
from repro.stress.strategies import NoStress, TunedStress
from repro.tuning.pipeline import shipped_params

_SEED = 7
_EXECUTIONS = 40

#: Weak counts captured from the pre-refactor core (seed commit) at
#: ``run_litmus(chip, test, 2 * patch_size, spec, executions=40, seed=7)``.
GOLDEN_WEAK = {
    ("K20", "MP", "no-str"): 0,
    ("K20", "LB", "no-str"): 0,
    ("K20", "SB", "no-str"): 0,
    ("K20", "MP", "sys-str"): 10,
    ("K20", "LB", "sys-str"): 3,
    ("K20", "SB", "sys-str"): 2,
    ("Titan", "MP", "no-str"): 0,
    ("Titan", "LB", "no-str"): 0,
    ("Titan", "SB", "no-str"): 0,
    ("Titan", "MP", "sys-str"): 5,
    ("Titan", "LB", "sys-str"): 4,
    ("Titan", "SB", "sys-str"): 1,
    ("980", "MP", "no-str"): 0,
    ("980", "LB", "no-str"): 0,
    ("980", "SB", "no-str"): 0,
    ("980", "MP", "sys-str"): 0,
    ("980", "LB", "sys-str"): 1,
    ("980", "SB", "sys-str"): 0,
}

#: Which of the 40 global execution indices were weak (pre-refactor
#: core, sys-str cells) — a much stronger invariant than the count.
GOLDEN_FINGERPRINTS = {
    ("K20", "MP"): (2, 3, 8, 9, 10, 19, 26, 31, 36, 39),
    ("Titan", "LB"): (3, 4, 19, 31),
    ("980", "MP"): (),
}

#: Weak count of the K20/MP sys-str cell under thread randomisation,
#: 600 executions, seed 7 (pre-refactor core).
GOLDEN_RANDOMISE_WEAK = 117


def _env_spec(chip_name: str, env: str):
    if env == "no-str":
        return NoStress()
    return TunedStress(shipped_params(chip_name))


@pytest.mark.parametrize(
    "chip_name,test_name,env",
    sorted(GOLDEN_WEAK),
    ids=lambda v: str(v),
)
def test_weak_counts_match_pre_refactor_core(chip_name, test_name, env):
    chip = get_chip(chip_name)
    result = run_litmus(
        chip,
        get_test(test_name),
        2 * chip.patch_size,
        _env_spec(chip_name, env),
        executions=_EXECUTIONS,
        seed=_SEED,
    )
    assert result.weak == GOLDEN_WEAK[(chip_name, test_name, env)]


@pytest.mark.parametrize("chip_name,test_name", sorted(GOLDEN_FINGERPRINTS))
def test_weak_fingerprints_match_pre_refactor_core(chip_name, test_name):
    chip = get_chip(chip_name)
    spec = TunedStress(shipped_params(chip_name))
    instance = LitmusInstance.layout(
        chip, get_test(test_name), 2 * chip.patch_size
    )
    weak_indices = tuple(
        i
        for i in range(_EXECUTIONS)
        if _litmus_span(chip, instance, spec, _SEED, False, i, i + 1)
    )
    assert weak_indices == GOLDEN_FINGERPRINTS[(chip_name, test_name)]


def test_randomised_weak_count_matches_pre_refactor_core():
    chip = get_chip("K20")
    spec = TunedStress(shipped_params("K20"))
    instance = LitmusInstance.layout(chip, MP, 2 * chip.patch_size)
    weak = _litmus_span(chip, instance, spec, _SEED, True, 0, 600)
    assert weak == GOLDEN_RANDOMISE_WEAK


@pytest.mark.parametrize("jobs", [2, 3])
def test_sharded_runs_match_golden_counts(jobs):
    """jobs=N must reproduce both the serial result and the golden
    value (global-index seeding through the optimized core)."""
    chip = get_chip("K20")
    spec = TunedStress(shipped_params("K20"))
    result = run_litmus(
        chip,
        MP,
        2 * chip.patch_size,
        spec,
        executions=_EXECUTIONS,
        seed=_SEED,
        parallel=ParallelConfig(jobs=jobs),
    )
    assert result.weak == GOLDEN_WEAK[("K20", "MP", "sys-str")]


def test_any_span_partition_matches_golden_count():
    """Shard boundaries cannot influence a single draw: every partition
    of the execution range sums to the same weak count."""
    chip = get_chip("K20")
    spec = TunedStress(shipped_params("K20"))
    instance = LitmusInstance.layout(chip, MP, 2 * chip.patch_size)
    for bounds in ([0, 40], [0, 7, 40], [0, 13, 14, 31, 40]):
        total = sum(
            _litmus_span(chip, instance, spec, _SEED, False, a, b)
            for a, b in zip(bounds, bounds[1:])
        )
        assert total == GOLDEN_WEAK[("K20", "MP", "sys-str")]


def test_all_three_tests_still_distinct():
    """Sanity guard: the three idioms remain distinct workloads (the
    golden table is not accidentally testing one program thrice)."""
    assert MP.thread0 != LB.thread0
    assert SB.thread0 != MP.thread0
    assert {t.name for t in (MP, LB, SB)} == {"MP", "LB", "SB"}
