"""Tests for the campaign runner and Table 5 summary (paper Sec. 4)."""

import dataclasses

import pytest

from repro.apps import get_application
from repro.scale import SMOKE
from repro.stress.environment import standard_environments
from repro.testing import (
    EFFECTIVENESS_THRESHOLD,
    run_cell,
    run_campaign,
    table5_summary,
)
from repro.testing.campaign import CampaignCell
from repro.testing.summary import most_capable_environment
from repro.tuning import shipped_params

TINY = dataclasses.replace(SMOKE, campaign_runs=8)


def _envs(chip_name):
    return {
        e.name: e
        for e in standard_environments(shipped_params(chip_name))
    }


class TestRunCell:
    def test_cell_counts_runs(self, k20):
        env = _envs("K20")["no-str-"]
        cell = run_cell(get_application("cbe-dot"), k20, env, runs=5,
                        seed=1)
        assert cell.runs == 5
        assert 0 <= cell.errors <= 5
        assert cell.chip == "K20"
        assert cell.environment == "no-str-"

    def test_error_rate(self):
        cell = CampaignCell("K20", "x", "sys-str+", errors=3,
                            timeouts=0, runs=10)
        assert cell.error_rate == pytest.approx(0.3)

    @pytest.mark.slow
    def test_sys_str_beats_native_on_cbe_dot(self, k20):
        envs = _envs("K20")
        app = get_application("cbe-dot")
        native = run_cell(app, k20, envs["no-str-"], runs=25, seed=2)
        stressed = run_cell(app, k20, envs["sys-str+"], runs=25, seed=2)
        assert stressed.errors > native.errors


class TestSummary:
    def _cells(self):
        return [
            CampaignCell("K20", "a1", "sys-str+", 10, 0, 20),
            CampaignCell("K20", "a2", "sys-str+", 1, 0, 20),
            CampaignCell("K20", "a3", "sys-str+", 0, 0, 20),
            CampaignCell("K20", "a1", "no-str-", 0, 0, 20),
            CampaignCell("K20", "a2", "no-str-", 0, 0, 20),
            CampaignCell("K20", "a3", "no-str-", 0, 0, 20),
        ]

    def test_observed_and_effective_counts(self):
        table = table5_summary(self._cells())
        cell = table[("K20", "sys-str+")]
        assert cell.observed == 2       # a1 and a2 err
        assert cell.effective == 1      # only a1 crosses 5%
        assert str(cell) == "1 / 2"
        assert cell.observed_apps == ("a1", "a2")

    def test_threshold_is_strict(self):
        cells = [CampaignCell("K20", "a", "sys-str+", 1, 0, 20)]
        table = table5_summary(cells)
        assert table[("K20", "sys-str+")].effective == 0
        assert 1 / 20 == EFFECTIVENESS_THRESHOLD

    def test_most_capable_environment(self):
        table = table5_summary(self._cells())
        assert most_capable_environment(table, "K20") == "sys-str+"

    def test_most_capable_requires_data(self):
        with pytest.raises(ValueError):
            most_capable_environment({}, "K20")


class TestCampaignGrid:
    @pytest.mark.slow
    def test_small_grid_shape(self, k20):
        apps = [get_application("cbe-dot"), get_application("cbe-ht")]
        cells = run_campaign(
            [k20], apps=apps, environments=["no-str-", "sys-str+"],
            scale=TINY, seed=3,
        )
        assert len(cells) == 4
        combos = {(c.app, c.environment) for c in cells}
        assert ("cbe-dot", "sys-str+") in combos

    @pytest.mark.slow
    def test_sys_str_dominates_straightforward_stress(self, k20):
        # Paper Sec. 4.3: sys-str environments are always more capable
        # than the straightforward strategies.
        apps = [get_application(n) for n in
                ("cbe-ht", "cbe-dot", "tpo-tm")]
        cells = run_campaign(
            [k20], apps=apps,
            environments=["sys-str+", "rand-str-", "cache-str-"],
            scale=dataclasses.replace(SMOKE, campaign_runs=15), seed=4,
        )
        table = table5_summary(cells)
        sys_cell = table[("K20", "sys-str+")]
        for env in ("rand-str-", "cache-str-"):
            assert sys_cell.observed >= table[("K20", env)].observed
