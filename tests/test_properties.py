"""Cross-module property-based tests on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.chips import SC_REFERENCE, all_chips, get_chip
from repro.gpu.addresses import AddressSpace
from repro.gpu.engine import Engine
from repro.gpu.kernel import Kernel, LaunchConfig
from repro.gpu.memory import MemorySystem
from repro.gpu.pressure import StressField
from repro.litmus import MP, run_litmus
from repro.stress.strategies import FixedLocationStress, NoStress

CHIP_NAMES = [c.short_name for c in all_chips()]


class TestMemoryInvariants:
    """Invariants that must hold on every chip, weak or not."""

    @settings(max_examples=25, deadline=None)
    @given(
        chip_name=st.sampled_from(CHIP_NAMES),
        seed=st.integers(0, 100_000),
        writes=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 15),
                      st.integers(1, 100)),
            min_size=1, max_size=20,
        ),
    )
    def test_per_address_final_value_is_some_write(
        self, chip_name, seed, writes
    ):
        """After a full flush, each address holds a value that was
        actually written to it (no corruption, no cross-talk)."""
        chip = get_chip(chip_name)
        field = StressField.from_locations(
            chip, 0, [0, chip.patch_size], 1.0, 640
        )
        mem = MemorySystem(chip, field, np.random.default_rng(seed))
        written: dict[int, set[int]] = {}
        for thread, slot, value in writes:
            addr = slot * 64
            while not mem.write(thread % chip.n_sms, thread, addr, value):
                mem.step()
            written.setdefault(addr, set()).add(value)
            mem.step()
        mem.flush_all()
        for addr, values in written.items():
            assert mem.mem[addr] in values

    @settings(max_examples=25, deadline=None)
    @given(
        chip_name=st.sampled_from(CHIP_NAMES),
        seed=st.integers(0, 100_000),
        n=st.integers(1, 30),
    )
    def test_atomic_increments_never_lost(self, chip_name, seed, n):
        """Atomics are linearisable: n increments sum to n even under
        stress, on every chip."""
        chip = get_chip(chip_name)
        field = StressField.uniform(chip, 0.5)
        mem = MemorySystem(chip, field, np.random.default_rng(seed))
        for i in range(n):
            result = mem.rmw(i % chip.n_sms, i, 7, lambda v: v + 1, {})
            assert result is not None
            mem.step()
        assert mem.mem[7] == n

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_fence_publishes_before_subsequent_atomic(self, seed):
        """store; fence; atomic — the store is globally visible before
        the atomic executes, on every chip (this is the hardening
        guarantee applications rely on)."""
        for chip in all_chips():
            mem = MemorySystem(
                chip,
                StressField.uniform(chip, 1.0),
                np.random.default_rng(seed),
            )
            assert mem.write(0, 0, 0, 42)
            mem.fence_begin(0)
            for _ in range(100):
                if mem.fence_done(0, 0):
                    break
                mem.step()
            assert mem.fence_done(0, 0)
            # At this instant any observer reads the new value.
            assert mem.read(1, 1, 0) == 42


class TestEngineInvariants:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        grid=st.integers(1, 4),
        block=st.sampled_from([4, 8]),
    )
    def test_grid_reduction_is_exact_with_atomics(self, seed, grid, block):
        """Atomic-based reductions are exact on every chip regardless
        of stress (only plain-store idioms exhibit weak errors)."""
        chip = get_chip("Titan")
        space = AddressSpace(default_align=64)
        total = space.alloc("total", 1)

        def kernel(ctx, total):
            yield from ctx.atomic_add(total, 0, ctx.global_tid() + 1)

        field = StressField.from_locations(chip, 512, [0, 32], 1.2, 640)
        mem = MemorySystem(chip, field, np.random.default_rng(seed))
        engine = Engine(chip, mem, np.random.default_rng(seed + 1),
                        n_stress_units=3, randomise=True)
        engine.run(
            Kernel("sum", kernel, (total,)),
            LaunchConfig(grid, block, warp_size=4),
        )
        n = grid * block
        assert mem.host_read(total, 0) == n * (n + 1) // 2

    def test_conservative_fences_restore_mp_order(self):
        """With a fence between the data and flag stores, no consumer
        can observe the flag without the data, even under full stress."""
        chip = get_chip("Titan")
        space = AddressSpace(default_align=64)
        data = space.alloc("data", 1)
        flag = space.alloc("flag", 1)
        seen = space.alloc("seen", 1)

        def producer_consumer(ctx, data, flag, seen):
            if ctx.block_id == 0:
                yield from ctx.store(data, 0, 1, site="d")
                yield from ctx.store(flag, 0, 1, site="f")
            else:
                f = yield from ctx.load(flag, 0)
                if f == 1:
                    d = yield from ctx.load(data, 0)
                    yield from ctx.store(seen, 0, (f, d))

        for seed in range(60):
            field = StressField.from_locations(
                chip, 512, [0, 32], 1.2, 640
            )
            mem = MemorySystem(chip, field, np.random.default_rng(seed))
            engine = Engine(chip, mem, np.random.default_rng(seed + 1))
            engine.run(
                Kernel("pc", producer_consumer, (data, flag, seen)),
                LaunchConfig(2, 1, warp_size=1),
                fence_sites=frozenset({"d"}),
            )
            observed = mem.host_read(seen, 0)
            if observed != 0:
                assert observed == (1, 1), f"seed {seed}: stale data"


class TestLitmusInvariants:
    @settings(max_examples=8, deadline=None)
    @given(
        chip_name=st.sampled_from(CHIP_NAMES),
        distance=st.sampled_from([0, 8, 16]),
        seed=st.integers(0, 1000),
    )
    def test_kepler_fermi_silent_below_patch(
        self, chip_name, distance, seed
    ):
        """Sub-patch distances never show MP weak behaviour except for
        the Maxwell leak."""
        chip = get_chip(chip_name)
        if chip.short_name == "980":
            return  # Maxwell leaks by design (paper Sec. 3.2)
        spec = FixedLocationStress(
            (0, 2 * chip.patch_size), chip.best_sequence
        )
        result = run_litmus(chip, MP, distance, spec, 40, seed=seed)
        assert result.weak == 0

    def test_sc_reference_silent_everywhere(self):
        for d in (0, 32, 64, 128):
            result = run_litmus(SC_REFERENCE, MP, d, NoStress(), 40,
                                seed=1)
            assert result.weak == 0
