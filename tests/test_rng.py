"""Tests for seeded RNG utilities and the BufferedRNG wrapper."""

from __future__ import annotations

import random as pyrandom

import numpy as np
import pytest

from repro.rng import BufferedRNG, derive_seed, make_rng, spawn


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_label_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_parent_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_numeric_labels(self):
        assert derive_seed(5, 1, 2) != derive_seed(5, 2, 1)

    def test_fits_in_uint64(self):
        for i in range(50):
            assert 0 <= derive_seed(i, "x", i * 7) < 2**64

    def test_tuple_labels_differ_from_flat(self):
        assert derive_seed(0, (1, 2)) != derive_seed(0, 1, 2)


class TestMakeRng:
    def test_same_stream_same_values(self):
        a = make_rng(7, "stream")
        b = make_rng(7, "stream")
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_different_streams_diverge(self):
        a = make_rng(7, "s1")
        b = make_rng(7, "s2")
        draws_a = [int(a.integers(1 << 30)) for _ in range(4)]
        draws_b = [int(b.integers(1 << 30)) for _ in range(4)]
        assert draws_a != draws_b

    def test_returns_generator(self):
        assert isinstance(make_rng(0), np.random.Generator)


class TestSpawn:
    def test_spawn_decouples(self):
        parent = make_rng(3)
        child = spawn(parent)
        assert isinstance(child, np.random.Generator)
        assert child.integers(1 << 30) != parent.integers(1 << 30) or True


class TestBufferedRNGStreamExactness:
    """BufferedRNG's draw-order contract: every mix of emulated and
    delegated draws consumes the PCG64 stream exactly like a plain
    Generator, so downstream statistics are bit-identical."""

    def test_scalar_random_matches_generator(self):
        ref = np.random.default_rng(42)
        buf = BufferedRNG(np.random.default_rng(42))
        assert [buf.random() for _ in range(500)] == [
            ref.random() for _ in range(500)
        ]

    def test_scalar_integers_matches_generator(self):
        ref = np.random.default_rng(9)
        buf = BufferedRNG(np.random.default_rng(9))
        for bound in (24, 2, 5, 1000, 13313):
            got = [buf.integers(0, bound) for _ in range(50)]
            want = [int(ref.integers(0, bound)) for _ in range(50)]
            assert got == want, bound

    def test_lemire32_matches_integers(self):
        ref = np.random.default_rng(11)
        buf = BufferedRNG(np.random.default_rng(11))
        assert [buf._lemire32(24) for _ in range(100)] == [
            int(ref.integers(0, 24)) for _ in range(100)
        ]

    def test_lemire32_delegates_in_direct_mode(self):
        ref = np.random.default_rng(12)
        buf = BufferedRNG(np.random.default_rng(12), direct=True)
        assert [buf._lemire32(24) for _ in range(50)] == [
            int(ref.integers(0, 24)) for _ in range(50)
        ]
        assert buf.random() == ref.random()

    def test_choice_without_replacement_matches_generator(self):
        for seed in range(30):
            ref = np.random.default_rng(seed)
            buf = BufferedRNG(np.random.default_rng(seed))
            want = ref.choice(64, size=2, replace=False)
            got = buf.choice(64, size=2, replace=False)
            assert got.tolist() == want.tolist()
            # stream position identical afterwards (incl. half-word buffer)
            assert buf.integers(0, 1000) == int(ref.integers(0, 1000))
            assert buf.random() == ref.random()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mixed_stream_fuzz(self, seed):
        """Random interleavings of emulated and delegated draws stay in
        lockstep with a scalar-only Generator history."""
        py = pyrandom.Random(seed)
        ref = np.random.default_rng(1234 + seed)
        buf = BufferedRNG(np.random.default_rng(1234 + seed))
        for _ in range(300):
            op = py.choice(
                ["random", "random", "random", "i24", "ibig", "uniform",
                 "choice", "vec"]
            )
            if op == "random":
                assert buf.random() == ref.random()
            elif op == "i24":
                assert buf.integers(0, 24) == int(ref.integers(0, 24))
            elif op == "ibig":
                assert buf.integers(7, 13313) == int(ref.integers(7, 13313))
            elif op == "uniform":
                assert buf.uniform(0.35, 0.95) == ref.uniform(0.35, 0.95)
            elif op == "choice":
                assert (
                    buf.choice(64, size=2, replace=False).tolist()
                    == ref.choice(64, size=2, replace=False).tolist()
                )
            else:
                assert buf.random(size=5).tolist() == ref.random(size=5).tolist()

    def test_sync_rewind_is_exact_mid_block(self):
        """A delegated call right after a partial block consumption sees
        the same stream position as a scalar-only history."""
        ref = np.random.default_rng(77)
        buf = BufferedRNG(np.random.default_rng(77))
        for _ in range(3):  # less than one block
            assert buf.random() == ref.random()
        assert buf.uniform(0.0, 1.0) == ref.uniform(0.0, 1.0)
        assert buf.random() == ref.random()

    def test_dirichlet_passthrough(self):
        ref = np.random.default_rng(5)
        buf = BufferedRNG(np.random.default_rng(5))
        assert (
            buf.dirichlet(np.full(4, 0.5)).tolist()
            == ref.dirichlet(np.full(4, 0.5)).tolist()
        )

    def test_getattr_fallback_delegates(self):
        ref = np.random.default_rng(6)
        buf = BufferedRNG(np.random.default_rng(6))
        assert buf.standard_normal() == ref.standard_normal()

    def test_spawn_through_wrapper(self):
        a = spawn(BufferedRNG(make_rng(3)))
        b = spawn(make_rng(3))
        assert a.random() == b.random()


class TestBufferedRNGDegrade:
    def test_degrades_to_direct_on_tight_interleaving(self):
        buf = BufferedRNG(np.random.default_rng(0))
        ref = np.random.default_rng(0)
        # Alternate one buffered draw with one delegated draw: after a
        # few poor syncs the wrapper must flip to direct mode...
        for _ in range(20):
            assert buf.random() == ref.random()
            assert buf.uniform(0.0, 1.0) == ref.uniform(0.0, 1.0)
        assert buf._direct
        # ...and stay stream-exact afterwards.
        assert [buf.random() for _ in range(10)] == [
            ref.random() for _ in range(10)
        ]
        assert buf.integers(0, 24) == int(ref.integers(0, 24))

    def test_direct_mode_construction(self):
        buf = BufferedRNG(np.random.default_rng(1), direct=True)
        ref = np.random.default_rng(1)
        assert buf.random() == ref.random()
        assert int(buf.integers(0, 24)) == int(ref.integers(0, 24))

    def test_non_pcg64_generators_run_direct(self):
        """The emulation is PCG64-specific; other bit generators must
        fall back to pure delegation and stay stream-exact."""
        buf = BufferedRNG(np.random.Generator(np.random.MT19937(3)))
        ref = np.random.Generator(np.random.MT19937(3))
        assert buf._direct
        assert [buf.random() for _ in range(5)] == [
            ref.random() for _ in range(5)
        ]
        assert int(buf.integers(0, 24)) == int(ref.integers(0, 24))
        assert buf.uniform(0.0, 1.0) == ref.uniform(0.0, 1.0)
        assert (
            buf.choice(64, size=2, replace=False).tolist()
            == ref.choice(64, size=2, replace=False).tolist()
        )


class TestBufferedRNGInEngine:
    def test_scheduler_accepts_buffered_rng(self):
        """The engine's scheduler draws integers/choice every tick; a
        BufferedRNG threaded through it must behave identically to the
        raw generator it wraps."""
        from repro.gpu.scheduler import WarpScheduler
        from repro.gpu.warp import Warp

        class _ActiveThread:
            active = True
            done = False

        def picks(rng):
            warps = [Warp(0, i, [_ActiveThread()]) for i in range(4)]
            sched = WarpScheduler(warps, 2, rng, randomise=False)
            return [
                None if (w := sched.pick()) is None else w.warp_id
                for _ in range(200)
            ]

        assert picks(BufferedRNG(make_rng(21))) == picks(make_rng(21))

    def test_scalar_choice_with_p_is_one_double_plus_search(self):
        """The randomised scheduler reproduces ``choice(n, p=w)`` from
        its primitive draw: one next_double searched against the
        normalised cumulative weights.  numpy must keep that contract
        for the emulation to stay bit-identical."""
        for seed in range(40):
            ref = np.random.default_rng(seed)
            emu = np.random.default_rng(seed)
            w = np.random.default_rng(seed + 999).dirichlet(np.full(9, 0.5))
            for _ in range(5):
                want = int(ref.choice(9, p=w))
                cdf = w.cumsum()
                cdf /= cdf[-1]
                got = int(cdf.searchsorted(emu.random(), side="right"))
                assert got == want
            # both streams must end in the identical state
            assert ref.random() == emu.random()

    def test_randomised_scheduler_matches_choice_reference(self):
        """Under thread randomisation the scheduler's pick stream must
        equal the original ``dirichlet`` + ``choice(p=weights)``
        implementation, for BufferedRNG and raw generators alike."""
        from repro.gpu.scheduler import _RESHUFFLE_PERIOD, WarpScheduler
        from repro.gpu.warp import Warp

        class _ActiveThread:
            active = True
            done = False

        def sched_picks(rng):
            warps = [Warp(0, i, [_ActiveThread()]) for i in range(4)]
            sched = WarpScheduler(warps, 2, rng, randomise=True)
            return [
                None if (w := sched.pick()) is None else w.warp_id
                for _ in range(300)
            ]

        def reference_picks(gen):
            n = 6  # 4 warps + 2 stress placeholders
            weights = gen.dirichlet(np.full(n, 0.5))
            ticks = 0
            out = []
            for _ in range(300):
                ticks += 1
                if ticks >= _RESHUFFLE_PERIOD:
                    weights = gen.dirichlet(np.full(n, 0.5))
                    ticks = 0
                idx = int(gen.choice(n, p=weights))
                out.append(idx if idx < 4 else None)
            return out

        want = reference_picks(make_rng(33))
        assert sched_picks(make_rng(33)) == want
        assert sched_picks(BufferedRNG(make_rng(33))) == want
