"""Tests for seeded RNG utilities."""

from __future__ import annotations

import numpy as np

from repro.rng import derive_seed, make_rng, spawn


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_label_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_parent_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_numeric_labels(self):
        assert derive_seed(5, 1, 2) != derive_seed(5, 2, 1)

    def test_fits_in_uint64(self):
        for i in range(50):
            assert 0 <= derive_seed(i, "x", i * 7) < 2**64

    def test_tuple_labels_differ_from_flat(self):
        assert derive_seed(0, (1, 2)) != derive_seed(0, 1, 2)


class TestMakeRng:
    def test_same_stream_same_values(self):
        a = make_rng(7, "stream")
        b = make_rng(7, "stream")
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_different_streams_diverge(self):
        a = make_rng(7, "s1")
        b = make_rng(7, "s2")
        draws_a = [int(a.integers(1 << 30)) for _ in range(4)]
        draws_b = [int(b.integers(1 << 30)) for _ in range(4)]
        assert draws_a != draws_b

    def test_returns_generator(self):
        assert isinstance(make_rng(0), np.random.Generator)


class TestSpawn:
    def test_spawn_decouples(self):
        parent = make_rng(3)
        child = spawn(parent)
        assert isinstance(child, np.random.Generator)
        assert child.integers(1 << 30) != parent.integers(1 << 30) or True
