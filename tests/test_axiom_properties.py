"""Property-based tests for the axiomatic model and canonicalisation.

Two laws anchor the new static analysis:

* **SC agreement** — on arbitrary bounded well-formed programs, the
  axiomatic model with a full fence set reaches exactly the states the
  brute-force SC interleaver reaches (Shasha–Snir in both directions:
  every acyclic(po ∪ com) candidate linearises to an interleaving, and
  every interleaving induces an acyclic candidate);
* **canonicalisation** — idempotent, and invariant under thread
  permutation and location renaming (the symmetries synthesis
  deduplicates by).

Programs here are smaller than :mod:`test_ir_properties`'s (five memory
operations total): the symbolic enumeration is exponential and the
candidate-budget guard would otherwise trip.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.axiom.canon import canonical_key, canonicalize
from repro.axiom.model import axiom_outcomes
from repro.litmus.ir import (
    And,
    LocEq,
    Or,
    RegEq,
    fence,
    ld,
    rmw,
    st as st_ins,
)
from repro.litmus.sc import sc_outcomes
from repro.litmus.tests import LitmusTest

_LOCS = ("x", "y", "z")
_VALUES = st.integers(1, 2)


@st.composite
def bounded_programs(draw):
    """1–3 threads, ≤ 5 memory operations in total (+ optional fences),
    globally unique registers.  Returns (threads, regs, locs)."""
    n_threads = draw(st.integers(1, 3))
    budget = 5
    threads = []
    written = []
    touched = set()
    counter = 0
    for t in range(n_threads):
        cap = max(1, min(3, budget - (n_threads - t - 1)))
        n_ins = draw(st.integers(1, cap))
        budget -= n_ins
        program = []
        for _ in range(n_ins):
            kind = draw(st.sampled_from(("st", "ld", "rmw")))
            loc = draw(st.sampled_from(_LOCS))
            touched.add(loc)
            if kind == "st":
                program.append(st_ins(loc, draw(_VALUES)))
            else:
                counter += 1
                reg = f"r{counter}"
                written.append(reg)
                if kind == "ld":
                    program.append(ld(loc, reg))
                else:
                    program.append(rmw(loc, reg, draw(_VALUES)))
            if draw(st.booleans()):
                program.append(fence())
        threads.append(tuple(program))
    return tuple(threads), tuple(written), tuple(sorted(touched))


@st.composite
def bounded_conditions(draw, regs, locs):
    leaves = []
    if regs:
        leaves.append(st.builds(RegEq, st.sampled_from(regs), _VALUES))
    if locs:
        leaves.append(st.builds(LocEq, st.sampled_from(locs), _VALUES))
    leaf = st.one_of(*leaves)
    return draw(st.recursive(
        leaf,
        lambda children: st.one_of(
            st.builds(
                lambda terms: And(*terms),
                st.lists(children, min_size=1, max_size=3),
            ),
            st.builds(
                lambda terms: Or(*terms),
                st.lists(children, min_size=1, max_size=3),
            ),
        ),
        max_leaves=6,
    ))


@st.composite
def bounded_tests(draw):
    threads, regs, locs = draw(bounded_programs())
    forbidden = draw(bounded_conditions(regs=regs, locs=locs))
    return LitmusTest(
        name="prop",
        description="",
        threads=threads,
        forbidden=forbidden,
    )


def _declared(test):
    return (test.threads, test.forbidden)


class TestModelAgreesWithSC:
    @settings(max_examples=250, deadline=None)
    @given(data=st.data())
    def test_full_fence_model_equals_sc_enumerator(self, data):
        test = data.draw(bounded_tests())
        assert axiom_outcomes(test, "full") == frozenset(sc_outcomes(test))

    @settings(max_examples=150, deadline=None)
    @given(data=st.data())
    def test_fence_modes_monotone(self, data):
        test = data.draw(bounded_tests())
        assert axiom_outcomes(test, "full") \
            <= axiom_outcomes(test, "program") \
            <= axiom_outcomes(test, "none")


class TestCanonicalisation:
    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_idempotent(self, data):
        test = data.draw(bounded_tests())
        once = canonicalize(test)
        twice = canonicalize(once)
        assert _declared(once) == _declared(twice)
        assert canonical_key(test) == canonical_key(once)

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_invariant_under_thread_permutation(self, data):
        test = data.draw(bounded_tests())
        order = data.draw(st.permutations(range(len(test.threads))))
        permuted = LitmusTest(
            name=test.name,
            description=test.description,
            threads=tuple(test.threads[i] for i in order),
            forbidden=test.forbidden,
        )
        assert canonical_key(permuted) == canonical_key(test)
        assert _declared(canonicalize(permuted)) == \
            _declared(canonicalize(test))

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_invariant_under_location_renaming(self, data):
        test = data.draw(bounded_tests())
        fresh = ("p", "q", "s")
        mapping = dict(zip(
            _LOCS, data.draw(st.permutations(fresh))
        ))

        def rename_ins(ins):
            if ins[0] == "fence":
                return ins
            return (ins[0], mapping[ins[1]]) + ins[2:]

        def rename_cond(cond):
            if isinstance(cond, RegEq):
                return cond
            if isinstance(cond, LocEq):
                return LocEq(mapping[cond.loc], cond.value)
            terms = tuple(rename_cond(t) for t in cond.terms)
            return And(*terms) if isinstance(cond, And) else Or(*terms)

        renamed = LitmusTest(
            name=test.name,
            description=test.description,
            threads=tuple(
                tuple(rename_ins(ins) for ins in program)
                for program in test.threads
            ),
            forbidden=rename_cond(test.forbidden),
        )
        assert canonical_key(renamed) == canonical_key(test)
        assert _declared(canonicalize(renamed)) == \
            _declared(canonicalize(test))

    @settings(max_examples=150, deadline=None)
    @given(data=st.data())
    def test_canonical_form_is_well_formed_and_equireachable(self, data):
        """Canonicalisation relabels, it does not change semantics: the
        canonical test's SC outcome count matches the original's."""
        test = data.draw(bounded_tests())
        canon = canonicalize(test)
        assert len(sc_outcomes(canon)) == len(sc_outcomes(test))
