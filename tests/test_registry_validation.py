"""Import-time validity of every registered litmus test.

``LitmusTest.__post_init__`` runs :func:`repro.litmus.ir.validate_test`,
so an invalid registry entry cannot even be constructed — but these
checks re-assert the contract explicitly (and catch a future refactor
that removes the constructor hook): every program is well formed, and
every register/location the forbidden condition mentions actually
exists in the program, so no forbidden-outcome clause can be silently
dead (always evaluating against a defaulted 0).
"""

from __future__ import annotations

import pytest

from repro.litmus.ir import (
    condition_locations,
    condition_registers,
    validate_program,
    validate_test,
)
from repro.litmus.ir import st
from repro.litmus.tests import ALL_TESTS, LitmusTest


@pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
def test_registry_entry_validates(test):
    validate_test(test)
    for program in test.threads:
        validate_program(program)


@pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
def test_condition_registers_are_written(test):
    written = {
        ins[2]
        for program in test.threads
        for ins in program
        if ins[0] in ("ld", "rmw")
    }
    mentioned = condition_registers(test.forbidden)
    assert mentioned <= written, (
        f"{test.name}: condition mentions unwritten registers "
        f"{sorted(mentioned - written)}"
    )


@pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
def test_condition_locations_are_touched(test):
    touched = {
        ins[1]
        for program in test.threads
        for ins in program
        if ins[0] != "fence"
    }
    mentioned = condition_locations(test.forbidden)
    assert mentioned <= touched, (
        f"{test.name}: condition mentions untouched locations "
        f"{sorted(mentioned - touched)}"
    )


@pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
def test_registers_globally_unique(test):
    seen = []
    for program in test.threads:
        for ins in program:
            if ins[0] in ("ld", "rmw"):
                seen.append(ins[2])
    assert len(seen) == len(set(seen)), test.name


def test_dead_condition_rejected_at_construction():
    from repro.litmus.ir import RegEq

    with pytest.raises(ValueError, match="unwritten registers"):
        LitmusTest(
            name="dead",
            description="condition register never written",
            threads=((st("x", 1),),),
            forbidden=RegEq("r9", 1),
        )
