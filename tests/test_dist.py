"""Tests for the distributed coordination layer (repro.dist).

Covers the wire protocol (framing, split reads, garbage rejection),
lease bookkeeping under an injected clock (expiry, reassignment,
heartbeats), the coordinator/worker loop end to end over real sockets
(in-thread workers and spawned subprocesses), and every failure mode
the lease model promises to absorb: worker death (EOF), silent hangs
(deadline expiry), voluntary churn (``bye``), duplicate results
(idempotent merge) and conflicting results (refused loudly).
"""

import dataclasses
import socket
import sys
import threading

import pytest

from repro.chips import get_chip
from repro.dist import (
    Coordinator,
    DistributedSubmit,
    FrameDecoder,
    LeaseTable,
    MAX_FRAME,
    PROTOCOL_VERSION,
    encode_frame,
    recv_message,
    run_worker,
    send_message,
    worker_command,
)
from repro.errors import (
    DistError,
    LedgerConflictError,
    ProtocolError,
    ReproError,
    WorkerExitError,
)
from repro.litmus.units import execute_litmus_unit, litmus_unit
from repro.parallel import run_units
from repro.scale import SMOKE
from repro.store import litmus_key
from repro.stress.strategies import NoStress
from repro.testing.campaign import run_campaign


def _plan(n=4, executions=8):
    """A small all-unique litmus plan (fast to execute in-process)."""
    tests = ["MP", "SB", "LB", "CoRR", "R", "S", "WRC", "IRIW"]
    units = []
    for i, test in enumerate(tests[:n]):
        key = litmus_key("K20", test, "no-str", 64, executions, i)
        units.append(
            litmus_unit(
                key, "K20", test, 64, NoStress(), executions, seed=i
            )
        )
    return units


class TestFrameCodec:
    def test_round_trip_one_frame(self):
        decoder = FrameDecoder()
        message = {"type": "hello", "worker": "w", "protocol": 1}
        assert decoder.feed(encode_frame(message)) == [message]

    def test_frame_split_across_reads(self):
        decoder = FrameDecoder()
        frame = encode_frame({"type": "request"})
        for byte in frame[:-1]:
            assert decoder.feed(bytes([byte])) == []
        assert decoder.feed(frame[-1:]) == [{"type": "request"}]

    def test_multiple_frames_per_read(self):
        decoder = FrameDecoder()
        data = encode_frame({"type": "a"}) + encode_frame({"type": "b"})
        assert decoder.feed(data) == [{"type": "a"}, {"type": "b"}]

    def test_oversize_length_prefix_refused(self):
        decoder = FrameDecoder()
        bad = (MAX_FRAME + 1).to_bytes(4, "big") + b"x"
        with pytest.raises(ProtocolError):
            decoder.feed(bad)

    def test_undecodable_payload_refused(self):
        decoder = FrameDecoder()
        bad = (4).to_bytes(4, "big") + b"\xff\xfe\xfd\xfc"
        with pytest.raises(ProtocolError):
            decoder.feed(bad)

    def test_untyped_message_refused(self):
        decoder = FrameDecoder()
        payload = b"[1,2]"
        with pytest.raises(ProtocolError):
            decoder.feed(len(payload).to_bytes(4, "big") + payload)

    def test_recv_message_queues_pipelined_frames(self):
        # A peer may send two frames back to back (a lease reply then a
        # broadcast done); recv_message must hand them out one by one.
        left, right = socket.socketpair()
        try:
            left.sendall(
                encode_frame({"type": "lease"}) + encode_frame({"type": "done"})
            )
            left.close()
            decoder = FrameDecoder()
            assert recv_message(right, decoder) == {"type": "lease"}
            assert decoder.pending == [{"type": "done"}]
            assert recv_message(right, decoder) == {"type": "done"}
            assert recv_message(right, decoder) is None  # clean EOF
        finally:
            right.close()


class TestLeaseTable:
    def _table(self, n=4, timeout=10.0, per_lease=1):
        clock = [0.0]
        table = LeaseTable(
            n_units=n,
            timeout=timeout,
            units_per_lease=per_lease,
            now=lambda: clock[0],
        )
        return table, clock

    def test_grant_complete_done(self):
        table, _ = self._table(n=2)
        a = table.grant("w1")
        b = table.grant("w1")
        assert a.indices == (0,) and b.indices == (1,)
        assert table.grant("w1") is None
        table.complete(a.lease_id)
        assert not table.done
        table.complete(b.lease_id)
        assert table.done

    def test_units_per_lease_batches(self):
        table, _ = self._table(n=5, per_lease=3)
        assert table.grant("w").indices == (0, 1, 2)
        assert table.grant("w").indices == (3, 4)

    def test_heartbeat_extends_deadline(self):
        table, clock = self._table(timeout=10.0)
        lease = table.grant("w")
        clock[0] = 8.0
        assert table.heartbeat(lease.lease_id)
        clock[0] = 15.0  # would have expired without the heartbeat
        assert table.expire() == []
        assert table.heartbeat(999) is False

    def test_expiry_repends_to_front(self):
        table, clock = self._table(n=3, timeout=5.0, per_lease=2)
        hung = table.grant("w1")  # units 0, 1
        assert hung.indices == (0, 1)
        clock[0] = 6.0
        expired = table.expire()
        assert [lease.lease_id for lease in expired] == [hung.lease_id]
        # Re-pended units come back first, in their original order.
        assert table.grant("w2").indices == (0, 1)
        assert table.grant("w2").indices == (2,)

    def test_release_worker_only_touches_that_worker(self):
        table, _ = self._table(n=4)
        w1 = table.grant("w1")
        w2 = table.grant("w2")
        table.release_worker("w1")
        assert w2.lease_id in table.active
        assert table.grant("w3").indices == w1.indices

    def test_completed_units_never_repend(self):
        table, clock = self._table(n=2, timeout=5.0, per_lease=2)
        lease = table.grant("w1")
        table.complete(lease.lease_id)
        # A stale handle to the same lease expiring must not resurrect
        # its units.
        clock[0] = 99.0
        assert table.expire() == []
        assert table.grant("w2") is None
        assert table.done

    def test_complete_unknown_lease_is_noop(self):
        table, clock = self._table(n=1, timeout=5.0)
        lease = table.grant("w1")
        clock[0] = 6.0
        table.expire()
        # The original holder reports in late: thanked and ignored.
        assert table.complete(lease.lease_id) == ()
        assert not table.done

    def test_validation(self):
        with pytest.raises(DistError):
            LeaseTable(n_units=1, timeout=0.0)
        with pytest.raises(DistError):
            LeaseTable(n_units=1, units_per_lease=0)


def _serve_in_thread(coordinator):
    """Run ``coordinator.serve()`` in a daemon thread; returns the
    thread and a box that will hold ``records`` or ``error``."""
    box = {}

    def target():
        try:
            box["records"] = coordinator.serve()
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


def _fake_worker(host, port, name="fake"):
    """Handshake a raw protocol connection (for driving failure modes
    a well-behaved worker never exercises)."""
    sock = socket.create_connection((host, port), timeout=10)
    sock.settimeout(10)
    decoder = FrameDecoder()
    send_message(
        sock,
        {"type": "hello", "worker": name, "protocol": PROTOCOL_VERSION},
    )
    welcome = recv_message(sock, decoder)
    assert welcome["type"] == "welcome"
    return sock, decoder


class TestCoordinatorWorker:
    def test_single_worker_matches_local_execution(self):
        units = _plan()
        expected = run_units(units)
        coordinator = Coordinator(units)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        executed = run_worker(host, port, name="solo")
        thread.join(timeout=30)
        assert executed == len(units)
        assert box["records"] == expected

    def test_two_workers_split_the_plan(self):
        units = _plan(n=6)
        expected = run_units(units)
        coordinator = Coordinator(units)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        counts = []
        workers = [
            threading.Thread(
                target=lambda i=i: counts.append(
                    run_worker(host, port, name=f"w{i}")
                ),
                daemon=True,
            )
            for i in range(2)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=30)
        thread.join(timeout=30)
        assert box["records"] == expected
        assert sum(counts) >= len(units)  # >= : a reassigned duplicate

    def test_duplicate_plan_keys_rejected(self):
        unit = _plan(n=1)[0]
        with pytest.raises(DistError):
            Coordinator([unit, unit])

    def test_worker_eof_reassigns_lease(self):
        # The kill -9 shape: a worker takes a lease and its connection
        # drops without a result.  The units re-pend immediately and the
        # next worker completes the full plan.
        units = _plan()
        expected = run_units(units)
        coordinator = Coordinator(units)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        sock, decoder = _fake_worker(host, port, name="doomed")
        send_message(sock, {"type": "request"})
        lease = recv_message(sock, decoder)
        assert lease["type"] == "lease"
        sock.close()  # dies holding the lease
        run_worker(host, port, name="survivor")
        thread.join(timeout=30)
        assert box["records"] == expected

    def test_silent_worker_lease_expires(self):
        # A hung worker (connection alive, no heartbeats) loses its
        # lease at the deadline; a healthy worker finishes the plan.
        units = _plan(n=2)
        expected = run_units(units)
        coordinator = Coordinator(units, lease_timeout=0.3)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        sock, decoder = _fake_worker(host, port, name="hung")
        send_message(sock, {"type": "request"})
        assert recv_message(sock, decoder)["type"] == "lease"
        try:
            # ...and says nothing more.  The healthy worker drains the
            # other unit, waits, then picks up the expired one.
            run_worker(host, port, name="healthy")
            thread.join(timeout=30)
            assert box["records"] == expected
        finally:
            sock.close()

    def test_duplicate_result_merges_idempotently(self):
        units = _plan(n=1)
        record = execute_litmus_unit(units[0])
        coordinator = Coordinator(units)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        sock, decoder = _fake_worker(host, port)
        send_message(sock, {"type": "request"})
        lease = recv_message(sock, decoder)
        result = {
            "type": "result",
            "lease": lease["lease"],
            "records": [record.to_json()],
        }
        send_message(sock, result)
        send_message(sock, result)  # replayed frame: absorbed
        thread.join(timeout=30)
        sock.close()
        assert box["records"] == [record]

    def test_conflicting_result_refused(self):
        units = _plan(n=2)
        record = execute_litmus_unit(units[0])
        tampered = dataclasses.replace(
            record, payload={**record.payload, "weak": -1}
        )
        coordinator = Coordinator(units)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        sock, decoder = _fake_worker(host, port)
        send_message(sock, {"type": "request"})
        lease = recv_message(sock, decoder)
        send_message(
            sock,
            {
                "type": "result",
                "lease": lease["lease"],
                "records": [record.to_json(), tampered.to_json()],
            },
        )
        thread.join(timeout=30)
        sock.close()
        assert isinstance(box["error"], LedgerConflictError)

    def test_unknown_content_key_refused(self):
        units = _plan(n=1)
        record = execute_litmus_unit(units[0])
        alien = dataclasses.replace(record, key="litmus:not:in:plan")
        coordinator = Coordinator(units)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        sock, decoder = _fake_worker(host, port)
        send_message(sock, {"type": "request"})
        lease = recv_message(sock, decoder)
        send_message(
            sock,
            {
                "type": "result",
                "lease": lease["lease"],
                "records": [alien.to_json()],
            },
        )
        thread.join(timeout=30)
        sock.close()
        assert isinstance(box["error"], DistError)

    def test_worker_churn_via_max_units(self):
        # One worker joins, executes a single unit, leaves voluntarily;
        # a later worker finishes the rest.  The merge never notices.
        units = _plan()
        expected = run_units(units)
        coordinator = Coordinator(units)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        first = run_worker(host, port, name="drifter", max_units=1)
        second = run_worker(host, port, name="closer")
        thread.join(timeout=30)
        assert first == 1
        assert second == len(units) - 1
        assert box["records"] == expected

    def test_protocol_mismatch_fenced_off(self):
        units = _plan(n=1)
        coordinator = Coordinator(units)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        sock = socket.create_connection((host, port), timeout=10)
        sock.settimeout(10)
        decoder = FrameDecoder()
        send_message(
            sock, {"type": "hello", "worker": "old", "protocol": 999}
        )
        reply = recv_message(sock, decoder)
        assert reply["type"] == "error"
        assert "protocol" in reply["message"]
        sock.close()
        run_worker(host, port)  # a current worker still completes
        thread.join(timeout=30)
        assert "records" in box

    def test_hello_required_first(self):
        units = _plan(n=1)
        coordinator = Coordinator(units)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        sock = socket.create_connection((host, port), timeout=10)
        sock.settimeout(10)
        decoder = FrameDecoder()
        send_message(sock, {"type": "request"})
        reply = recv_message(sock, decoder)
        assert reply["type"] == "error"
        sock.close()
        run_worker(host, port)
        thread.join(timeout=30)
        assert "records" in box

    def test_worker_raises_when_coordinator_vanishes(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def half_coordinator():
            conn, _ = listener.accept()
            decoder = FrameDecoder()
            assert recv_message(conn, decoder)["type"] == "hello"
            send_message(
                conn,
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "units_total": 1,
                },
            )
            conn.close()  # crash before serving any lease

        thread = threading.Thread(target=half_coordinator, daemon=True)
        thread.start()
        try:
            with pytest.raises(WorkerExitError):
                # reconnect_timeout=0 opts out of ride-it-out backoff so a
                # vanished coordinator is immediately fatal, as before v2.
                run_worker(host, port, connect_timeout=5, reconnect_timeout=0)
        finally:
            thread.join(timeout=10)
            listener.close()

    def test_connect_timeout_when_no_coordinator(self):
        # A port nobody is listening on: bind-then-close guarantees it
        # was recently free.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(WorkerExitError):
            run_worker("127.0.0.1", port, connect_timeout=0.3)


TINY = dataclasses.replace(SMOKE, campaign_runs=6)


class TestDistributedSubmit:
    def test_worker_command_shape(self):
        argv = worker_command("10.0.0.5", 7077, "w3", jobs=2)
        assert argv[0] == sys.executable
        assert "--connect" in argv
        assert argv[argv.index("--connect") + 1] == "10.0.0.5:7077"
        assert argv[argv.index("--jobs") + 1] == "2"
        assert "--faults" not in argv
        assert "--reconnect-timeout" not in argv
        armed = worker_command(
            "10.0.0.5", 7077, "w3", fault_plan="/tmp/plan.json",
            reconnect_timeout=7.5,
        )
        assert armed[armed.index("--faults") + 1] == "/tmp/plan.json"
        assert armed[armed.index("--reconnect-timeout") + 1] == "7.5"

    def test_distributed_campaign_matches_serial(self, k20):
        # The tentpole acceptance shape, in-process: the same campaign
        # through two spawned socket workers is bit-identical to the
        # serial run.
        args = dict(
            chips=[k20],
            environments=["no-str-", "sys-str+"],
            scale=TINY,
            seed=3,
        )
        serial = run_campaign(**args)
        distributed = run_campaign(
            **args, submit=DistributedSubmit(workers=2)
        )
        assert distributed == serial

    def test_all_workers_dead_aborts(self, monkeypatch):
        import repro.dist.submit as submit_module

        monkeypatch.setattr(
            submit_module,
            "worker_command",
            lambda host, port, name, jobs=1, **kwargs: [
                sys.executable, "-c", "import sys; sys.exit(3)"
            ],
        )
        submit = DistributedSubmit(workers=2)
        with pytest.raises(DistError, match="spawned workers"):
            submit(_plan(n=1), None, None)

    def test_non_distributable_experiment_rejected(self):
        from repro.reporting.experiments import run_experiment

        with pytest.raises(ValueError, match="cannot run distributed"):
            run_experiment(
                "table1", scale=TINY, submit=DistributedSubmit(workers=1)
            )

    def test_scale_dist_knob(self):
        assert SMOKE.dist_workers == 0
        assert SMOKE.with_dist(2).dist_workers == 2
        with pytest.raises(ReproError):
            SMOKE.with_dist(-1)


def test_chip_fixture_sanity(k20):
    assert get_chip("K20") is k20
