"""Tests for the SIMT execution engine and kernel DSL."""

import numpy as np
import pytest

from repro.chips import SC_REFERENCE, get_chip
from repro.gpu.addresses import AddressSpace
from repro.gpu.engine import Engine, Outcome
from repro.gpu.kernel import Kernel, LaunchConfig
from repro.gpu.memory import MemorySystem
from repro.gpu.pressure import StressField


def run_kernel(fn, args, grid=2, block=4, warp=4, chip=None, seed=0,
               max_ticks=50_000, fence_sites=frozenset()):
    chip = chip or SC_REFERENCE
    mem = MemorySystem(chip, StressField.zero(chip),
                       np.random.default_rng(seed))
    engine = Engine(chip, mem, np.random.default_rng(seed + 1),
                    max_ticks=max_ticks)
    config = LaunchConfig(grid_dim=grid, block_dim=block, warp_size=warp)
    result = engine.run(Kernel("k", fn, tuple(args)), config,
                        fence_sites=fence_sites)
    return result, mem


class TestBasicExecution:
    def test_every_thread_runs(self):
        space = AddressSpace()
        out = space.alloc("out", 8)

        def kernel(ctx, out):
            yield from ctx.store(out, ctx.global_tid(), ctx.global_tid())

        result, mem = run_kernel(kernel, [out])
        assert result.outcome is Outcome.OK
        assert [mem.host_read(out, i) for i in range(8)] == list(range(8))

    def test_load_returns_initialised_value(self):
        space = AddressSpace()
        data = space.alloc("data", 4)
        out = space.alloc("out", 4)

        def kernel(ctx, data, out):
            v = yield from ctx.load(data, ctx.global_tid() % 4)
            yield from ctx.store(out, ctx.global_tid() % 4, v * 2)

        def init(mem):
            mem.host_fill(data, [1, 2, 3, 4])

        chip = SC_REFERENCE
        mem = MemorySystem(chip, StressField.zero(chip),
                           np.random.default_rng(0))
        init(mem)
        engine = Engine(chip, mem, np.random.default_rng(1))
        engine.run(Kernel("k", kernel, (data, out)),
                   LaunchConfig(1, 4, 4))
        assert [mem.host_read(out, i) for i in range(4)] == [2, 4, 6, 8]

    def test_atomic_add_counts_threads(self):
        space = AddressSpace()
        counter = space.alloc("counter", 1)

        def kernel(ctx, counter):
            yield from ctx.atomic_add(counter, 0, 1)

        result, mem = run_kernel(kernel, [counter], grid=4, block=8)
        assert mem.host_read(counter, 0) == 32

    def test_atomic_cas_exactly_one_winner(self):
        space = AddressSpace()
        cell = space.alloc("cell", 1)
        wins = space.alloc("wins", 1)

        def kernel(ctx, cell, wins):
            old = yield from ctx.atomic_cas(cell, 0, 0, 1)
            if old == 0:
                yield from ctx.atomic_add(wins, 0, 1)

        result, mem = run_kernel(kernel, [cell, wins], grid=4, block=8)
        assert mem.host_read(wins, 0) == 1

    def test_atomic_inc_mod_wraps(self):
        space = AddressSpace()
        c = space.alloc("c", 1)

        def kernel(ctx, c):
            yield from ctx.atomic_inc_mod(c, 0, 2)

        result, mem = run_kernel(kernel, [c], grid=1, block=6, warp=8)
        # 6 increments wrapping at limit 2: 1,2,0,1,2,0
        assert mem.host_read(c, 0) == 0


class TestBarriers:
    def test_barrier_orders_phases(self):
        space = AddressSpace()
        data = space.alloc("data", 8)
        out = space.alloc("out", 8)

        def kernel(ctx, data, out):
            yield from ctx.store(data, ctx.tid, ctx.tid + 1)
            yield from ctx.syncthreads()
            # Read a neighbour's value: must be visible after barrier.
            neighbour = (ctx.tid + 1) % ctx.block_dim
            v = yield from ctx.load(data, neighbour)
            yield from ctx.store(out, ctx.tid, v)

        result, mem = run_kernel(kernel, [data, out], grid=1, block=8,
                                 warp=4, seed=3)
        got = [mem.host_read(out, i) for i in range(8)]
        assert got == [(i + 1) % 8 + 1 for i in range(8)]

    def test_barrier_with_exited_threads_is_lenient(self):
        space = AddressSpace()
        out = space.alloc("out", 8)

        def kernel(ctx, out):
            if ctx.tid >= 4:
                return
            yield from ctx.syncthreads()
            yield from ctx.store(out, ctx.tid, 1)

        result, _mem = run_kernel(kernel, [out], grid=1, block=8)
        assert result.outcome is Outcome.OK


class TestTimeout:
    def test_nonterminating_kernel_times_out(self):
        def kernel(ctx):
            while True:
                yield from ctx.compute(1)

        result, _mem = run_kernel(kernel, [], grid=1, block=1,
                                  max_ticks=500)
        assert result.timed_out

    def test_timeout_can_raise(self):
        from repro.errors import KernelTimeoutError

        def kernel(ctx):
            while True:
                yield from ctx.compute(1)

        chip = SC_REFERENCE
        mem = MemorySystem(chip, StressField.zero(chip),
                           np.random.default_rng(0))
        engine = Engine(chip, mem, np.random.default_rng(1),
                        max_ticks=200, raise_on_timeout=True)
        with pytest.raises(KernelTimeoutError):
            engine.run(Kernel("k", kernel, ()), LaunchConfig(1, 1, 1))


class TestFenceInstrumentation:
    def test_site_fence_executes_when_active(self):
        space = AddressSpace()
        out = space.alloc("out", 4)

        def kernel(ctx, out):
            yield from ctx.store(out, ctx.tid, 1, site="s1")

        result, _ = run_kernel(kernel, [out], grid=1, block=4,
                               fence_sites=frozenset({"s1"}))
        assert result.n_fences == 4

    def test_site_fence_skipped_when_inactive(self):
        space = AddressSpace()
        out = space.alloc("out", 4)

        def kernel(ctx, out):
            yield from ctx.store(out, ctx.tid, 1, site="s1")

        result, _ = run_kernel(kernel, [out], grid=1, block=4)
        assert result.n_fences == 0

    def test_fence_with_pending_store_costs_more(self):
        space = AddressSpace()
        out = space.alloc("out", 8)
        data = space.alloc("data", 8)

        def store_kernel(ctx, out, data):
            yield from ctx.store(out, ctx.tid, 1, site="s")

        def load_kernel(ctx, out, data):
            yield from ctx.load(data, ctx.tid, site="s")

        chip = get_chip("K20")
        r_store, _ = run_kernel(store_kernel, [out, data], grid=1,
                                block=8, chip=chip,
                                fence_sites=frozenset({"s"}))
        r_load, _ = run_kernel(load_kernel, [out, data], grid=1,
                               block=8, chip=chip,
                               fence_sites=frozenset({"s"}))
        assert r_store.fence_stall_cycles > r_load.fence_stall_cycles


class TestMultiKernel:
    def test_run_all_accumulates(self):
        space = AddressSpace()
        c = space.alloc("c", 1)

        def k1(ctx, c):
            yield from ctx.atomic_add(c, 0, 1)

        def k2(ctx, c):
            yield from ctx.atomic_add(c, 0, 10)

        chip = SC_REFERENCE
        mem = MemorySystem(chip, StressField.zero(chip),
                           np.random.default_rng(0))
        engine = Engine(chip, mem, np.random.default_rng(1))
        cfg = LaunchConfig(1, 2, 2)
        result = engine.run_all(
            [(Kernel("k1", k1, (c,)), cfg), (Kernel("k2", k2, (c,)), cfg)]
        )
        assert result.outcome is Outcome.OK
        assert mem.host_read(c, 0) == 22
        assert result.ticks > 0


class TestLaunchConfig:
    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            LaunchConfig(0, 4, 4)
        with pytest.raises(ValueError):
            LaunchConfig(4, 0, 4)

    def test_warps_per_block_rounds_up(self):
        assert LaunchConfig(1, 10, 4).warps_per_block == 3
        assert LaunchConfig(1, 8, 4).warps_per_block == 2

    def test_n_threads(self):
        assert LaunchConfig(3, 5, 4).n_threads == 15
