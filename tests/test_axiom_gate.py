"""Simulator-soundness gate: backends vs the axiomatic model.

The gate runs all sixteen registry tests on all three execution
backends at fixed seeds, collects every observed final state, and
asserts none is axiomatically forbidden — this is the suite CI's
"soundness-gate" step runs.  The collectors themselves are also pinned
against their run_* counterparts: at the same seed they must report
the same weak counts, since each execution draws from its own seed
stream (running the rounds an early-exit would skip cannot leak into
later executions).
"""

from __future__ import annotations

import pytest

from repro.axiom.model import classify
from repro.chips import SC_REFERENCE
from repro.litmus.compile import observed_outcomes_engine, run_litmus_compiled
from repro.litmus.runner import observed_outcomes, run_litmus
from repro.litmus.tests import ALL_TESTS, get_test
from repro.litmus.vector import observed_outcomes_vector, run_litmus_vector
from repro.stress.strategies import TunedStress
from repro.testing.soundness import DEFAULT_EXECUTIONS, soundness_gate
from repro.tuning.pipeline import shipped_params

SEED = 7


@pytest.fixture(scope="module")
def gate_report():
    return soundness_gate(seed=SEED)


def test_gate_passes(gate_report):
    assert gate_report.ok, "\n".join(gate_report.violations)


def test_gate_covers_every_test_and_backend(gate_report):
    cells = {(c.test, c.backend) for c in gate_report.checks}
    names = {t.name for t in ALL_TESTS}
    assert cells == {
        (name, backend)
        for name in names
        for backend in ("direct", "engine", "vector")
    }


def test_gate_is_not_vacuous(gate_report):
    """The gate only means something if the backends actually ran and
    produced states: every cell observed at least one complete round,
    and the weak tests fired somewhere at these budgets."""
    for check in gate_report.checks:
        assert check.rounds > 0, (check.test, check.backend)
        assert check.distinct > 0, (check.test, check.backend)
        assert check.incomplete == 0, (check.test, check.backend)
    assert any(c.weak for c in gate_report.checks)


def test_gate_checks_condition_verdicts(gate_report):
    assert len(gate_report.condition_verdicts) == len(ALL_TESTS)
    for name, verdict, expected, sc_agrees in gate_report.condition_verdicts:
        assert verdict == expected, name
        assert sc_agrees, name


def test_sc_reference_only_produces_sc_states(gate_report):
    assert len(gate_report.sc_reference) == len(ALL_TESTS)
    for name, non_sc in gate_report.sc_reference:
        assert not non_sc, (name, non_sc)


@pytest.mark.parametrize("name", ["MP", "IRIW", "CoWW"])
def test_direct_collector_matches_run_litmus(k20, name):
    test = get_test(name)
    spec = TunedStress(shipped_params("K20"))
    d = 2 * k20.patch_size
    n = DEFAULT_EXECUTIONS["direct"]
    obs = observed_outcomes(k20, test, d, spec, n, seed=SEED)
    ref = run_litmus(k20, test, d, spec, n, seed=SEED)
    assert obs.weak == ref.weak
    assert obs.incomplete == 0
    assert sum(obs.outcomes.values()) == n * 8  # every round recorded


@pytest.mark.parametrize("name", ["MP", "SB"])
def test_engine_collector_matches_run_litmus_compiled(k20, name):
    test = get_test(name)
    spec = TunedStress(shipped_params("K20"))
    d = 2 * k20.patch_size
    n = DEFAULT_EXECUTIONS["engine"]
    obs = observed_outcomes_engine(k20, test, d, spec, n, seed=SEED)
    ref = run_litmus_compiled(k20, test, d, spec, n, seed=SEED)
    assert obs.weak == ref.weak
    assert sum(obs.outcomes.values()) == n * 8


@pytest.mark.parametrize("name", ["MP", "2+2W"])
def test_vector_collector_matches_run_litmus_vector(k20, name):
    test = get_test(name)
    spec = TunedStress(shipped_params("K20"))
    d = 2 * k20.patch_size
    n = DEFAULT_EXECUTIONS["vector"]
    obs = observed_outcomes_vector(k20, test, d, spec, n, seed=SEED)
    ref = run_litmus_vector(k20, test, d, spec, n, seed=SEED)
    assert obs.weak == ref.weak
    assert sum(obs.outcomes.values()) == n * 8


def test_collectors_observe_weak_states_the_model_allows(k20):
    """On MP the direct backend's weak rounds land exactly on the
    model's weak-only state (r1=1, r2=0) — soundness with bite."""
    test = get_test("MP")
    spec = TunedStress(shipped_params("K20"))
    obs = observed_outcomes(
        k20, test, 2 * k20.patch_size, spec, 60, seed=SEED
    )
    report = classify(test)
    weak_states = {
        s for s in obs.outcomes
        if report.verdict_of(dict(s[0]), dict(s[1])) == "weak"
    }
    assert weak_states == {((("r1", 1), ("r2", 0)), (("x", 1), ("y", 1)))}


def test_sc_reference_is_actually_restrictive(sc_ref):
    """The SC-only assertion is meaningful: the same budget on K20
    observes non-SC states, the reference chip none."""
    test = get_test("MP")
    spec = TunedStress(shipped_params(SC_REFERENCE.short_name))
    obs = observed_outcomes(
        sc_ref, test, 2 * sc_ref.patch_size, spec, 40, seed=SEED
    )
    report = classify(test)
    assert all(
        report.verdict_of(dict(s[0]), dict(s[1])) == "sc"
        for s in obs.outcomes
    )
