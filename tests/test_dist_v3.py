"""Protocol v3: adaptive leases, pipelining, streaming, compression.

Covers the four tentpole features of the distributed-protocol overhaul
at every layer boundary:

* :class:`~repro.dist.LeaseTable` adaptive sizing under an injected
  clock (probe leases, EWMA convergence, tail shrink, deadline
  scaling, fleet fallback, the fixed-size override);
* zlib frame compression (round trip, small-frame passthrough) and a
  hypothesis fuzz of the inflate path — bit flips, truncation, bombs
  and trailing bytes must all surface as typed
  :class:`~repro.errors.ProtocolError`, never anything else;
* the v3<->v2 handshake downgrade in both directions (old worker on a
  new coordinator, new worker told to speak v2);
* lease pipelining and ``result-part`` streaming end to end, with the
  byte-identity contract checked against a serial run.
"""

from __future__ import annotations

import socket
import threading
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dist import (
    COMPRESS_FLAG,
    Coordinator,
    FrameDecoder,
    LeaseTable,
    MAX_FRAME,
    MAX_LEASE_UNITS,
    WorkerStats,
    encode_frame,
    recv_message,
    run_worker,
    send_message,
)
from repro.dist.coordinator import (
    WAIT_RETRY_MAX_S,
    WAIT_RETRY_MIN_S,
    WAIT_RETRY_S,
)
from repro.dist.leases import EWMA_ALPHA, TAIL_FACTOR
from repro.dist.worker import _Session
from repro.errors import DistError, ProtocolError
from repro.litmus.units import litmus_unit
from repro.parallel import run_units
from repro.parallel.executor import SERIAL
from repro.store import litmus_key
from repro.stress.strategies import NoStress


def _units(n=3, executions=8):
    tests = ["MP", "SB", "LB", "CoRR", "R", "S", "WRC", "IRIW"]
    units = []
    for i in range(n):
        test = tests[i % len(tests)]
        key = litmus_key("K20", test, "no-str", 64, executions, i)
        units.append(
            litmus_unit(key, "K20", test, 64, NoStress(), executions, seed=i)
        )
    return units


def _serve_in_thread(coordinator):
    box = {}

    def target():
        try:
            box["records"] = coordinator.serve()
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


class _Clock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


# ---------------------------------------------------------------------------
# Adaptive lease sizing (LeaseTable controller, injected clock)


class TestAdaptiveSizing:
    def _table(self, n=100, timeout=60.0, **kwargs):
        clock = _Clock()
        return LeaseTable(n_units=n, timeout=timeout, now=clock, **kwargs), clock

    def test_no_history_grants_a_one_unit_probe(self):
        table, _ = self._table()
        lease = table.grant("w0")
        assert lease.indices == (0,)
        # No estimate -> no slack: the probe's deadline is exactly the
        # base timeout.
        assert lease.deadline == pytest.approx(60.0)

    def test_sizing_targets_the_lease_duration(self):
        table, _ = self._table()
        table.observe("w0", 10, 1.0)  # 0.1 s/unit
        lease = table.grant("w0")
        # target_lease_s=2.0 / 0.1 = 20 units.
        assert len(lease.indices) == 20

    def test_deadline_scales_with_granted_size(self):
        table, clock = self._table()
        clock.t = 5.0
        table.observe("w0", 10, 1.0)
        lease = table.grant("w0")
        # now + timeout + per_unit * size slack, so a big lease is not
        # punished for being big.
        assert lease.deadline == pytest.approx(5.0 + 60.0 + 0.1 * 20)
        assert lease.granted_at == pytest.approx(5.0)

    def test_ewma_converges_on_the_recent_rate(self):
        table, _ = self._table()
        table.observe("w0", 1, 1.0)
        assert table.service_ewma["w0"] == pytest.approx(1.0)
        table.observe("w0", 1, 0.0)
        assert table.service_ewma["w0"] == pytest.approx(1.0 - EWMA_ALPHA)
        for _ in range(40):
            table.observe("w0", 1, 0.1)
        assert table.service_ewma["w0"] == pytest.approx(0.1, rel=1e-3)

    def test_tail_shrink_caps_the_last_grants(self):
        table, _ = self._table(n=4)
        table.observe("w0", 100, 1.0)  # 0.01 s/unit -> wants 200 units
        lease = table.grant("w0")
        # Never more than ceil(pending / TAIL_FACTOR): one straggler
        # cannot hold every remaining unit hostage.
        assert len(lease.indices) == -(-4 // TAIL_FACTOR)

    def test_hard_ceiling_on_one_grant(self):
        table, _ = self._table(n=1000)
        table.observe("w0", 1000, 1e-6)
        lease = table.grant("w0")
        assert len(lease.indices) == MAX_LEASE_UNITS

    def test_fresh_worker_borrows_the_fleet_mean(self):
        table, _ = self._table()
        table.observe("veteran", 10, 1.0)
        assert table.estimate("rookie") == pytest.approx(0.1)
        lease = table.grant("rookie")
        assert len(lease.indices) == 20  # sized, not a probe

    def test_fixed_units_per_lease_disables_the_controller(self):
        table, _ = self._table(units_per_lease=3, timeout=10.0)
        table.observe("w0", 10, 1.0)
        lease = table.grant("w0")
        assert lease.indices == (0, 1, 2)
        assert lease.deadline == pytest.approx(10.0)  # no slack

    @pytest.mark.parametrize(
        "n_units, elapsed",
        [
            (0, 1.0),
            (-3, 1.0),
            (5, float("nan")),
            (5, float("inf")),
            (5, -1.0),
            (5, "bogus"),
            (5, None),
        ],
    )
    def test_junk_observations_are_ignored(self, n_units, elapsed):
        table, _ = self._table()
        table.observe("w0", n_units, elapsed)
        assert table.service_ewma == {}

    def test_target_lease_s_validated(self):
        with pytest.raises(DistError, match="target_lease_s"):
            LeaseTable(n_units=1, target_lease_s=0.0)
        with pytest.raises(DistError, match="target_lease_s"):
            LeaseTable(n_units=1, target_lease_s=float("inf"))

    def test_voluntary_release_costs_no_attempt_budget(self):
        table, _ = self._table(n=3, units_per_lease=3)
        lease = table.grant("w0")
        settlement = table.settle(lease.lease_id)  # nothing attempted
        assert settlement.abandoned == (0, 1, 2)
        assert table.attempts == {}
        assert list(table.pending) == [0, 1, 2]  # re-pended at the front


# ---------------------------------------------------------------------------
# Adaptive idle-worker retry (coordinator)


class TestAdaptiveWaitRetry:
    def _coordinator(self):
        coordinator = Coordinator([])
        clock = _Clock()
        coordinator._table = LeaseTable(n_units=2, timeout=10.0, now=clock)
        return coordinator, clock

    def test_no_active_lease_falls_back_to_the_constant(self):
        coordinator, _ = self._coordinator()
        assert coordinator._wait_retry_s() == WAIT_RETRY_S

    def test_far_deadline_clamped_to_the_ceiling(self):
        coordinator, _ = self._coordinator()
        coordinator._table.grant("w0")  # deadline in 10s
        assert coordinator._wait_retry_s() == WAIT_RETRY_MAX_S

    def test_near_deadline_tracks_it_above_the_floor(self):
        coordinator, clock = self._coordinator()
        coordinator._table.grant("w0")
        clock.t = 9.0  # 1s to deadline: inside the clamp window
        assert coordinator._wait_retry_s() == pytest.approx(1.0)
        clock.t = 9.999  # effectively due: floor stops the hammering
        assert coordinator._wait_retry_s() == WAIT_RETRY_MIN_S


# ---------------------------------------------------------------------------
# Frame compression


def _big_message(n=60):
    return {"type": "result", "records": ["payload-" * 16] * n}


class TestFrameCompression:
    def test_round_trip_sets_the_flag_and_shrinks(self):
        message = _big_message()
        raw = encode_frame(message)
        frame = encode_frame(message, compress=True)
        assert len(frame) < len(raw)
        (header,) = (int.from_bytes(frame[:4], "big"),)
        assert header & COMPRESS_FLAG
        assert FrameDecoder().feed(frame) == [message]

    def test_small_frames_ship_raw(self):
        message = {"type": "request"}
        frame = encode_frame(message, compress=True)
        assert frame == encode_frame(message)
        assert not int.from_bytes(frame[:4], "big") & COMPRESS_FLAG

    def test_compression_that_grows_a_frame_is_skipped(self, monkeypatch):
        # Deflate is only used when it actually shrinks the frame; an
        # incompressible payload must ship raw, unflagged.
        monkeypatch.setattr(
            "repro.dist.protocol.zlib.compress",
            lambda data, level=6: data + b"pad",
        )
        message = _big_message()
        frame = encode_frame(message, compress=True)
        assert frame == encode_frame(message)
        assert not int.from_bytes(frame[:4], "big") & COMPRESS_FLAG
        assert FrameDecoder().feed(frame) == [message]

    def test_wire_stats_count_the_saving(self):
        from repro.dist import WireStats

        left, right = socket.socketpair()
        out_stats, in_stats = WireStats(), WireStats()
        try:
            send_message(
                left, _big_message(), compress=True, stats=out_stats
            )
            decoder = FrameDecoder(stats=in_stats)
            assert recv_message(right, decoder) == _big_message()
        finally:
            left.close()
            right.close()
        assert out_stats.compressed_out == 1
        assert out_stats.wire_out < out_stats.raw_out
        assert in_stats.compressed_in == 1
        assert in_stats.raw_in == out_stats.raw_out
        assert "compressed frame(s)" in out_stats.summary()

    def test_decompression_bomb_refused(self):
        deflated = zlib.compress(b"\x00" * (MAX_FRAME + 1))
        frame = (
            (len(deflated) | COMPRESS_FLAG).to_bytes(4, "big") + deflated
        )
        with pytest.raises(ProtocolError, match="inflates past"):
            FrameDecoder().feed(frame)

    def test_trailing_bytes_after_deflate_stream_refused(self):
        payload = zlib.compress(b"x" * 4096) + b"extra"
        frame = (len(payload) | COMPRESS_FLAG).to_bytes(4, "big") + payload
        with pytest.raises(ProtocolError, match="trailing"):
            FrameDecoder().feed(frame)


class TestCompressedFrameFuzz:
    """The inflate path under hostile bytes: every corruption is a
    typed ProtocolError — never a hang, a crash, or silent garbage."""

    _FRAME = encode_frame(_big_message(), compress=True)

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(position=st.integers(0, 2**31), flip=st.integers(1, 255))
    def test_bit_flipped_body_always_refused(self, position, flip):
        frame = bytearray(self._FRAME)
        index = 4 + position % (len(frame) - 4)
        frame[index] ^= flip
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(bytes(frame))

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(cut=st.integers(1, 2**31))
    def test_truncated_deflate_stream_always_refused(self, cut):
        body = self._FRAME[4:]
        keep = len(body) - (1 + cut % (len(body) - 1))
        truncated = body[:keep]
        frame = (
            (len(truncated) | COMPRESS_FLAG).to_bytes(4, "big") + truncated
        )
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(frame)

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(garbage=st.binary(min_size=1, max_size=256))
    def test_arbitrary_bytes_as_compressed_body_refused(self, garbage):
        frame = (len(garbage) | COMPRESS_FLAG).to_bytes(4, "big") + garbage
        decoder = FrameDecoder()
        try:
            messages = decoder.feed(frame)
        except ProtocolError:
            return
        # Vanishingly unlikely, but if random bytes are a valid deflate
        # stream they must still decode to a typed message to pass.
        assert all(isinstance(m, dict) and "type" in m for m in messages)


# ---------------------------------------------------------------------------
# Handshake negotiation / downgrade


class TestHandshakeDowngrade:
    def test_v2_worker_served_by_v3_coordinator(self):
        units = _units(n=1)
        coordinator = Coordinator(units, compress=True)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        sock = socket.create_connection((host, port), timeout=10)
        sock.settimeout(10)
        decoder = FrameDecoder()
        try:
            send_message(
                sock,
                {
                    "type": "hello",
                    "worker": "legacy",
                    "protocol": 2,
                    "compress": True,  # v2 asking for it changes nothing
                },
            )
            welcome = recv_message(sock, decoder)
            assert welcome["type"] == "welcome"
            assert welcome["protocol"] == 2
            assert welcome["compress"] is False
            send_message(sock, {"type": "request"})
            lease = recv_message(sock, decoder)
            assert lease["type"] == "lease"
            records = run_units(units, SERIAL)
            send_message(
                sock,
                {
                    "type": "result",
                    "lease": lease["lease"],
                    "records": [r.to_json() for r in records],
                },
            )
            assert recv_message(sock, decoder)["type"] == "done"
        finally:
            sock.close()
        thread.join(timeout=30)
        assert [r.key for r in box["records"]] == [u.key for u in units]

    def test_v3_features_fenced_off_from_v2_connections(self):
        units = _units(n=1)
        coordinator = Coordinator(units)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        sock = socket.create_connection((host, port), timeout=10)
        sock.settimeout(10)
        decoder = FrameDecoder()
        try:
            send_message(
                sock, {"type": "hello", "worker": "old", "protocol": 2}
            )
            assert recv_message(sock, decoder)["type"] == "welcome"
            # A v2 connection sending a v3-only frame is a protocol
            # violation, not a silent no-op.
            send_message(sock, {"type": "result-part", "lease": 1})
            reply = recv_message(sock, decoder)
            assert reply["type"] == "error"
            assert "result-part" in reply["message"]
        finally:
            sock.close()
        run_worker(host, port)  # a real worker finishes the campaign
        thread.join(timeout=30)
        assert "records" in box

    def test_worker_accepts_a_v2_downgrade(self):
        left, right = socket.socketpair()
        left.settimeout(10)
        right.settimeout(10)
        try:
            send_message(
                left,
                {
                    "type": "welcome",
                    "protocol": 2,
                    "compress": True,  # lying coordinator: v2 wins
                    "units_total": 0,
                },
            )
            session = _Session(right, name="w", protocol=3, compress=True)
            session._handshake()
            assert session.negotiated == 2
            assert not session.v3
            assert session.send_compress is False
            hello = recv_message(left, FrameDecoder())
            assert hello["protocol"] == 3
            assert hello["compress"] is True
        finally:
            left.close()
            right.close()

    @pytest.mark.parametrize("negotiated", [5, 1, True, "3", None])
    def test_worker_refuses_an_unusable_negotiation(self, negotiated):
        left, right = socket.socketpair()
        left.settimeout(10)
        right.settimeout(10)
        try:
            send_message(
                left,
                {
                    "type": "welcome",
                    "protocol": negotiated,
                    "units_total": 0,
                },
            )
            session = _Session(right, name="w", protocol=3)
            with pytest.raises(ProtocolError, match="negotiated"):
                session._handshake()
        finally:
            left.close()
            right.close()


# ---------------------------------------------------------------------------
# Pipelining, release, result-part streaming


class TestPipelining:
    def test_pipelined_campaign_is_byte_identical_to_serial(self):
        units = _units(n=12)
        reference = run_units(units, SERIAL)
        coordinator = Coordinator(units, compress=True)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        stats = WorkerStats()
        run_worker(host, port, name="pipeliner", stats=stats)
        thread.join(timeout=60)
        assert [r.to_json() for r in box["records"]] == [
            r.to_json() for r in reference
        ]
        assert stats.executed == len(units)
        # The probe lease pays one blocking round trip; at least one
        # later grant must have ridden the pipeline.
        assert stats.prefetched_grants >= 1
        assert stats.parts_sent == len(units)  # every record streamed
        assert coordinator.wire.frames_in > 0

    def test_retire_releases_a_buffered_prefetched_lease(self):
        left, right = socket.socketpair()
        left.settimeout(10)
        right.settimeout(10)
        logs = []
        try:
            session = _Session(right, name="w", log=logs.append)
            session.negotiated = 3
            session.prefetch = {"type": "lease", "lease": 9, "units": []}
            session._retire("drain test")
            decoder = FrameDecoder()
            assert recv_message(left, decoder) == {
                "type": "release",
                "lease": 9,
            }
            assert recv_message(left, decoder) == {"type": "bye"}
            assert any("released unstarted" in line for line in logs)
        finally:
            left.close()
            right.close()

    def test_retire_consumes_an_in_flight_prefetch_reply(self):
        left, right = socket.socketpair()
        left.settimeout(10)
        right.settimeout(10)
        try:
            send_message(
                left, {"type": "lease", "lease": 4, "units": []}
            )
            session = _Session(right, name="w")
            session.negotiated = 3
            session.prefetch_pending = True
            session._retire("drain test")
            decoder = FrameDecoder()
            assert recv_message(left, decoder) == {
                "type": "release",
                "lease": 4,
            }
            assert recv_message(left, decoder) == {"type": "bye"}
        finally:
            left.close()
            right.close()

    def test_retire_goes_quiet_after_done(self):
        left, right = socket.socketpair()
        left.settimeout(10)
        right.settimeout(10)
        try:
            send_message(left, {"type": "done"})
            session = _Session(right, name="w")
            session.negotiated = 3
            session.prefetch_pending = True
            session._retire("drain test")
            assert session.done_seen
            left.setblocking(False)
            with pytest.raises(BlockingIOError):
                left.recv(1)  # no release, no bye: campaign is over
        finally:
            left.close()
            right.close()


class TestResultPartStreaming:
    def test_parts_merge_idempotently_and_settle_at_result(self):
        units = _units(n=2)
        records = run_units(units, SERIAL)
        streamed = []
        coordinator = Coordinator(
            units,
            units_per_lease=2,
            on_record=lambda index, record: streamed.append(index),
        )
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        sock = socket.create_connection((host, port), timeout=10)
        sock.settimeout(10)
        decoder = FrameDecoder()
        try:
            send_message(
                sock, {"type": "hello", "worker": "streamer", "protocol": 3}
            )
            assert recv_message(sock, decoder)["type"] == "welcome"
            send_message(sock, {"type": "request"})
            lease = recv_message(sock, decoder)
            lease_id = lease["lease"]
            part = {
                "type": "result-part",
                "lease": lease_id,
                "records": [records[0].to_json()],
            }
            send_message(sock, part)
            send_message(sock, part)  # duplicate part: idempotent
            send_message(
                sock,
                {
                    "type": "result-part",
                    "lease": lease_id,
                    "records": [records[1].to_json()],
                },
            )
            # Final result carries no records — everything already
            # streamed — yet must settle the whole lease.
            send_message(
                sock,
                {
                    "type": "result",
                    "lease": lease_id,
                    "records": [],
                    "elapsed_s": 0.5,
                },
            )
            assert recv_message(sock, decoder)["type"] == "done"
        finally:
            sock.close()
        thread.join(timeout=30)
        assert [r.to_json() for r in box["records"]] == [
            r.to_json() for r in records
        ]
        assert streamed == [0, 1]  # fresh merges only, once each
        # The worker's self-reported timing fed the controller.
        assert coordinator._table.service_ewma  # noqa: SLF001


# ---------------------------------------------------------------------------
# CLI validation


class TestCliLeaseFlags:
    def _parser(self):
        from repro.cli import build_parser

        return build_parser()

    def test_units_per_lease_rejects_zero(self, capsys):
        with pytest.raises(SystemExit):
            self._parser().parse_args(
                ["coordinate", "table5", "--units-per-lease", "0"]
            )
        assert "must be >= 1" in capsys.readouterr().err

    def test_lease_target_rejects_non_positive_and_non_finite(self, capsys):
        for bad in ("0", "-2", "inf", "nan"):
            with pytest.raises(SystemExit):
                self._parser().parse_args(
                    ["coordinate", "table5", "--lease-target-seconds", bad]
                )
        assert "finite" in capsys.readouterr().err

    def test_defaults_are_adaptive(self):
        args = self._parser().parse_args(["experiment", "table5"])
        assert args.units_per_lease is None
        assert args.lease_target_s == pytest.approx(2.0)

    def test_legacy_lease_units_alias_still_parses(self):
        args = self._parser().parse_args(
            ["coordinate", "table5", "--lease-units", "4"]
        )
        assert args.units_per_lease == 4
