"""Tests for litmus test definitions and the runner."""

import pytest

from repro.chips import SC_REFERENCE, get_chip
from repro.litmus import (
    ALL_TESTS,
    LB,
    MP,
    SB,
    TUNING_TESTS,
    get_test,
    run_litmus,
)
from repro.litmus.runner import LitmusInstance
from repro.stress.strategies import FixedLocationStress, NoStress


class TestDefinitions:
    def test_tuning_triple_pinned(self):
        # The Sec. 3 tuning pipeline only ever sees the paper's triple,
        # however large the registry grows.
        assert tuple(t.name for t in TUNING_TESTS) == ("MP", "LB", "SB")
        assert ALL_TESTS[:3] == TUNING_TESTS

    def test_registry_has_extended_family(self):
        assert len(ALL_TESTS) >= 12
        names = {t.name for t in ALL_TESTS}
        assert {"MP", "LB", "SB", "CoRR", "CoWW", "IRIW", "WRC"} <= names

    def test_lookup_case_insensitive(self):
        assert get_test("mp") is MP
        assert get_test("LB") is LB
        assert get_test("iriw").name == "IRIW"

    def test_unknown_test_raises(self):
        with pytest.raises(ValueError):
            get_test("MP+lwsync")

    def test_mp_weak_condition(self):
        assert MP.weak({"r1": 1, "r2": 0})
        assert not MP.weak({"r1": 1, "r2": 1})
        assert not MP.weak({"r1": 0, "r2": 0})

    def test_lb_weak_condition(self):
        assert LB.weak({"r1": 1, "r2": 1})
        assert not LB.weak({"r1": 0, "r2": 1})

    def test_sb_weak_condition(self):
        assert SB.weak({"r1": 0, "r2": 0})
        assert not SB.weak({"r1": 1, "r2": 0})

    def test_registers_enumerated(self):
        assert set(MP.registers) == {"r1", "r2"}


class TestLayout:
    def test_distance_zero_means_contiguous(self, k20):
        inst = LitmusInstance.layout(k20, MP, 0)
        assert inst.y_addr == inst.x_addr + 1

    def test_distance_respected(self, k20):
        inst = LitmusInstance.layout(k20, MP, 96)
        assert inst.y_addr - inst.x_addr == 96

    def test_scratchpad_disjoint_from_comm(self, k20):
        inst = LitmusInstance.layout(k20, MP, 64)
        assert inst.scratch_base > inst.y_addr

    def test_scratchpad_channel_aligned(self, k20):
        inst = LitmusInstance.layout(k20, MP, 64)
        period = k20.patch_size * k20.n_channels
        assert inst.scratch_base % period == 0

    def test_negative_distance_rejected(self, k20):
        with pytest.raises(ValueError):
            LitmusInstance.layout(k20, MP, -1)


class TestRunner:
    @pytest.mark.parametrize("test", TUNING_TESTS, ids=lambda t: t.name)
    def test_sc_reference_never_weak(self, test):
        result = run_litmus(
            SC_REFERENCE, test, 64, NoStress(), executions=60, seed=9
        )
        assert result.weak == 0

    @pytest.mark.parametrize("test", TUNING_TESTS, ids=lambda t: t.name)
    def test_native_rarely_weak(self, test, k20):
        result = run_litmus(k20, test, 64, NoStress(), executions=100,
                            seed=2)
        assert result.rate < 0.05

    @pytest.mark.parametrize("test", TUNING_TESTS, ids=lambda t: t.name)
    def test_tuned_stress_provokes_weak(self, test, k20):
        spec = FixedLocationStress(
            (0, 2 * k20.patch_size), k20.best_sequence
        )
        result = run_litmus(k20, test, 2 * k20.patch_size, spec,
                            executions=150, seed=2)
        assert result.rate > 0.02, f"{test.name} silent under stress"

    @pytest.mark.parametrize(
        "chip_name", ["K5200", "Titan", "K20", "770", "C2075", "C2050"]
    )
    def test_no_weak_below_patch_distance(self, chip_name):
        # Paper Sec. 3.2: no weak behaviour when communication
        # locations are within the critical patch (d < P).
        chip = get_chip(chip_name)
        spec = FixedLocationStress(
            (0, 2 * chip.patch_size), chip.best_sequence
        )
        for test in TUNING_TESTS:
            result = run_litmus(chip, test, 0, spec, executions=80, seed=4)
            assert result.weak == 0, f"{chip_name}/{test.name} at d=0"

    def test_980_shows_mp_leak_at_small_distance(self):
        # Paper: Maxwell exhibits a small number of MP weak behaviours
        # even at d = 0.
        chip = get_chip("980")
        spec = FixedLocationStress(
            (0, 2 * chip.patch_size), chip.best_sequence
        )
        result = run_litmus(chip, MP, 0, spec, executions=400, seed=4)
        assert result.weak > 0

    def test_store_only_sequence_ineffective(self, k20):
        spec = FixedLocationStress((0, 64), ("st", "st", "st"))
        total = sum(
            run_litmus(k20, t, 64, spec, executions=80, seed=5).weak
            for t in TUNING_TESTS
        )
        assert total <= 2

    def test_results_deterministic_for_seed(self, k20):
        spec = FixedLocationStress((0, 64), k20.best_sequence)
        a = run_litmus(k20, MP, 64, spec, executions=50, seed=11)
        b = run_litmus(k20, MP, 64, spec, executions=50, seed=11)
        assert a.weak == b.weak

    def test_rate_property(self):
        from repro.litmus.results import LitmusResult

        r = LitmusResult(test="MP", distance=0, weak=5, executions=50)
        assert r.rate == pytest.approx(0.1)

    def test_randomisation_flag_accepted(self, k20):
        spec = FixedLocationStress((0, 64), k20.best_sequence)
        result = run_litmus(k20, MP, 64, spec, executions=30, seed=1,
                            randomise=True)
        assert 0 <= result.weak <= 30


class TestTally:
    def test_tally_accumulates_and_ranks(self):
        from repro.litmus.results import Tally

        tally = Tally()
        tally.add("a", 3)
        tally.add("a", 2)
        tally.add("b", 10)
        assert tally.score("a") == 5
        assert tally.ranked()[0] == ("b", 10)
        assert tally.score("missing") == 0
