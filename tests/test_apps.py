"""Tests for the ten application case studies (paper Table 4)."""

import pytest

from repro.apps import all_applications, get_application, table4_rows
from repro.apps.base import run_application
from repro.apps.registry import FENCE_FREE_APPS, fence_free_applications
from repro.chips import SC_REFERENCE
from repro.errors import UnknownApplicationError
from repro.hardening.fence_sets import all_fences
from repro.stress.strategies import TunedStress
from repro.tuning import shipped_params

APP_NAMES = tuple(a.name for a in all_applications())


class TestRegistry:
    def test_ten_case_studies(self):
        assert len(all_applications()) == 10

    def test_three_nf_variants(self):
        nf = [a for a in all_applications() if a.name.endswith("-nf")]
        assert {a.name for a in nf} == {
            "sdk-red-nf", "cub-scan-nf", "ls-bh-nf",
        }

    def test_seven_fence_free(self):
        assert len(fence_free_applications()) == 7
        assert set(FENCE_FREE_APPS) == {
            a.name for a in fence_free_applications()
        }

    def test_unknown_app_raises(self):
        with pytest.raises(UnknownApplicationError):
            get_application("bfs")

    def test_table4_rows_are_the_seven_originals(self):
        rows = table4_rows()
        assert len(rows) == 7
        assert all(not r["short name"].endswith("-nf") for r in rows)

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_metadata_complete(self, name):
        app = get_application(name)
        assert app.description
        assert app.communication
        assert app.postcondition

    def test_nf_variants_have_no_fences(self):
        for name in ("sdk-red-nf", "cub-scan-nf", "ls-bh-nf"):
            assert get_application(name).base_fences == frozenset()

    def test_originals_with_fences(self):
        assert len(get_application("sdk-red").base_fences) == 1
        assert len(get_application("cub-scan").base_fences) == 2
        assert len(get_application("ls-bh").base_fences) == 3

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_required_sites_are_declared_sites(self, name):
        app = get_application(name)
        assert app.required_sites() <= set(app.sites())

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_base_fences_are_declared_sites(self, name):
        app = get_application(name)
        assert app.base_fences <= set(app.sites())

    def test_ls_bh_shipped_fences_insufficient(self):
        # Paper: ls-bh errors even with its fences; the required set is
        # a strict superset of the shipped one.
        app = get_application("ls-bh")
        assert app.base_fences < app.required_sites()

    def test_cub_scan_required_matches_shipped(self):
        # Paper: insertion on cub-scan-nf found exactly the two
        # provided fences.
        app = get_application("cub-scan")
        assert app.required_sites() == app.base_fences


class TestSequentialCorrectness:
    """Every application must satisfy its post-condition on sc-ref:
    any failure there is a logic bug, not a weak-memory effect."""

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_correct_on_sc_reference(self, name):
        app = get_application(name)
        for seed in range(5):
            run = run_application(app, SC_REFERENCE, seed=seed)
            assert run.ok, f"{name} failed on sc-ref (seed {seed})"

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_correct_on_sc_with_conservative_fences(self, name):
        app = get_application(name)
        run = run_application(
            app, SC_REFERENCE, seed=1, fence_sites=all_fences(app)
        )
        assert run.ok


class TestNativeBehaviour:
    @pytest.mark.parametrize(
        "name", [n for n in APP_NAMES if n != "cbe-ht"]
    )
    def test_native_mostly_clean_on_k20(self, name, k20):
        app = get_application(name)
        errors = sum(
            not run_application(app, k20, seed=s).ok for s in range(10)
        )
        assert errors <= 1


class TestStressedBehaviour:
    @pytest.mark.slow
    @pytest.mark.parametrize(
        "name",
        ["cbe-ht", "cbe-dot", "tpo-tm", "ls-bh-nf"],
    )
    def test_sys_str_provokes_errors(self, name, k20):
        app = get_application(name)
        spec = TunedStress(shipped_params("K20"))
        errors = sum(
            not run_application(
                app, k20, stress_spec=spec, randomise=True, seed=s
            ).ok
            for s in range(40)
        )
        assert errors > 0, f"{name} never errs under sys-str+"

    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["sdk-red", "cub-scan"])
    def test_shipped_fences_suppress_errors(self, name, k20):
        # Paper Sec. 4.3: no weak behaviour observed for sdk-red and
        # cub-scan — their fences are sufficient.
        app = get_application(name)
        spec = TunedStress(shipped_params("K20"))
        errors = sum(
            not run_application(
                app, k20, stress_spec=spec, randomise=True, seed=s
            ).ok
            for s in range(40)
        )
        assert errors == 0

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "name", ["cbe-dot", "cbe-ht", "ct-octree", "tpo-tm", "ls-bh-nf"]
    )
    def test_required_fences_harden(self, name, k20):
        app = get_application(name)
        spec = TunedStress(shipped_params("K20"))
        fences = app.required_sites() | app.base_fences
        errors = sum(
            not run_application(
                app, k20, stress_spec=spec, randomise=True, seed=s,
                fence_sites=fences,
            ).ok
            for s in range(30)
        )
        assert errors == 0


class TestRunApplication:
    def test_returns_app_run(self, k20):
        run = run_application(get_application("cbe-dot"), k20, seed=0)
        assert run.ok is True
        assert run.result.ticks > 0
        assert not run.timed_out

    def test_erroneous_property_covers_timeout(self):
        from repro.apps.base import AppRun
        from repro.gpu.engine import ExecutionResult, Outcome

        result = ExecutionResult(Outcome.TIMEOUT, 1, 0, 0, 0, 0, 0)
        run = AppRun(ok=False, timed_out=True, result=result)
        assert run.erroneous
