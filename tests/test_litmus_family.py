"""Tests for the extended litmus family, its IR and the dual backends.

Four pillars:

* **SC soundness** — every registered test's forbidden outcome is
  unreachable under sequential consistency (brute-force enumerator),
  and the ``sc-ref`` chip never observes it empirically on either
  backend.
* **Fence monotonicity** — fenced variants show strictly lower weak
  rates than their unfenced bases on weak chips under tuned stress.
* **Backend parity** — every test runs on both the direct fast path
  and the compiled SIMT-engine path; their weak rates agree within a
  fixed-seed tolerance.
* **Seed continuity** — the generalised runner reproduces the seed
  repo's MP/LB/SB results bit for bit (see also the full pinning in
  ``tests/test_golden_stats.py``).
"""

import pickle

import pytest

from repro.chips import SC_REFERENCE, get_chip
from repro.litmus import (
    ALL_TESTS,
    FENCED_VARIANTS,
    MP,
    TUNING_TESTS,
    LitmusTest,
    backend_parity,
    compile_test,
    forbidden_sc_reachable,
    get_test,
    run_litmus,
    run_litmus_compiled,
)
from repro.litmus.ir import (
    And,
    LocEq,
    Or,
    RegEq,
    condition_locations,
    condition_registers,
    evaluate,
    fence,
    format_condition,
    ld,
    rmw,
    st,
)
from repro.litmus.runner import LitmusInstance
from repro.litmus.sc import sc_outcomes
from repro.stress.strategies import NoStress, TunedStress
from repro.tuning.pipeline import shipped_params

#: Fixed-seed tolerance for direct-vs-engine weak-rate agreement.  The
#: backends sample the same memory model through different drivers
#: (scripted threads vs scheduled warps), so rates track but do not
#: coincide; 60-execution samples at seed 7 sit well inside 0.3.
_PARITY_TOLERANCE = 0.3

_names = [t.name for t in ALL_TESTS]


def _tuned(chip):
    return TunedStress(shipped_params(chip.short_name))


# ----------------------------------------------------------------------
# IR and conditions
# ----------------------------------------------------------------------
class TestConditionIR:
    def test_evaluate_leaves_and_connectives(self):
        cond = Or(And(RegEq("r1", 1), RegEq("r2", 0)), LocEq("x", 2))
        assert evaluate(cond, {"r1": 1, "r2": 0}, {"x": 0})
        assert evaluate(cond, {"r1": 0, "r2": 0}, {"x": 2})
        assert not evaluate(cond, {"r1": 0, "r2": 1}, {"x": 0})

    def test_unwritten_registers_default_to_zero(self):
        assert evaluate(RegEq("r9", 0), {})

    def test_loc_condition_requires_final_memory(self):
        with pytest.raises(ValueError):
            evaluate(LocEq("x", 1), {})

    def test_condition_introspection(self):
        cond = And(RegEq("r1", 1), Or(LocEq("x", 2), RegEq("r2", 0)))
        assert condition_registers(cond) == {"r1", "r2"}
        assert condition_locations(cond) == {"x"}

    def test_format_condition(self):
        cond = And(RegEq("r1", 1), LocEq("y", 2))
        assert format_condition(cond) == "r1=1 & [y]=2"

    def test_duplicate_register_rejected(self):
        with pytest.raises(ValueError):
            LitmusTest(
                name="bad",
                description="",
                threads=((ld("x", "r1"),), (ld("y", "r1"),)),
                forbidden=RegEq("r1", 1),
            )

    def test_condition_over_unwritten_register_rejected(self):
        with pytest.raises(ValueError):
            LitmusTest(
                name="bad",
                description="",
                threads=((st("x", 1),),),
                forbidden=RegEq("r1", 1),
            )

    def test_malformed_instruction_rejected(self):
        with pytest.raises(ValueError):
            LitmusTest(
                name="bad",
                description="",
                threads=((("cas", "x", 1),),),
                forbidden=LocEq("x", 1),
            )

    def test_tests_are_picklable_values(self):
        # Tests cross process boundaries when campaigns are sharded.
        for test in ALL_TESTS:
            clone = pickle.loads(pickle.dumps(test))
            assert clone == test
            assert clone.weak({r: 0 for r in clone.registers}, {}) in (
                True,
                False,
            )

    def test_tests_picklable_after_predicate_compiled(self):
        # Evaluating ``weak`` caches a compiled closure; pickling must
        # still ship only the declarative fields.
        test = get_test("CoWW")
        assert not test.weak({}, {"x": 2})
        clone = pickle.loads(pickle.dumps(test))
        assert clone == test
        assert clone.weak({}, {"x": 1})

    def test_structure_accessors(self):
        t = get_test("3.LB")
        assert t.n_threads == 3
        assert t.locations == ("x", "y", "z")
        assert t.registers == ("r1", "r2", "r3")
        assert "forbid(" in t.pretty()
        iriw = get_test("IRIW")
        assert iriw.n_threads == 4
        assert get_test("CoWW").condition_locations == ("x",)


# ----------------------------------------------------------------------
# registry lookup
# ----------------------------------------------------------------------
class TestNameLookup:
    def test_case_insensitive(self):
        assert get_test("mp").name == "MP"
        assert get_test("iriw").name == "IRIW"

    @pytest.mark.parametrize(
        "spelling,canonical",
        [
            ("2+2W", "2+2W"),
            ("2.2w", "2+2W"),
            ("2-2w", "2+2W"),
            ("22W", "2+2W"),
            ("3.LB", "3.LB"),
            ("3lb", "3.LB"),
            ("3+lb", "3.LB"),
            ("mp.ff", "MP-FF"),
            ("MPF0", "MP-F0"),
        ],
    )
    def test_separator_punctuation_normalised(self, spelling, canonical):
        assert get_test(spelling).name == canonical

    def test_unknown_names_still_rejected(self):
        for bad in ("MP+lwsync", "4.LB", "2+3W", ""):
            with pytest.raises(ValueError, match="unknown litmus test"):
                get_test(bad)


# ----------------------------------------------------------------------
# SC soundness
# ----------------------------------------------------------------------
class TestSCUnreachability:
    @pytest.mark.parametrize("test", ALL_TESTS, ids=_names)
    def test_forbidden_outcome_sc_unreachable(self, test):
        assert not forbidden_sc_reachable(test), (
            f"{test.name}'s forbidden outcome is reachable under SC — "
            "the test is not a litmus test"
        )

    def test_enumerator_detects_reachable_outcomes(self):
        # Sanity: the *allowed* MP outcome (both loads hit) is SC-
        # reachable, so the enumerator is not vacuously returning False.
        allowed = LitmusTest(
            name="MP-allowed",
            description="",
            threads=MP.threads,
            forbidden=And(RegEq("r1", 1), RegEq("r2", 1)),
        )
        assert forbidden_sc_reachable(allowed)

    def test_enumerator_handles_rmw_and_fence(self):
        t = LitmusTest(
            name="lock-ish",
            description="",
            threads=(
                (rmw("l", "r1", 1), fence(), st("x", 1)),
                (rmw("l", "r2", 1),),
            ),
            forbidden=And(RegEq("r1", 1), RegEq("r2", 1)),
        )
        # Both exchanges cannot observe a taken lock under SC (one of
        # them runs first and sees 0).
        assert not forbidden_sc_reachable(t)
        assert len(sc_outcomes(t)) > 1

    @pytest.mark.parametrize("test", ALL_TESTS, ids=_names)
    def test_sc_reference_chip_never_weak_direct(self, test):
        result = run_litmus(
            SC_REFERENCE, test, 64, NoStress(), executions=40, seed=9
        )
        assert result.weak == 0

    @pytest.mark.parametrize("name", ["MP", "SB-FF", "CoWW", "S", "IRIW"])
    def test_sc_reference_chip_never_weak_engine(self, name):
        result = run_litmus_compiled(
            SC_REFERENCE, get_test(name), 64, NoStress(),
            executions=8, seed=9,
        )
        assert result.weak == 0


# ----------------------------------------------------------------------
# the family on the direct backend
# ----------------------------------------------------------------------
class TestFamilyDirect:
    @pytest.mark.parametrize(
        "fenced,base", sorted(FENCED_VARIANTS.items())
    )
    @pytest.mark.parametrize("chip_name", ["K20", "Titan"])
    def test_fences_strictly_reduce_weak_rates(self, chip_name, fenced, base):
        chip = get_chip(chip_name)
        d = 2 * chip.patch_size
        spec = _tuned(chip)
        weak_fenced = run_litmus(
            chip, get_test(fenced), d, spec, 150, seed=7
        ).weak
        weak_base = run_litmus(
            chip, get_test(base), d, spec, 150, seed=7
        ).weak
        assert weak_fenced < weak_base, (
            f"{fenced} ({weak_fenced}) not strictly below "
            f"{base} ({weak_base}) on {chip_name}"
        )

    def test_fully_fenced_variants_silent(self, k20):
        d = 2 * k20.patch_size
        spec = _tuned(k20)
        for name in ("MP-FF", "LB-FF", "SB-FF"):
            result = run_litmus(k20, get_test(name), d, spec, 150, seed=7)
            assert result.weak == 0, f"{name} weak under full fencing"

    @pytest.mark.parametrize("name", ["CoRR", "CoWW"])
    def test_coherence_tests_silent_everywhere(self, name, k20):
        # The model is coherent: per-location orderings survive any
        # amount of stress.
        d = 2 * k20.patch_size
        result = run_litmus(k20, get_test(name), d, _tuned(k20), 200, seed=7)
        assert result.weak == 0

    @pytest.mark.parametrize("name", ["R", "S", "2+2W", "WRC", "3.LB"])
    def test_new_idioms_observable_under_stress(self, name, k20):
        d = 2 * k20.patch_size
        result = run_litmus(k20, get_test(name), d, _tuned(k20), 150, seed=7)
        assert result.weak > 0, f"{name} silent under tuned stress"

    def test_multi_thread_layout_spaces_locations(self, k20):
        inst = LitmusInstance.layout(k20, get_test("3.LB"), 96)
        a = inst.loc_addrs()
        assert len(a) == 3
        assert a[1] - a[0] == 96 and a[2] - a[1] == 96
        assert inst.addr("z") == a[2]

    def test_rmw_instruction_executes_on_direct_path(self, k20):
        t = LitmusTest(
            name="xchg",
            description="",
            threads=((rmw("x", "r1", 7),), (rmw("x", "r2", 9),)),
            forbidden=And(RegEq("r1", 99), RegEq("r2", 99)),
        )
        result = run_litmus(k20, t, 64, _tuned(k20), 30, seed=3)
        # One exchange sees 0, the other sees the first's value (7/9);
        # neither can see 99, so no round is weak — but the run must
        # complete, proving rmw flows through the atomic pipeline.
        assert result.weak == 0

    @pytest.mark.parametrize("name", ["MP-FF", "WRC", "2+2W"])
    def test_sharded_runs_match_serial(self, name, k20):
        # New-family tests must honour the repro.parallel determinism
        # contract: fenced, multi-thread and final-value conditions all
        # cross the process boundary and shard cleanly.
        from repro.parallel import ParallelConfig

        d = 2 * k20.patch_size
        serial = run_litmus(k20, get_test(name), d, _tuned(k20), 40, seed=5)
        sharded = run_litmus(
            k20, get_test(name), d, _tuned(k20), 40, seed=5,
            parallel=ParallelConfig(jobs=2),
        )
        assert serial.weak == sharded.weak

    def test_registry_test_ran_through_all_rounds(self, k20):
        # Unfenced tests with high exec probabilities complete all
        # instructions; spot-check determinism across repeats.
        a = run_litmus(k20, get_test("WRC"), 128, _tuned(k20), 40, seed=5)
        b = run_litmus(k20, get_test("WRC"), 128, _tuned(k20), 40, seed=5)
        assert a.weak == b.weak


# ----------------------------------------------------------------------
# the compiled SIMT backend and cross-backend parity
# ----------------------------------------------------------------------
class TestCompiledBackend:
    @pytest.mark.parametrize("test", ALL_TESTS, ids=_names)
    def test_every_test_compiles_and_runs(self, test, k20):
        compiled = compile_test(k20, test, 2 * k20.patch_size)
        assert compiled.config.grid_dim == test.n_threads
        result = run_litmus_compiled(
            k20, test, 2 * k20.patch_size, _tuned(k20),
            executions=4, seed=11,
        )
        assert 0 <= result.weak <= 4

    def test_too_many_threads_rejected(self, k20):
        t = LitmusTest(
            name="wide",
            description="",
            threads=tuple((st("x", 1),) for _ in range(k20.n_sms + 1)),
            forbidden=LocEq("x", 0),
        )
        with pytest.raises(ValueError):
            compile_test(k20, t, 64)
        # The direct backend rejects it just as cleanly (no raw
        # IndexError out of the memory system).
        with pytest.raises(ValueError, match="SMs"):
            run_litmus(k20, t, 64, NoStress(), 4, seed=1)

    @pytest.mark.parametrize(
        "name", ["MP", "LB", "SB", "R", "2+2W", "WRC", "IRIW"]
    )
    def test_backend_parity_within_tolerance(self, name, k20):
        report = backend_parity(
            k20, get_test(name), 2 * k20.patch_size, _tuned(k20),
            executions=60, seed=7,
        )
        assert report.agree(_PARITY_TOLERANCE), (
            f"{name}: direct rate {report.direct.rate:.3f} vs engine "
            f"rate {report.engine.rate:.3f} (gap {report.gap:.3f})"
        )

    @pytest.mark.parametrize("name", ["MP-FF", "LB-FF", "SB-FF", "CoRR"])
    def test_suppressed_tests_silent_on_both_backends(self, name, k20):
        report = backend_parity(
            k20, get_test(name), 2 * k20.patch_size, _tuned(k20),
            executions=30, seed=7,
        )
        assert report.direct.weak == 0
        assert report.engine.weak == 0

    def test_engine_backend_observes_lb_reordering(self, k20):
        # The issue/poll deferred-load ops are what make LB-shaped
        # reordering visible to compiled kernels; without them the
        # engine path would flatline at zero.
        result = run_litmus_compiled(
            k20, get_test("LB"), 2 * k20.patch_size, _tuned(k20),
            executions=40, seed=7,
        )
        assert result.weak > 0

    def test_result_records_backend(self, k20):
        direct = run_litmus(k20, MP, 64, NoStress(), 4, seed=1)
        engine = run_litmus_compiled(k20, MP, 64, NoStress(), 2, seed=1)
        assert direct.backend == "direct"
        assert engine.backend == "engine"

    def test_engine_backend_deterministic(self, k20):
        kwargs = dict(executions=12, seed=13)
        a = run_litmus_compiled(
            k20, MP, 128, _tuned(k20), **kwargs
        )
        b = run_litmus_compiled(
            k20, MP, 128, _tuned(k20), **kwargs
        )
        assert a.weak == b.weak

    def test_rmw_lowering_runs_on_engine(self, k20):
        t = LitmusTest(
            name="xchg-e",
            description="",
            threads=((rmw("x", "r1", 7),), (rmw("x", "r2", 9),)),
            forbidden=And(RegEq("r1", 99), RegEq("r2", 99)),
        )
        result = run_litmus_compiled(k20, t, 64, _tuned(k20), 6, seed=3)
        assert result.weak == 0


# ----------------------------------------------------------------------
# seed continuity (see tests/test_golden_stats.py for the full pinning)
# ----------------------------------------------------------------------
class TestSeedContinuity:
    #: run_litmus(chip, test, 2*patch, sys-str, 40 executions, seed 7)
    #: weak counts captured from the seed repo's two-thread runner.
    _GOLDEN = {"MP": 10, "LB": 3, "SB": 2}

    @pytest.mark.parametrize("name", sorted(_GOLDEN))
    def test_refactored_runner_matches_seed_repo(self, name, k20):
        result = run_litmus(
            k20, get_test(name), 2 * k20.patch_size, _tuned(k20),
            executions=40, seed=7,
        )
        assert result.weak == self._GOLDEN[name]

    def test_tuning_triple_identity(self):
        # The tuning pipeline's inputs are the very same objects the
        # seed repo exposed, in the same order.
        assert [t.name for t in TUNING_TESTS] == ["MP", "LB", "SB"]
        assert all(t.n_threads == 2 for t in TUNING_TESTS)
