"""The axiomatic model against the registry and the SC enumerator."""

from __future__ import annotations

import pytest

from repro.axiom.model import (
    MAX_CANDIDATES,
    VERDICT_FORBIDDEN,
    VERDICT_SC,
    VERDICT_WEAK,
    axiom_outcomes,
    classify,
    condition_verdict,
    observation_key,
    written_locations,
)
from repro.litmus.ir import And, RegEq, fence, ld, rmw, st
from repro.litmus.sc import sc_outcomes
from repro.litmus.tests import ALL_TESTS, LitmusTest, get_test
from repro.testing.soundness import (
    FORBIDDEN_CONDITION_TESTS,
    WEAK_CONDITION_TESTS,
)


def test_expectation_lists_cover_registry():
    assert sorted(WEAK_CONDITION_TESTS + FORBIDDEN_CONDITION_TESTS) == \
        sorted(t.name for t in ALL_TESTS)


@pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
def test_full_fence_model_equals_sc_enumerator(test):
    """Shasha–Snir: acyclic(po ∪ com) characterises SC reachability,
    so the model with a full fence set must agree exactly with the
    brute-force interleaver."""
    assert axiom_outcomes(test, "full") == frozenset(sc_outcomes(test))


@pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
def test_fence_modes_are_monotone(test):
    """More fences ⇒ fewer behaviours: SC ⊆ weak ⊆ fence-free."""
    assert axiom_outcomes(test, "full") \
        <= axiom_outcomes(test, "program") \
        <= axiom_outcomes(test, "none")


@pytest.mark.parametrize("name", WEAK_CONDITION_TESTS)
def test_weak_family_conditions_are_weak_not_sc(name):
    """Every weak-family forbidden outcome is weak-allowed and
    SC-unreachable — the registry ships no vacuous weak test."""
    assert condition_verdict(get_test(name)) == VERDICT_WEAK


@pytest.mark.parametrize("name", FORBIDDEN_CONDITION_TESTS)
def test_negative_tests_are_axiomatically_forbidden(name):
    """The fully-fenced and coherence tests are negative checks: no
    allowed execution (weak or SC) satisfies their condition, matching
    the family tests that assert them silent on every backend."""
    assert condition_verdict(get_test(name)) == VERDICT_FORBIDDEN


def test_classification_verdicts_partition_the_state_table():
    report = classify(get_test("MP"))
    verdicts = {o.format_state(): o.verdict for o in report.outcomes}
    assert verdicts == {
        "r1=0 r2=0 [x]=1 [y]=1": VERDICT_SC,
        "r1=0 r2=1 [x]=1 [y]=1": VERDICT_SC,
        "r1=1 r2=0 [x]=1 [y]=1": VERDICT_WEAK,
        "r1=1 r2=1 [x]=1 [y]=1": VERDICT_SC,
    }


def test_every_allowed_state_has_a_witness():
    for name in ("MP", "IRIW", "CoRR", "2+2W"):
        report = classify(get_test(name))
        for outcome in report.outcomes:
            if outcome.verdict == VERDICT_FORBIDDEN:
                assert outcome.witness is None
            else:
                assert outcome.witness is not None
                assert outcome.witness.format()


def test_mp_weak_witness_reads_stale_data():
    report = classify(get_test("MP"))
    weak = [o for o in report.outcomes if o.verdict == VERDICT_WEAK]
    assert len(weak) == 1
    rf = dict(weak[0].witness.rf)
    assert rf["T1.0 ld y->r1"] == "T0.1 st y=1"
    assert rf["T1.1 ld x->r2"] == "init x=0"


def test_verdict_of_projects_extra_locations():
    report = classify(get_test("MP"))
    # Observed finals may carry cond-only or scratch locations; they
    # are projected onto the model's written locations.
    assert report.verdict_of(
        {"r1": 1, "r2": 0}, {"x": 1, "y": 1}
    ) == VERDICT_WEAK
    assert report.verdict_of(
        {"r1": 0, "r2": 0}, {"x": 1, "y": 1}
    ) == VERDICT_SC
    # A value outside the conceivable table is forbidden outright.
    assert report.verdict_of(
        {"r1": 7, "r2": 0}, {"x": 1, "y": 1}
    ) == VERDICT_FORBIDDEN
    # An incomplete store (x never reached 1) is forbidden too.
    assert report.verdict_of(
        {"r1": 0, "r2": 0}, {"x": 0, "y": 1}
    ) == VERDICT_FORBIDDEN


def test_observation_key_matches_sc_shape():
    test = get_test("MP")
    key = observation_key(test, {"r2": 0, "r1": 1}, {"y": 1, "x": 1})
    assert key == ((("r1", 1), ("r2", 0)), (("x", 1), ("y", 1)))
    assert written_locations(test) == ("x", "y")


def test_rmw_atomicity_forbids_intervening_write():
    """Two rmws on one location can never both read the initial value:
    atomicity forces each to read its immediate co-predecessor."""
    test = LitmusTest(
        name="2RMW",
        description="competing atomic exchanges",
        threads=(
            (rmw("x", "r1", 1),),
            (rmw("x", "r2", 2),),
        ),
        forbidden=And(RegEq("r1", 0), RegEq("r2", 0)),
    )
    assert condition_verdict(test) == VERDICT_FORBIDDEN
    # Exactly one rmw wins the race, even without any fence.
    outcomes = axiom_outcomes(test, "none")
    assert outcomes == frozenset({
        ((("r1", 0), ("r2", 1)), (("x", 2),)),
        ((("r1", 2), ("r2", 0)), (("x", 1),)),
    })


def test_fenced_mp_loses_its_weak_state():
    """Adding both fences to MP removes exactly the weak state — the
    declarative counterpart of test_fully_fenced_variants_silent."""
    mp = get_test("MP")
    mp_ff = get_test("MP-FF")
    assert axiom_outcomes(mp, "program") - axiom_outcomes(mp_ff, "program")
    assert axiom_outcomes(mp_ff, "program") == axiom_outcomes(mp, "full")


def test_single_fence_does_not_restore_sc():
    """One-sided fencing (MP-F0/MP-F1) still admits the weak state:
    the fence order alone has no cycle through a single pair."""
    for name in ("MP-F0", "MP-F1"):
        test = get_test(name)
        assert axiom_outcomes(test, "program") \
            == axiom_outcomes(get_test("MP"), "program")


def test_candidate_explosion_guard():
    threads = tuple(
        (st("x", 1), st("y", 1), st("z", 1),
         ld("x", f"ra{i}"), ld("y", f"rb{i}"), ld("z", f"rc{i}"))
        for i in range(4)
    )
    big = LitmusTest(
        name="big",
        description="beyond the candidate budget",
        threads=threads,
        forbidden=RegEq("ra0", 1),
    )
    with pytest.raises(ValueError, match="candidate executions"):
        axiom_outcomes(big)
    assert MAX_CANDIDATES > 0


def test_unknown_fence_mode_rejected():
    with pytest.raises(ValueError, match="fence mode"):
        axiom_outcomes(get_test("MP"), "bogus")


def test_fences_are_not_events():
    """A fence contributes order, not an event: the state universe of
    MP and MP-FF is identical."""
    mp, mp_ff = get_test("MP"), get_test("MP-FF")
    assert axiom_outcomes(mp, "none") == axiom_outcomes(mp_ff, "none")
    assert fence() == ("fence",)
