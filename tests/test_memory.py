"""Tests for the weak memory subsystem."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chips import SC_REFERENCE, get_chip
from repro.errors import InvalidAccessError
from repro.gpu.events import STALL
from repro.gpu.memory import MemorySystem, memory_tables
from repro.gpu.pressure import StressField
from repro.rng import BufferedRNG


def make_mem(chip_name="K20", stress=None, seed=0):
    chip = SC_REFERENCE if chip_name == "sc-ref" else get_chip(chip_name)
    field = stress if stress is not None else StressField.zero(chip)
    return MemorySystem(chip, field, np.random.default_rng(seed))


def drain(mem, ticks=100):
    for _ in range(ticks):
        if mem.pending_stores() == 0:
            return
        mem.step()
    mem.flush_all()


class TestBasicStoreLoad:
    def test_store_becomes_visible_after_drain(self):
        mem = make_mem()
        assert mem.write(0, 0, 100, 42)
        drain(mem)
        assert mem.read(1, 1, 100) == 42

    def test_unwritten_reads_zero(self):
        assert make_mem().read(0, 0, 5) == 0

    def test_forwarding_same_sm(self):
        mem = make_mem()
        mem.write(0, 0, 100, 7)
        # Another thread on the same SM sees the buffered store.
        assert mem.read(0, 1, 100) == 7

    def test_other_sm_sees_stale_before_drain(self):
        mem = make_mem()
        mem.write(0, 0, 100, 7)
        assert mem.read(1, 1, 100) == 0

    def test_same_channel_load_stalls_on_own_store(self):
        mem = make_mem()
        chip = mem.profile
        mem.write(0, 0, 0, 1)
        # Different address, same channel: FIFO, load must wait.
        state = {}
        assert mem.read(0, 0, 1, state) is STALL

    def test_host_read_write(self):
        from repro.gpu.addresses import AddressSpace

        mem = make_mem()
        buf = AddressSpace().alloc("b", 4)
        mem.host_write(buf, 2, 9)
        assert mem.host_read(buf, 2) == 9
        mem.host_fill(buf, [1, 2, 3, 4])
        assert [mem.host_read(buf, i) for i in range(4)] == [1, 2, 3, 4]


class TestCoherence:
    def test_same_address_fifo(self):
        # Two stores to one address from one thread commit in order.
        for seed in range(20):
            mem = make_mem(seed=seed)
            mem.write(0, 0, 100, 1)
            mem.write(0, 0, 100, 2)
            drain(mem)
            assert mem.mem[100] == 2

    def test_flush_commits_everything(self):
        mem = make_mem()
        for i in range(10):
            mem.write(0, 0, 100 + 64 * i, i)
        mem.flush_all()
        assert mem.pending_stores() == 0
        for i in range(10):
            assert mem.mem[100 + 64 * i] == i


class TestAtomics:
    def test_rmw_returns_old_value(self):
        mem = make_mem()
        assert mem.rmw(0, 0, 50, lambda v: v + 1) == 0
        assert mem.rmw(0, 0, 50, lambda v: v + 1) == 1
        assert mem.mem[50] == 2

    def test_rmw_commits_same_address_stores_first(self):
        mem = make_mem()
        mem.write(0, 0, 50, 10)
        old = mem.rmw(0, 0, 50, lambda v: v + 1)
        assert old == 10
        assert mem.mem[50] == 11

    def test_rmw_waits_for_own_stores_on_sc(self):
        mem = make_mem("sc-ref")
        mem.write(0, 0, 100, 1)
        state = {}
        # Different address pending: the atomic must stall (no bypass
        # on the SC reference chip).
        assert mem.rmw(0, 0, 200, lambda v: v + 1, state) is STALL

    def test_rmw_proceeds_without_pending_stores(self):
        mem = make_mem("sc-ref")
        assert mem.rmw(0, 0, 200, lambda v: v + 1, {}) == 0

    def test_rmw_bypass_under_pressure(self):
        chip = get_chip("K20")
        field = StressField.from_locations(
            chip, 0, [0, chip.patch_size], 1.0, 640
        )
        bypasses = 0
        for seed in range(300):
            mem = MemorySystem(chip, field, np.random.default_rng(seed))
            mem.write(0, 0, 0, 1)  # channel 0 (stressed)
            if mem.rmw(0, 0, 512, lambda v: v + 1, {}) is not STALL:
                bypasses += 1
        assert bypasses > 10  # atomics do overtake under stress


class TestDeferredLoads:
    def test_forwarded_immediately(self):
        mem = make_mem()
        mem.write(0, 0, 100, 5)
        handle = mem.issue_load(0, 1, 100)
        assert handle.resolved and handle.value == 5

    def test_plain_load_resolves_now(self):
        mem = make_mem()
        mem.mem[100] = 3
        handle = mem.issue_load(0, 0, 100)
        assert mem.poll_load(handle) == 3

    def test_blocked_by_own_same_channel_store(self):
        mem = make_mem("sc-ref")
        mem.write(0, 0, 0, 9)
        handle = mem.issue_load(0, 0, 1)  # same channel, different addr
        assert not handle.resolved
        drain(mem)
        mem.step()
        assert handle.resolved

    def test_load_load_same_channel_ordering(self):
        # A second load on the same channel chains behind the first.
        chip = get_chip("K20")
        field = StressField.from_locations(
            chip, 0, [0, chip.patch_size], 1.0, 640
        )
        mem = MemorySystem(chip, field, np.random.default_rng(3))
        first = None
        # Find a slow load, then issue a nearby one.
        for _ in range(200):
            h = mem.issue_load(0, 0, 0)
            if not h.resolved:
                first = h
                break
        if first is None:
            pytest.skip("no slow load sampled")
        second = mem.issue_load(0, 0, 1)
        assert not second.resolved
        assert second.block_mode is not None

    def test_fence_resolves_pending_loads(self):
        chip = get_chip("Titan")
        field = StressField.from_locations(
            chip, 0, [0, chip.patch_size], 1.0, 640
        )
        for seed in range(100):
            mem = MemorySystem(chip, field, np.random.default_rng(seed))
            handle = mem.issue_load(0, 0, 0)
            if handle.resolved:
                continue
            mem.fence_begin(0)
            for _ in range(50):
                if mem.fence_done(0, 0):
                    break
                mem.step()
            assert handle.resolved
            return
        pytest.skip("no slow load sampled")


class TestFences:
    def test_fence_drains_thread_stores(self):
        mem = make_mem()
        mem.write(0, 0, 0, 1)
        mem.write(0, 0, 640, 2)
        mem.fence_begin(0)
        for _ in range(20):
            if mem.fence_done(0, 0):
                break
            mem.step()
        assert mem.fence_done(0, 0)
        assert mem.mem[0] == 1 and mem.mem[640] == 2

    def test_fence_only_waits_for_own_thread(self):
        mem = make_mem()
        mem.write(0, 1, 0, 1)  # another thread's store
        mem.fence_begin(0)
        mem.step()
        assert mem.fence_done(0, 0)

    def test_drain_thread_is_synchronous(self):
        mem = make_mem()
        mem.write(0, 0, 0, 1)
        mem.write(0, 1, 64, 2)
        mem.drain_thread(0, 0)
        assert mem.mem[0] == 1
        assert 64 not in mem.mem  # other thread untouched

    def test_thread_pending(self):
        mem = make_mem()
        assert not mem.thread_pending(0, 0)
        mem.write(0, 0, 0, 1)
        assert mem.thread_pending(0, 0)


class TestSequentialConsistency:
    """On sc-ref no weak outcome is ever observable."""

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_mp_never_weak_on_sc(self, seed):
        mem = make_mem("sc-ref", seed=seed)
        # T0 on SM0: x=1 then y=1 (distant addresses).
        mem.write(0, 0, 0, 1)
        mem.write(0, 0, 640, 1)
        seen_y = seen_x_after = None
        for _ in range(50):
            mem.step()
            y = mem.read(1, 1, 640)
            x = mem.read(1, 1, 0)
            if y == 1:
                seen_y, seen_x_after = y, x
                break
        if seen_y == 1:
            assert seen_x_after == 1  # no MP reordering on SC

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_no_swaps_or_bypasses_on_sc(self, seed):
        mem = make_mem("sc-ref", seed=seed)
        for i in range(12):
            mem.write(i % 4, i, 64 * i, i)
        drain(mem, 200)
        assert mem.n_swaps == 0
        assert mem.n_bypasses == 0
        assert mem.n_slow_loads == 0


class TestWeakBehaviourStatistics:
    @pytest.mark.slow
    def test_mp_swap_rate_grows_with_pressure(self):
        chip = get_chip("K20")
        quiet = StressField.zero(chip)
        loud = StressField.from_locations(
            chip, 0, [0, 2 * chip.patch_size], 1.0, 640
        )

        def swap_rate(field):
            swaps = 0
            for seed in range(200):
                mem = MemorySystem(
                    chip, field, np.random.default_rng(seed)
                )
                mem.write(0, 0, 0, 1)        # channel 0
                mem.write(0, 0, 2 * chip.patch_size, 1)  # channel 2
                drain(mem, 60)
                swaps += mem.n_swaps
            return swaps

        assert swap_rate(loud) > 5 * max(swap_rate(quiet), 1)

    def test_min_distance_gates_swaps(self):
        chip = get_chip("K20")
        field = StressField.from_locations(
            chip, 0, [0, chip.patch_size], 1.0, 640
        )
        swaps = 0
        for seed in range(200):
            mem = MemorySystem(chip, field, np.random.default_rng(seed))
            mem.write(0, 0, 0, 1)
            mem.write(0, 0, 8, 1)  # closer than min distance
            drain(mem, 60)
            swaps += mem.n_swaps
        assert swaps == 0


def buffer_indices_consistent(mem):
    """Recompute the buffer-membership mirrors from scratch and compare
    against the incrementally maintained ones."""
    by_thread = {}
    by_thread_ch = {}
    by_addr = {}
    total = 0
    nonempty = set()
    for sm, buf in enumerate(mem.sm_buffers):
        for t, a, _v, c, _tick, _p in buf:
            total += 1
            nonempty.add(sm)
            by_thread[(sm, t)] = by_thread.get((sm, t), 0) + 1
            by_thread_ch[(sm, t, c)] = by_thread_ch.get((sm, t, c), 0) + 1
            by_addr[(sm, a)] = by_addr.get((sm, a), 0) + 1
    return (
        total == mem.pending_stores()
        and nonempty == mem._nonempty
        and by_thread == mem._by_thread
        and by_thread_ch == mem._by_thread_ch
        and by_addr == mem._by_addr
    )


class TestBufferIndices:
    """The O(1) membership mirrors must track the buffers through every
    removal path (head drain, swap, rmw, fencing, drain_thread, flush)."""

    def test_consistent_under_random_workload(self):
        chip = get_chip("K20")
        field = StressField.from_locations(
            chip, 0, [0, 2 * chip.patch_size], 1.0, 640
        )
        for seed in range(30):
            rng = np.random.default_rng(1000 + seed)
            mem = MemorySystem(chip, field, np.random.default_rng(seed))
            for _ in range(120):
                op = rng.integers(0, 8)
                sm = int(rng.integers(0, 3))
                thread = int(rng.integers(0, 4))
                addr = int(rng.integers(0, 8)) * 64
                if op <= 2:
                    mem.write(sm, thread, addr, 1)
                elif op == 3:
                    mem.rmw(sm, thread, addr, lambda v: v + 1, {})
                elif op == 4:
                    mem.issue_load(sm, thread, addr)
                elif op == 5:
                    mem.drain_thread(sm, thread)
                elif op == 6:
                    mem.fence_begin(thread)
                    mem.step()
                    mem.fence_done(sm, thread)
                else:
                    mem.step()
                assert buffer_indices_consistent(mem)
            mem.flush_all()
            assert buffer_indices_consistent(mem)
            assert mem.pending_stores() == 0

    def test_rmw_commits_multiple_same_address_stores_in_order(self):
        mem = make_mem()
        mem.write(0, 0, 50, 10)
        mem.write(0, 1, 50, 20)  # other thread, same address, same SM
        mem.write(0, 0, 640, 7)  # unrelated channel, must stay buffered
        old = mem.rmw(0, 2, 50, lambda v: v + 1)
        # FIFO of the two same-address stores: 10 then 20, atomic last.
        assert old == 20
        assert mem.mem[50] == 21
        assert mem.pending_stores() == 1  # the unrelated store remains
        assert buffer_indices_consistent(mem)

    def test_fencing_drain_preserves_order_and_other_threads(self):
        mem = make_mem()
        mem.write(0, 0, 0, 1)
        mem.write(0, 1, 64, 2)
        mem.write(0, 0, 128, 3)
        mem.fence_begin(0)
        mem.step()  # priority-drains thread 0's stores in FIFO order
        # The fencing thread's stores are committed immediately; the
        # other thread's store stays subject to the normal drain roll.
        assert mem.mem[0] == 1 and mem.mem[128] == 3
        assert not mem._by_thread.get((0, 0))
        assert mem.pending_stores() in (0, 1)
        assert buffer_indices_consistent(mem)

    def test_drain_thread_no_op_without_stores(self):
        mem = make_mem()
        mem.write(0, 1, 0, 5)
        mem.drain_thread(0, 0)  # thread 0 has nothing buffered
        assert mem.pending_stores() == 1
        assert buffer_indices_consistent(mem)

    def test_unblocked_uses_counts(self):
        mem = make_mem("sc-ref")
        mem.write(0, 0, 0, 9)
        handle = mem.issue_load(0, 0, 1)  # same channel -> blocked
        assert not handle.resolved
        assert not mem._unblocked(handle)
        drain(mem)
        assert mem._unblocked(handle)


class TestReset:
    def test_reset_equivalent_to_fresh_instance(self):
        chip = get_chip("K20")
        field = StressField.from_locations(
            chip, 0, [0, 2 * chip.patch_size], 1.0, 640
        )

        def run(mem, rng):
            mem.write(0, 0, 0, 1)
            mem.write(0, 0, 2 * chip.patch_size, 1)
            out = []
            for _ in range(40):
                mem.step()
                out.append(mem.read(1, 1, 0))
            mem.flush_all()
            return out, mem.n_drains, mem.n_swaps

        for seed in range(25):
            fresh = run(
                MemorySystem(chip, field, np.random.default_rng(seed)),
                None,
            )
            reused = MemorySystem(
                chip, StressField.zero(chip), np.random.default_rng(999)
            )
            reused.write(0, 3, 512, 8)  # dirty it
            reused.issue_load(0, 2, 640)
            reused.reset(stress=field, rng=np.random.default_rng(seed))
            assert run(reused, None) == fresh
            assert reused.tick > 0  # ran; reset rewound it before

    def test_reset_clears_state(self):
        mem = make_mem()
        mem.write(0, 0, 0, 1)
        mem.mem[999] = 5
        mem.fence_begin(0)
        mem.reset()
        assert mem.pending_stores() == 0
        assert mem.mem == {}
        assert mem.tick == 0
        assert mem._fencing == set()
        assert mem.n_drains == 0
        assert buffer_indices_consistent(mem)

    def test_reset_swaps_weak_scale(self):
        chip = get_chip("K20")
        field = StressField.from_locations(
            chip, 0, [0, chip.patch_size], 1.0, 640
        )
        a = MemorySystem(chip, field, weak_scale=1.0)
        b = MemorySystem(chip, field, weak_scale=0.25)
        a.reset(weak_scale=0.25)
        assert a.bypass_p == b.bypass_p
        assert a.drain_p == b.drain_p


class TestTableCache:
    def test_tables_shared_between_instances(self):
        chip = get_chip("K20")
        field = StressField.from_locations(
            chip, 0, [0, chip.patch_size], 1.0, 640
        )
        a = MemorySystem(chip, field)
        b = MemorySystem(chip, field)
        assert a.drain_p is b.drain_p  # cached, not recomputed
        assert a.swap_p is b.swap_p

    def test_tables_differ_across_scales_and_fields(self):
        chip = get_chip("K20")
        field = StressField.from_locations(
            chip, 0, [0, chip.patch_size], 1.0, 640
        )
        base = memory_tables(chip, field, 1.0)
        assert memory_tables(chip, field, 0.5) != base
        other = StressField.from_locations(
            chip, 0, [0, 3 * chip.patch_size], 1.0, 640
        )
        assert memory_tables(chip, other, 1.0) != base

    def test_tables_match_direct_computation(self):
        """Cached tables are plain-list copies of the original numpy
        formulas (spot-check drain_p against the closed form)."""
        chip = get_chip("K20")
        field = StressField.from_locations(
            chip, 0, [0, chip.patch_size], 1.0, 640
        )
        drain_p, swap_p, bypass_p, slow_p, resolve_p = memory_tables(
            chip, field, 1.0
        )
        n = chip.n_channels
        assert len(drain_p) == n
        assert len(swap_p) == n and all(len(row) == n for row in swap_p)
        expected = 1.0 / (
            1.0
            + 0.05
            + chip.latency_gain
            * field.press
            * chip.sensitivity
            * field.turbulence
        )
        assert drain_p == expected.tolist()


class TestHostFill:
    def test_bulk_fill_matches_host_writes(self):
        from repro.gpu.addresses import AddressSpace

        mem = make_mem()
        buf = AddressSpace().alloc("b", 8)
        mem.host_fill(buf, range(8))
        assert [mem.host_read(buf, i) for i in range(8)] == list(range(8))

    def test_overflow_rejected(self):
        from repro.gpu.addresses import AddressSpace

        mem = make_mem()
        buf = AddressSpace().alloc("b", 4)
        with pytest.raises(InvalidAccessError):
            mem.host_fill(buf, [0] * 5)


class TestChannelFastPath:
    def test_shift_mask_matches_division(self):
        from repro.chips import all_chips

        for chip in all_chips():
            for addr in list(range(0, 4 * chip.patch_size * chip.n_channels, 7)):
                assert chip.channel(addr) == (
                    addr // chip.patch_size
                ) % chip.n_channels

    def test_memory_uses_same_mapping(self):
        chip = get_chip("980")  # 64-word patches
        mem = MemorySystem(chip, StressField.zero(chip))
        mem.write(0, 0, 3 * chip.patch_size + 5, 1)
        entry = mem.sm_buffers[0][0]
        assert entry[3] == chip.channel(3 * chip.patch_size + 5)


class TestBufferedRNGIntegration:
    def test_memory_system_identical_with_buffered_rng(self):
        """A MemorySystem driven by a BufferedRNG reproduces the raw
        Generator behaviour draw for draw."""
        chip = get_chip("K20")
        field = StressField.from_locations(
            chip, 0, [0, 2 * chip.patch_size], 1.0, 640
        )

        def run(rng):
            mem = MemorySystem(chip, field, rng)
            trace = []
            mem.write(0, 0, 0, 1)
            mem.write(0, 0, 2 * chip.patch_size, 2)
            h = mem.issue_load(1, 1, 2 * chip.patch_size)
            for _ in range(50):
                mem.step()
                trace.append((mem.read(1, 1, 0), mem.poll_load(h)))
            mem.flush_all()
            return trace, mem.n_drains, mem.n_swaps, mem.n_slow_loads

        for seed in range(40):
            raw = run(np.random.default_rng(seed))
            buffered = run(BufferedRNG(np.random.default_rng(seed)))
            assert raw == buffered
