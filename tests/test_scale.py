"""Tests for scale presets."""

import pytest

from repro.errors import ReproError
from repro.scale import DEFAULT, PAPER, SMOKE, get_scale


class TestPresets:
    def test_lookup_by_name(self):
        assert get_scale("smoke") is SMOKE
        assert get_scale("default") is DEFAULT
        assert get_scale("paper") is PAPER

    def test_unknown_name_raises(self):
        with pytest.raises(ReproError):
            get_scale("huge")

    def test_paper_scale_matches_paper_parameters(self):
        assert PAPER.max_distance == 256
        assert PAPER.max_location == 256
        assert PAPER.executions == 1000
        assert PAPER.max_sequence_length == 5
        assert PAPER.max_spread == 64
        assert PAPER.distance_step == 1

    def test_scales_are_ordered(self):
        assert SMOKE.executions < DEFAULT.executions < PAPER.executions
        assert SMOKE.campaign_runs < DEFAULT.campaign_runs

    def test_location_grids_nonempty(self):
        for scale in (SMOKE, DEFAULT, PAPER):
            assert scale.max_location // scale.location_step >= 8
