"""Property-based tests for the declarative litmus IR.

Random well-formed programs must validate, and the two condition
evaluators — the recursive :func:`~repro.litmus.ir.evaluate`
interpreter and the :func:`~repro.litmus.ir.compile_condition` closure
the hot loops use — must agree on every final state.  Hypothesis drives
both: the generator below builds arbitrary multi-thread programs with
globally unique registers and forbidden conditions drawn only from
written registers and touched locations, exactly the well-formedness
contract :func:`~repro.litmus.ir.validate_test` enforces.
"""

from hypothesis import given, settings, strategies as st

from repro.litmus.ir import (
    And,
    LocEq,
    Or,
    RegEq,
    compile_condition,
    condition_locations,
    condition_registers,
    evaluate,
    fence,
    format_condition,
    ld,
    rmw,
    st as st_ins,
    validate_test,
)
from repro.litmus.tests import LitmusTest

_LOCS = ("x", "y", "z", "w")
_VALUES = st.integers(0, 3)


@st.composite
def programs(draw):
    """Thread programs with globally unique registers.

    Returns ``(threads, written_regs, touched_locs)``; the register
    counter is global so the one-flat-namespace invariant holds by
    construction.
    """
    n_threads = draw(st.integers(1, 4))
    threads = []
    written = []
    touched = set()
    counter = 0
    for _ in range(n_threads):
        n_ins = draw(st.integers(1, 4))
        program = []
        for _ in range(n_ins):
            kind = draw(st.sampled_from(("st", "ld", "fence", "rmw")))
            if kind == "fence":
                program.append(fence())
                continue
            loc = draw(st.sampled_from(_LOCS))
            touched.add(loc)
            if kind == "st":
                program.append(st_ins(loc, draw(_VALUES)))
                continue
            counter += 1
            reg = f"r{counter}"
            written.append(reg)
            if kind == "ld":
                program.append(ld(loc, reg))
            else:
                program.append(rmw(loc, reg, draw(_VALUES)))
        threads.append(tuple(program))
    return tuple(threads), tuple(written), tuple(sorted(touched))


@st.composite
def conditions(draw, regs, locs):
    """A random condition over the given registers and locations."""
    leaves = []
    if regs:
        leaves.append(
            st.builds(RegEq, st.sampled_from(regs), _VALUES)
        )
    if locs:
        leaves.append(
            st.builds(LocEq, st.sampled_from(locs), _VALUES)
        )
    leaf = st.one_of(*leaves)
    cond = st.recursive(
        leaf,
        lambda children: st.one_of(
            st.builds(
                lambda terms: And(*terms),
                st.lists(children, min_size=1, max_size=3),
            ),
            st.builds(
                lambda terms: Or(*terms),
                st.lists(children, min_size=1, max_size=3),
            ),
        ),
        max_leaves=8,
    )
    return draw(cond)


@st.composite
def well_formed_tests(draw):
    threads, regs, locs = draw(programs())
    # A test needs at least one observable: retry via filter otherwise.
    if not regs and not locs:
        threads = threads[:-1] + (threads[-1] + (st_ins("x", 1),),)
        locs = ("x",)
    forbidden = draw(conditions(regs=regs, locs=locs))
    return LitmusTest(
        name="prop",
        description="",
        threads=threads,
        forbidden=forbidden,
    )


@st.composite
def final_states(draw, test):
    regs = {
        r: draw(_VALUES) for r in condition_registers(test.forbidden)
    }
    final = {loc: draw(_VALUES) for loc in test.locations}
    return regs, final


class TestWellFormedPrograms:
    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_generated_tests_validate(self, data):
        # LitmusTest.__post_init__ runs validate_test; constructing one
        # must succeed, and re-validating must stay silent.
        test = data.draw(well_formed_tests())
        validate_test(test)
        assert test.n_threads == len(test.threads)
        assert set(condition_registers(test.forbidden)) <= set(
            test.registers
        )
        assert set(condition_locations(test.forbidden)) <= set(
            test.locations
        )

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_structure_accessors_cover_program(self, data):
        test = data.draw(well_formed_tests())
        for program in test.threads:
            for ins in program:
                if ins[0] in ("st", "ld", "rmw"):
                    assert ins[1] in test.locations
                if ins[0] in ("ld", "rmw"):
                    assert ins[2] in test.registers


class TestEvaluatorAgreement:
    @settings(max_examples=300, deadline=None)
    @given(data=st.data())
    def test_compiled_condition_agrees_with_interpreter(self, data):
        test = data.draw(well_formed_tests())
        compiled = compile_condition(test.forbidden)
        regs, final = data.draw(final_states(test))
        assert compiled(regs, final) == evaluate(
            test.forbidden, regs, final
        )

    @settings(max_examples=300, deadline=None)
    @given(data=st.data())
    def test_weak_matches_interpreter(self, data):
        # LitmusTest.weak is the cached compiled closure the runners
        # call; it must agree with the interpreter too.
        test = data.draw(well_formed_tests())
        regs, final = data.draw(final_states(test))
        assert test.weak(regs, final) == evaluate(
            test.forbidden, regs, final
        )

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_missing_entries_default_to_zero(self, data):
        # Both evaluators treat unwritten registers and untouched
        # locations as zero-valued.
        test = data.draw(well_formed_tests())
        compiled = compile_condition(test.forbidden)
        empty_final = {loc: 0 for loc in test.locations}
        assert compiled({}, empty_final) == evaluate(
            test.forbidden, {}, empty_final
        )

    @settings(max_examples=150, deadline=None)
    @given(data=st.data())
    def test_format_round_trips_structure(self, data):
        # Rendering never crashes and mentions every leaf it contains.
        test = data.draw(well_formed_tests())
        text = format_condition(test.forbidden)
        for reg in condition_registers(test.forbidden):
            assert reg in text
        for loc in condition_locations(test.forbidden):
            assert f"[{loc}]" in text
