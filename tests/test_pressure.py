"""Tests for the stress pressure field."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.chips import get_chip
from repro.gpu.pressure import StressField


class TestConstructors:
    def test_zero_field(self, k20):
        field = StressField.zero(k20)
        assert field.press.sum() == 0.0
        assert field.hot_channels == 0
        assert field.turbulence == 0.0

    def test_from_locations_hits_right_channel(self, k20):
        base = k20.patch_size * k20.n_channels * 4  # channel 0
        field = StressField.from_locations(
            k20, base, [0], sequence_strength=1.0, n_stress_threads=640
        )
        assert field.press[0] > 0
        assert np.count_nonzero(field.press) == 1

    def test_two_locations_two_channels(self, k20):
        base = 0
        locs = [0, k20.patch_size]
        field = StressField.from_locations(k20, base, locs, 1.0, 640)
        assert np.count_nonzero(field.press) == 2

    def test_same_patch_locations_accumulate(self, k20):
        field = StressField.from_locations(
            k20, 0, [0, 1, 2], 1.0, 900
        )
        assert np.count_nonzero(field.press) == 1

    def test_uniform_field(self, k20):
        field = StressField.uniform(k20, 0.3)
        assert np.allclose(field.press, 0.3)
        assert field.hot_channels == k20.n_channels

    def test_diffuse_spreads_thin(self, k20):
        field = StressField.diffuse(k20, 1.0)
        assert field.hot_channels == 0
        assert 0 < field.turbulence < 0.2

    def test_wrong_shape_rejected(self, k20):
        with pytest.raises(ValueError):
            StressField(k20, np.zeros(3))


class TestDerived:
    def test_pressure_capped(self, k20):
        field = StressField.from_locations(k20, 0, [0], 5.0, 10_000)
        assert field.press.max() <= 1.8

    def test_turbulence_peaks_at_two_hot(self, k20):
        one = StressField.from_locations(k20, 0, [0], 1.0, 640)
        two = StressField.from_locations(
            k20, 0, [0, k20.patch_size], 1.0, 640
        )
        assert two.turbulence > one.turbulence

    def test_many_hot_channels_dilute(self, k20):
        two = StressField.from_locations(
            k20, 0, [0, k20.patch_size], 1.0, 640
        )
        many = StressField.uniform(k20, 1.0)
        assert many.turbulence < two.turbulence

    def test_effective_includes_cross_channel(self, k20):
        field = StressField.from_locations(k20, 0, [0], 1.0, 640)
        primary = field.effective(0, 1)
        secondary = field.effective(1, 0)
        assert primary > secondary > 0

    @given(threads=st.integers(1, 5000), n_locs=st.integers(1, 8))
    def test_property_more_threads_never_less_pressure(
        self, threads, n_locs
    ):
        chip = get_chip("K20")
        locs = [i * chip.patch_size for i in range(n_locs)]
        lo = StressField.from_locations(chip, 0, locs, 1.0, threads)
        hi = StressField.from_locations(chip, 0, locs, 1.0, threads + 64)
        assert np.all(hi.press >= lo.press)
