"""Tests for the deterministic fault-injection plane (repro.faults)
and the hardening it drives.

Covers the plan/spec contract (validation, JSON round-trips), injector
determinism (same plan + seed + call sequence => identical trace),
runtime installation (explicit and via environment), every injection
site's behaviour (unit execution, socket frames, heartbeats, ledger
writes), the hardening each site exercises (attempt budgets and
quarantine, worker reconnect with backoff, coordinator restart,
held=False discard, ledger salvage), and the end-to-end chaos harness:
a distributed experiment under a hostile plan still renders output
byte-identical to a fault-free serial run.
"""

import dataclasses
import json
import socket
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dist import (
    COMPRESS_FLAG,
    Coordinator,
    FrameDecoder,
    LeaseTable,
    MAX_FRAME,
    PROTOCOL_VERSION,
    backoff_delay,
    clamp_retry_s,
    encode_frame,
    recv_message,
    run_worker,
    send_message,
)
from repro.dist.worker import (
    BACKOFF_BASE_S,
    BACKOFF_CAP_S,
    RETRY_MAX_S,
    _Session,
)
from repro.errors import (
    FaultInjected,
    LedgerCorruptError,
    LedgerError,
    ProtocolError,
    QuarantineError,
    ReproError,
    WorkerExitError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    PLAN_ENV,
    ROLE_ENV,
    fault_at,
    install,
    run_chaos,
    suppress_faults,
    uninstall,
)
from repro.litmus.units import litmus_unit
from repro.parallel import run_units
from repro.parallel.executor import SERIAL
from repro.parallel.plan import execute_unit
from repro.scale import SMOKE
from repro.store import RunLedger, RunRecord, litmus_key
from repro.store.ledger import QUARANTINE_DIR, salvage_ledger, verify_ledger
from repro.stress.strategies import NoStress


@pytest.fixture(autouse=True)
def _clean_injector(monkeypatch):
    """Every test starts and ends with no plan installed and no plan
    environment leaking into spawned subprocesses."""
    monkeypatch.delenv(PLAN_ENV, raising=False)
    monkeypatch.delenv(ROLE_ENV, raising=False)
    uninstall()
    yield
    uninstall()


def _units(n=3, executions=8):
    """A small all-unique litmus plan (fast to execute in-process)."""
    tests = ["MP", "SB", "LB", "CoRR", "R", "S", "WRC", "IRIW"]
    units = []
    for i, test in enumerate(tests[:n]):
        key = litmus_key("K20", test, "no-str", 64, executions, i)
        units.append(
            litmus_unit(key, "K20", test, 64, NoStress(), executions, seed=i)
        )
    return units


def _plan(*specs, name="test", seed=1):
    return FaultPlan(name=name, seed=seed, specs=tuple(specs))


def _serve_in_thread(coordinator):
    box = {}

    def target():
        try:
            box["records"] = coordinator.serve()
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


class TestFaultSpecValidation:
    def test_unknown_site_refused(self):
        with pytest.raises(ReproError, match="unknown fault site"):
            FaultSpec("socket.sendd", "drop")

    def test_unknown_kind_for_site_refused(self):
        with pytest.raises(ReproError, match="no fault kind"):
            FaultSpec("unit.execute", "garbage")

    def test_rate_bounds(self):
        with pytest.raises(ReproError, match="rate"):
            FaultSpec("socket.send", "drop", rate=1.5)
        with pytest.raises(ReproError, match="rate"):
            FaultSpec("socket.send", "drop", rate=-0.1)

    def test_unknown_role_refused(self):
        with pytest.raises(ReproError, match="role"):
            FaultSpec("socket.send", "drop", role="observer")

    def test_negative_skip_refused(self):
        with pytest.raises(ReproError, match="skip"):
            FaultSpec("socket.send", "drop", skip=-1)

    def test_zero_max_fires_refused(self):
        with pytest.raises(ReproError, match="max_fires"):
            FaultSpec("socket.send", "drop", max_fires=0)

    def test_unknown_json_field_refused(self):
        with pytest.raises(ReproError, match="unknown fields"):
            FaultSpec.from_json(
                {"site": "socket.send", "kind": "drop", "rat": 0.5}
            )

    def test_plan_round_trips_through_json_file(self, tmp_path):
        plan = _plan(
            FaultSpec("unit.execute", "raise", match="MP", role="worker"),
            FaultSpec(
                "coordinator.merge", "restart", skip=2, max_fires=1,
                role="coordinator",
            ),
            FaultSpec(
                "unit.execute", "hang", rate=0.25,
                params={"hang_s": 0.5},
            ),
            name="round-trip",
            seed=99,
        )
        path = tmp_path / "plan.json"
        plan.dump(path)
        assert FaultPlan.load(path) == plan
        # And the file is honest JSON a human can edit.
        obj = json.loads(path.read_text())
        assert obj["name"] == "round-trip"
        assert obj["faults"][0]["site"] == "unit.execute"

    def test_unreadable_plan_file_refused(self, tmp_path):
        path = tmp_path / "nope.json"
        with pytest.raises(ReproError, match="unreadable fault plan"):
            FaultPlan.load(path)
        path.write_text("{not json")
        with pytest.raises(ReproError, match="unreadable fault plan"):
            FaultPlan.load(path)


class TestInjectorDeterminism:
    SEQUENCE = [
        ("socket.send", "request"),
        ("unit.execute", "unit-a"),
        ("socket.send", "result"),
        ("unit.execute", "unit-b"),
        ("coordinator.merge", None),
        ("unit.execute", "unit-a"),
        ("coordinator.merge", None),
        ("ledger.checkpoint", "unit-a"),
    ]

    def _run(self, plan):
        injector = FaultInjector(plan)
        events = [injector.fault_at(s, t) for s, t in self.SEQUENCE]
        return events, injector.trace

    def test_same_plan_same_sequence_identical_trace(self):
        plan = _plan(
            FaultSpec("unit.execute", "raise", rate=0.6, match="unit"),
            FaultSpec("coordinator.merge", "restart", skip=1, max_fires=1),
            FaultSpec("socket.send", "drop", rate=0.5),
            FaultSpec("ledger.checkpoint", "corrupt"),
            seed=7,
        )
        events_a, trace_a = self._run(plan)
        events_b, trace_b = self._run(plan)
        assert events_a == events_b
        assert trace_a == trace_b
        # Every trace entry logs the site and draw index it fired at.
        for entry in trace_a:
            assert set(entry) == {"site", "kind", "token", "draw"}

    def test_different_seed_may_change_rate_draws_not_structure(self):
        spec = FaultSpec("unit.execute", "raise", rate=0.5)
        fires_by_seed = set()
        for seed in range(8):
            injector = FaultInjector(_plan(spec, seed=seed))
            fired = tuple(
                injector.fault_at("unit.execute", f"u{i}") is not None
                for i in range(16)
            )
            fires_by_seed.add(fired)
        # Rate draws are a function of the seed: different seeds give
        # different firing patterns, each individually reproducible.
        assert len(fires_by_seed) > 1

    def test_skip_and_max_fires(self):
        injector = FaultInjector(
            _plan(FaultSpec("socket.send", "drop", skip=2, max_fires=2))
        )
        fired = [
            injector.fault_at("socket.send") is not None for _ in range(6)
        ]
        assert fired == [False, False, True, True, False, False]
        assert [e["draw"] for e in injector.trace] == [2, 3]

    def test_match_selects_by_token_substring(self):
        injector = FaultInjector(
            _plan(FaultSpec("unit.execute", "raise", match="poison"))
        )
        assert injector.fault_at("unit.execute", "healthy-unit") is None
        event = injector.fault_at("unit.execute", "the-poison-unit")
        assert event is not None and event.kind == "raise"

    def test_stable_token_fires_placement_independently(self):
        # The same content key fires identically in two injectors that
        # reached it at different draw positions (two different workers).
        plan = _plan(FaultSpec("unit.execute", "raise", rate=0.5), seed=3)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        for i in range(5):
            b.fault_at("unit.execute", f"warmup-{i}")
        key = "litmus:K20:MP:no-str:d64"
        assert (a.fault_at("unit.execute", key) is None) == (
            b.fault_at("unit.execute", key) is None
        )

    def test_role_scoping(self):
        plan = _plan(FaultSpec("socket.send", "drop", role="worker"))
        assert (
            FaultInjector(plan, role="coordinator").fault_at("socket.send")
            is None
        )
        assert (
            FaultInjector(plan, role="worker").fault_at("socket.send")
            is not None
        )
        assert (
            FaultInjector(plan, role="any").fault_at("socket.send") is None
        )

    def test_rate_zero_never_fires_rate_one_always(self):
        never = FaultInjector(
            _plan(FaultSpec("socket.send", "drop", rate=0.0))
        )
        always = FaultInjector(
            _plan(FaultSpec("socket.send", "drop", rate=1.0))
        )
        assert all(
            never.fault_at("socket.send") is None for _ in range(20)
        )
        assert all(
            always.fault_at("socket.send") is not None for _ in range(20)
        )

    def test_event_params_reach_the_site(self):
        injector = FaultInjector(
            _plan(
                FaultSpec(
                    "unit.execute", "exit", params={"exit_code": 7}
                )
            )
        )
        event = injector.fault_at("unit.execute", "u")
        assert event.param("exit_code", 41) == 7
        assert event.param("absent", "fallback") == "fallback"


class TestRuntime:
    def test_no_plan_is_a_noop(self):
        assert fault_at("socket.send") is None

    def test_install_and_uninstall(self):
        install(_plan(FaultSpec("socket.send", "drop")))
        assert fault_at("socket.send") is not None
        uninstall()
        assert fault_at("socket.send") is None

    def test_suppress_faults_is_reentrant(self):
        install(_plan(FaultSpec("socket.send", "drop")))
        with suppress_faults():
            with suppress_faults():
                assert fault_at("socket.send") is None
            assert fault_at("socket.send") is None
        assert fault_at("socket.send") is not None

    def test_env_auto_install(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        _plan(FaultSpec("unit.execute", "raise", role="worker")).dump(path)
        monkeypatch.setenv(PLAN_ENV, str(path))
        uninstall()  # forget the env check so the variable is honoured
        event = fault_at("unit.execute", "u")
        assert event is not None  # default env role is worker
        uninstall()
        monkeypatch.setenv(ROLE_ENV, "coordinator")
        assert fault_at("unit.execute", "u") is None


class TestUnitExecutionFaults:
    def test_poisoned_unit_raises_fault_injected(self):
        units = _units(n=2)
        install(
            _plan(FaultSpec("unit.execute", "raise", match=units[0].key))
        )
        with pytest.raises(FaultInjected) as info:
            execute_unit(units[0])
        assert info.value.site == "unit.execute"
        assert info.value.token == units[0].key
        # The other unit is untouched.
        assert execute_unit(units[1]).key == units[1].key

    def test_suppressed_execution_is_clean(self):
        units = _units(n=1)
        expected = run_units(units)
        install(_plan(FaultSpec("unit.execute", "raise")))
        with suppress_faults():
            assert execute_unit(units[0]) == expected[0]

    def test_hang_delays_then_completes(self):
        units = _units(n=1)
        expected = run_units(units)
        install(
            _plan(
                FaultSpec(
                    "unit.execute", "hang", params={"hang_s": 0.01}
                )
            )
        )
        assert execute_unit(units[0]) == expected[0]


class TestSocketFaults:
    def _pair(self):
        left, right = socket.socketpair()
        left.settimeout(5)
        right.settimeout(5)
        return left, right

    def test_send_garbage_surfaces_as_protocol_error(self):
        install(
            _plan(FaultSpec("socket.send", "garbage", match="request"))
        )
        left, right = self._pair()
        try:
            send_message(left, {"type": "request"})
            with pytest.raises(ProtocolError):
                recv_message(right, FrameDecoder())
        finally:
            left.close()
            right.close()

    def test_send_drop_loses_the_frame(self):
        install(
            _plan(FaultSpec("socket.send", "drop", match="heartbeat"))
        )
        left, right = self._pair()
        try:
            send_message(left, {"type": "heartbeat", "lease": 1})
            with suppress_faults():
                send_message(left, {"type": "request"})
            # The dropped frame never arrives; the next one does.
            assert recv_message(right, FrameDecoder()) == {
                "type": "request"
            }
        finally:
            left.close()
            right.close()

    def test_send_partial_raises_connection_reset(self):
        install(
            _plan(FaultSpec("socket.send", "partial", match="result"))
        )
        left, right = self._pair()
        try:
            with pytest.raises(ConnectionResetError):
                send_message(
                    left, {"type": "result", "lease": 1, "records": []}
                )
        finally:
            left.close()
            right.close()

    def test_recv_drop_raises_connection_reset(self):
        install(_plan(FaultSpec("socket.recv", "drop")))
        left, right = self._pair()
        try:
            with suppress_faults():
                send_message(left, {"type": "request"})
            with pytest.raises(ConnectionResetError):
                recv_message(right, FrameDecoder())
        finally:
            left.close()
            right.close()


class TestRetryClampAndBackoff:
    def test_clamp_passes_sane_values(self):
        assert clamp_retry_s(0.5) == 0.5
        assert clamp_retry_s("0.25") == 0.25
        assert clamp_retry_s(0) == 0.0

    def test_clamp_caps_large_and_negative(self):
        assert clamp_retry_s(3600) == RETRY_MAX_S
        assert clamp_retry_s(-7) == 0.0

    @pytest.mark.parametrize(
        "value", ["soon", None, [1], float("inf"), float("nan")]
    )
    def test_clamp_refuses_non_finite_and_non_numeric(self, value):
        with pytest.raises(ProtocolError, match="retry_s"):
            clamp_retry_s(value)

    def test_backoff_is_deterministic_per_worker(self):
        assert backoff_delay("w1", 3) == backoff_delay("w1", 3)
        assert backoff_delay("w1", 3) != backoff_delay("w2", 3)

    def test_backoff_grows_and_caps_with_jitter_bounds(self):
        for attempt in range(12):
            base = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2 ** attempt))
            delay = backoff_delay("w", attempt)
            assert base * 0.5 <= delay <= base
        assert backoff_delay("w", 100) <= BACKOFF_CAP_S


class TestAttemptBudget:
    def _table(self, n=3, timeout=10.0, max_attempts=3):
        clock = [0.0]
        table = LeaseTable(
            n_units=n,
            timeout=timeout,
            max_attempts=max_attempts,
            now=lambda: clock[0],
        )
        return table, clock

    def test_expiry_boundary_is_inclusive(self):
        # An integer test clock stepping exactly onto the deadline must
        # expire the lease, not leave it straddling forever.
        table, clock = self._table(timeout=10.0)
        lease = table.grant("w")
        clock[0] = 10.0
        assert lease.deadline == 10.0
        expired = table.expire()
        assert [l.lease_id for l in expired] == [lease.lease_id]
        assert list(table.pending)[0] == lease.indices[0]

    def test_failed_unit_repends_to_back(self):
        table, _ = self._table(n=3)
        lease = table.grant("w")  # unit 0
        settlement = table.settle(
            lease.lease_id, failed={lease.indices[0]: "boom"}
        )
        assert settlement.repended == lease.indices
        # Healthy work (units 1, 2) drains before the flaky unit retries.
        assert list(table.pending) == [1, 2, 0]
        assert table.attempts[lease.indices[0]] == 1

    def test_abandoned_unit_repends_to_front_without_charge(self):
        table, _ = self._table(n=3)
        table.units_per_lease = 2
        lease = table.grant("w")  # units 0, 1
        settlement = table.settle(lease.lease_id, completed={0})
        assert settlement.completed == (0,)
        assert settlement.abandoned == (1,)
        assert list(table.pending) == [1, 2]
        assert 1 not in table.attempts

    def test_budget_exhaustion_quarantines(self):
        table, _ = self._table(n=2, max_attempts=3)
        lease = table.grant("w0")  # unit 0
        table.settle(lease.lease_id, failed={0: "boom 0"})
        lease = table.grant("w0")  # unit 1 (healthy work drains first)
        assert lease.indices == (1,)
        table.settle(lease.lease_id, completed={1})
        for attempt in (1, 2):
            lease = table.grant(f"w{attempt}")
            assert lease.indices == (0,)
            table.settle(lease.lease_id, failed={0: f"boom {attempt}"})
        assert 0 in table.quarantined
        reason = table.quarantined[0]
        assert "3 failed attempts" in reason
        assert "w0" in reason and "w2" in reason
        assert "boom 2" in reason  # the last failure is named
        assert table.done  # quarantined counts as resolved

    def test_connection_loss_charges_the_budget(self):
        # A unit that keeps taking workers down (executor exits the
        # process) must still hit quarantine via the EOF path.
        table, _ = self._table(n=1, max_attempts=2)
        for i in range(2):
            table.grant(f"w{i}")
            table.release_worker(f"w{i}")
        assert 0 in table.quarantined
        assert "connection lost" in table.quarantined[0]
        assert table.done


class TestHeartbeatDiscard:
    def test_injected_heartbeat_drop_skips_the_wire(self):
        install(_plan(FaultSpec("worker.heartbeat", "drop")))
        left, right = socket.socketpair()
        try:
            # The worker believes the lease is held...
            assert _Session(right, name="w")._heartbeat(5)
            # ...but nothing reached the coordinator.
            left.setblocking(False)
            with pytest.raises(BlockingIOError):
                left.recv(1)
        finally:
            left.close()
            right.close()

    def test_lost_lease_discards_in_flight_work(self):
        # held=False on a heartbeat ack means the lease was reassigned:
        # the worker must drop its records, not report stale duplicates.
        left, right = socket.socketpair()
        left.settimeout(10)
        right.settimeout(10)
        units = _units(n=2)
        lease_msg = {
            "type": "lease",
            "lease": 7,
            "units": [u.to_json() for u in units],
        }
        logs = []
        box = {}

        def fake_coordinator():
            decoder = FrameDecoder()
            beat = recv_message(left, decoder)
            assert beat == {"type": "heartbeat", "lease": 7}
            send_message(
                left, {"type": "beat", "lease": 7, "held": False}
            )
            box["after"] = recv_message(left, decoder)

        thread = threading.Thread(target=fake_coordinator, daemon=True)
        thread.start()
        session = _Session(
            right, name="w", config=SERIAL, log=logs.append
        )
        executed = session._serve_lease(lease_msg)
        right.close()
        thread.join(timeout=10)
        left.close()
        assert executed == 0
        assert box["after"] is None  # no result frame was ever sent
        assert any("discarding" in line for line in logs)

    def test_coordinator_acks_lost_lease_with_held_false(self):
        units = _units(n=1)
        coordinator = Coordinator(units)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        sock = socket.create_connection((host, port), timeout=10)
        sock.settimeout(10)
        decoder = FrameDecoder()
        try:
            send_message(
                sock,
                {
                    "type": "hello",
                    "worker": "stale",
                    "protocol": PROTOCOL_VERSION,
                },
            )
            assert recv_message(sock, decoder)["type"] == "welcome"
            send_message(sock, {"type": "heartbeat", "lease": 999})
            reply = recv_message(sock, decoder)
            assert reply == {"type": "beat", "lease": 999, "held": False}
        finally:
            sock.close()
        run_worker(host, port)
        thread.join(timeout=30)
        assert "records" in box


class TestQuarantineEndToEnd:
    def test_poison_unit_quarantined_healthy_records_survive(self):
        units = _units(n=3)
        poison = units[1].key
        install(
            _plan(FaultSpec("unit.execute", "raise", match=poison)),
            role="worker",
        )
        coordinator = Coordinator(units, max_attempts=3)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        executed = run_worker(host, port, name="w")
        thread.join(timeout=30)
        assert executed == 2
        error = box["error"]
        assert isinstance(error, QuarantineError)
        assert set(error.quarantined) == {poison}
        assert "3 failed attempts" in error.quarantined[poison]
        assert "FaultInjected" in error.quarantined[poison]
        with suppress_faults():
            healthy = run_units([u for u in units if u.key != poison])
        assert error.records == healthy


class TestWorkerReconnect:
    def test_worker_rides_out_coordinator_restart(self):
        units = _units(n=4)
        with suppress_faults():
            expected = run_units(units)
        injector = install(
            _plan(
                FaultSpec(
                    "coordinator.merge", "restart", skip=1, max_fires=1,
                    role="coordinator",
                )
            ),
            role="coordinator",
        )
        coordinator = Coordinator(units)
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        run_worker(host, port, name="survivor", reconnect_timeout=20)
        thread.join(timeout=30)
        assert box["records"] == expected
        restarts = [
            e for e in injector.trace if e["site"] == "coordinator.merge"
        ]
        assert len(restarts) == 1 and restarts[0]["kind"] == "restart"

    def test_worker_gives_up_after_reconnect_timeout(self):
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def half_coordinator():
            conn, _ = listener.accept()
            decoder = FrameDecoder()
            assert recv_message(conn, decoder)["type"] == "hello"
            send_message(
                conn,
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "units_total": 1,
                },
            )
            conn.close()
            listener.close()  # gone for good: reconnects are refused

        thread = threading.Thread(target=half_coordinator, daemon=True)
        thread.start()
        try:
            with pytest.raises(WorkerExitError, match="unreachable"):
                run_worker(
                    host, port, connect_timeout=5, reconnect_timeout=0.5
                )
        finally:
            thread.join(timeout=10)

    def test_drain_check_releases_mid_lease_without_charge(self):
        units = _units(n=3)
        with suppress_faults():
            expected = run_units(units)
        logs = []
        coordinator = Coordinator(
            units, units_per_lease=3, log=logs.append
        )
        host, port = coordinator.bind()
        thread, box = _serve_in_thread(coordinator)
        polls = [0]

        def drain_check():
            # Polled once before the lease request, then before each
            # unit of the lease: let the first unit run, drain before
            # the second.
            polls[0] += 1
            return polls[0] >= 3

        drained = run_worker(
            host, port, name="quitter", drain_check=drain_check
        )
        finished = run_worker(host, port, name="finisher")
        thread.join(timeout=30)
        assert drained + finished == len(units)
        assert box["records"] == expected
        assert any("without charge" in line for line in logs)


class TestLedgerFaults:
    def _record(self, i):
        return RunRecord(
            key=f"unit:{i}", kind="mystery", payload={"value": i}
        )

    def test_checkpoint_corrupt_detected_and_salvaged(self, tmp_path):
        root = tmp_path / "ledger"
        ledger = RunLedger.create(root)
        install(
            _plan(
                FaultSpec("ledger.checkpoint", "corrupt", match="unit:1")
            )
        )
        with ledger.writer() as writer:
            for i in range(3):
                writer.write(self._record(i))
        uninstall()
        # The corrupted record never became durable and was not absorbed.
        assert "unit:1" not in ledger
        problems = verify_ledger(root)
        assert len(problems) == 1
        assert problems[0]["line"] == 2
        with pytest.raises(LedgerCorruptError):
            RunLedger.open(root)
        summary = salvage_ledger(root)
        assert summary["recovered"] == 2
        assert len(summary["quarantined_segments"]) == 1
        assert (root / QUARANTINE_DIR).is_dir()
        clean = RunLedger.open(root)
        assert clean.keys() == {"unit:0", "unit:2"}
        assert verify_ledger(root) == []

    def test_checkpoint_truncate_behaves_like_killed_writer(
        self, tmp_path
    ):
        root = tmp_path / "ledger"
        ledger = RunLedger.create(root)
        install(
            _plan(
                FaultSpec(
                    "ledger.checkpoint", "truncate", match="unit:2"
                )
            )
        )
        with ledger.writer() as writer:
            for i in range(3):
                writer.write(self._record(i))
        uninstall()
        # A truncated *tail* is the tolerated kill-mid-write shape.
        reopened = RunLedger.open(root)
        assert reopened.keys() == {"unit:0", "unit:1"}

    def test_append_fsync_error_raises_ledger_error(self, tmp_path):
        ledger = RunLedger.create(tmp_path / "ledger")
        install(_plan(FaultSpec("ledger.append", "fsync-error")))
        with pytest.raises(LedgerError, match="injected fsync"):
            ledger.append(self._record(0))

    def test_append_corrupt_mid_segment_salvages(self, tmp_path):
        root = tmp_path / "ledger"
        ledger = RunLedger.create(root)
        ledger.append(self._record(0))  # a healthy first segment
        install(
            _plan(
                FaultSpec("ledger.append", "corrupt", match="seg-000002")
            )
        )
        ledger.append(*[self._record(i) for i in range(1, 5)])
        uninstall()
        problems = verify_ledger(root)
        assert [p["segment"] for p in problems] == ["seg-000002.jsonl"]
        summary = salvage_ledger(root)
        # Every record around the corrupt line is recovered.
        assert summary["recovered"] == 4
        assert summary["dropped"] == []
        clean = RunLedger.open(root)
        assert clean.keys() == {f"unit:{i}" for i in range(5)}

    def test_salvage_of_clean_ledger_is_a_noop(self, tmp_path):
        root = tmp_path / "ledger"
        ledger = RunLedger.create(root)
        ledger.append(self._record(0))
        summary = salvage_ledger(root)
        assert summary == {
            "problems": [],
            "quarantined_segments": [],
            "recovered": 0,
            "dropped": [],
        }
        assert not (root / QUARANTINE_DIR).exists()

    def test_hand_damaged_segment_salvages(self, tmp_path):
        # Damage written by something other than the fault plane (a bad
        # disk, a partial rsync) salvages the same way.
        root = tmp_path / "ledger"
        ledger = RunLedger.create(root)
        ledger.append(*[self._record(i) for i in range(3)])
        segment = next(root.glob("seg-*.jsonl"))
        lines = segment.read_text().splitlines(keepends=True)
        lines[1] = "}{ definitely not json\n"
        segment.write_text("".join(lines))
        assert len(verify_ledger(root)) == 1
        summary = salvage_ledger(root)
        assert summary["recovered"] == 2
        assert RunLedger.open(root).keys() == {"unit:0", "unit:2"}


class TestFrameDecoderFuzz:
    """Satellite: the decoder must answer any byte stream with decoded
    messages or a typed ProtocolError — never a crash, never a hang."""

    @settings(
        max_examples=80,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.binary(max_size=256), chunk=st.integers(1, 9))
    def test_arbitrary_bytes_fed_in_chunks_never_crash(self, data, chunk):
        decoder = FrameDecoder()
        try:
            for i in range(0, len(data), chunk):
                messages = decoder.feed(data[i : i + chunk])
                assert all(isinstance(m, dict) for m in messages)
        except ProtocolError:
            pass

    @settings(
        max_examples=80,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        flip_at=st.integers(0, 10_000),
        flip_to=st.integers(0, 255),
    )
    def test_single_byte_corruption_of_valid_frame(self, flip_at, flip_to):
        frame = bytearray(
            encode_frame(
                {"type": "result", "lease": 3, "records": [{"k": "v"}]}
            )
        )
        frame[flip_at % len(frame)] = flip_to
        decoder = FrameDecoder()
        try:
            messages = decoder.feed(bytes(frame))
            assert all(isinstance(m, dict) for m in messages)
        except ProtocolError:
            pass

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        # Any header whose *masked* length exceeds MAX_FRAME must be
        # refused — with or without the v3 compress bit (the top bit).
        length=st.one_of(
            st.integers(MAX_FRAME + 1, COMPRESS_FLAG - 1),
            st.integers(COMPRESS_FLAG + MAX_FRAME + 1, 2**32 - 1),
        )
    )
    def test_oversized_length_prefix_always_refused(self, length):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError, match="exceeds"):
            decoder.feed(length.to_bytes(4, "big") + b"x")

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(garbage=st.binary(min_size=1, max_size=64))
    def test_mid_stream_garbage_after_valid_frames(self, garbage):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame({"type": "request"})) == [
            {"type": "request"}
        ]
        payload = b"\x00" + garbage  # never valid JSON
        try:
            decoder.feed(len(payload).to_bytes(4, "big") + payload)
        except ProtocolError:
            pass


TINY = dataclasses.replace(SMOKE, campaign_runs=6)


class TestChaosHarness:
    def test_rejects_non_distributable_experiment(self):
        with pytest.raises(ReproError, match="cannot run under chaos"):
            run_chaos("table1", _plan())

    def test_chaos_campaign_byte_identical_end_to_end(self, tmp_path):
        """The tentpole acceptance: a table5 campaign under a plan that
        poisons one unit, restarts the coordinator mid-run and corrupts
        a ledger line still renders byte-identical output, with the
        poison quarantined-and-repaired and the ledger salvaged."""
        from repro.apps.registry import all_applications
        from repro.store.records import campaign_shard_key

        apps = [a.name for a in all_applications()]
        poison = campaign_shard_key(
            "K20", apps[0], "sys-str+", TINY.campaign_runs, 5, 0,
            TINY.campaign_runs,
        )
        corrupt = campaign_shard_key(
            "K20", apps[1], "no-str-", TINY.campaign_runs, 5, 0,
            TINY.campaign_runs,
        )
        plan = _plan(
            FaultSpec("unit.execute", "raise", match=poison, role="worker"),
            FaultSpec(
                "coordinator.merge", "restart", skip=2, max_fires=1,
                role="coordinator",
            ),
            FaultSpec(
                "ledger.checkpoint", "corrupt", match=corrupt,
                role="coordinator",
            ),
            name="full-chaos",
            seed=13,
        )
        out = tmp_path / "ledger"
        report = run_chaos(
            "table5",
            plan,
            scale=TINY,
            seed=5,
            workers=2,
            out=str(out),
            lease_timeout=20.0,
            chips=("K20",),
            environments=("no-str-", "sys-str+"),
        )
        assert report.identical, report.summary()
        assert report.chaos_text == report.serial_text
        assert report.final_text == report.serial_text
        assert set(report.quarantined) == {poison}
        sites = {e["site"] for e in report.trace}
        assert "coordinator.merge" in sites
        assert "ledger.checkpoint" in sites
        assert report.ledger_problems
        assert report.salvage is not None
        assert report.salvage["quarantined_segments"]
        assert (out / QUARANTINE_DIR).is_dir()
        summary = report.summary()
        assert "IDENTICAL" in summary
        assert poison in summary


class TestCLI:
    def test_chaos_parser_accepts_plan_and_knobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "chaos", "table5", "--plan", "plan.json", "--workers",
                "3", "--max-attempts", "2", "--out", "ledger",
            ]
        )
        assert args.id == "table5"
        assert args.plan == "plan.json"
        assert args.workers == 3
        assert args.max_attempts == 2

    def test_worker_parser_accepts_faults_and_reconnect(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "worker", "--connect", "h:1", "--faults", "p.json",
                "--reconnect-timeout", "7",
            ]
        )
        assert args.faults == "p.json"
        assert args.reconnect_timeout == 7.0

    def test_ledger_verify_and_salvage(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "ledger"
        ledger = RunLedger.create(root)
        ledger.append(
            *[
                RunRecord(key=f"unit:{i}", kind="mystery", payload={})
                for i in range(3)
            ]
        )
        assert main(["ledger", "verify", str(root)]) == 0
        assert "clean" in capsys.readouterr().out
        segment = next(root.glob("seg-*.jsonl"))
        lines = segment.read_text().splitlines(keepends=True)
        lines[1] = "\x00broken\n"
        segment.write_text("".join(lines))
        assert main(["ledger", "verify", str(root)]) == 1
        assert main(["ledger", "salvage", str(root)]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert main(["ledger", "verify", str(root)]) == 0

    def test_ledger_verify_missing_dir_fails_cleanly(self, tmp_path):
        from repro.cli import main

        assert main(["ledger", "verify", str(tmp_path / "absent")]) == 2
