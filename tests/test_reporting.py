"""Tests for tables, figures and the experiment harness."""

import pytest

from repro.reporting import (
    EXPERIMENTS,
    render_bars,
    render_series,
    render_table,
    run_experiment,
)


class TestRenderTable:
    def test_renders_rows(self):
        text = render_table(
            [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], title="T"
        )
        assert "T" in text
        assert "22" in text
        assert text.splitlines()[1].startswith("a")

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], title="T")

    def test_column_subset(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestRenderFigures:
    def test_bars_scale_to_peak(self):
        text = render_bars([0, 1, 5], label="MP d=0")
        assert "MP d=0" in text
        assert "peak=5" in text

    def test_bars_all_zero(self):
        assert "peak=0" in render_bars([0, 0, 0])

    def test_series_renders_points(self):
        text = render_series(
            {"MP": [(1, 10.0), (2, 20.0)], "LB": [(1, 5.0)]},
            title="fig", x_label="spread",
        )
        assert "fig" in text and "spread" in text
        assert "20" in text


class TestExperimentRegistry:
    def test_all_artefacts_present(self):
        # The paper's nine artefacts plus the extended litmus survey.
        assert set(EXPERIMENTS) == {
            "table1", "fig3", "table2", "table3", "fig4",
            "table4", "table5", "table6", "fig5", "survey",
        }

    def test_survey_covers_full_family(self):
        from repro.litmus import ALL_TESTS
        from repro.scale import SMOKE

        text = run_experiment(
            "survey", scale=SMOKE, seed=3, chips=("K20",),
        )
        for test in ALL_TESTS:
            assert test.name in text
        assert "K20 sys-str" in text

    def test_survey_tests_filter(self):
        from repro.scale import SMOKE

        text = run_experiment(
            "survey", scale=SMOKE, seed=3, chips=("K20",),
            tests=("MP", "IRIW"),
        )
        assert "IRIW" in text and "CoWW" not in text

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            run_experiment("table9")

    def test_table1_static(self):
        text = run_experiment("table1")
        for chip in ("GTX 980", "Quadro K5200", "Tesla C2050"):
            assert chip in text

    def test_table4_static(self):
        text = run_experiment("table4")
        assert "cbe-dot" in text and "ls-bh" in text
