"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_validates_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])


class TestCommands:
    def test_chips(self, capsys):
        assert main(["chips"]) == 0
        out = capsys.readouterr().out
        assert "K20" in out and "Fermi" in out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "cbe-dot" in out and "ls-bh-nf" in out

    def test_tests_lists_registry(self, capsys):
        from repro.litmus import ALL_TESTS

        assert main(["tests"]) == 0
        out = capsys.readouterr().out
        for test in ALL_TESTS:
            assert test.name in out
        assert "IRIW" in out and "Coherence" in out

    def test_litmus_name_case_insensitive(self, capsys):
        code = main([
            "litmus", "corr", "--chip", "K20", "--distance", "64",
            "--executions", "10",
        ])
        assert code == 0
        assert "CoRR d=64 on K20" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "spelling,canonical",
        [
            ("2.2w", "2+2W"),
            ("2-2W", "2+2W"),
            ("22w", "2+2W"),
            ("3lb", "3.LB"),
            ("3-LB", "3.LB"),
            ("mp-f0", "MP-F0"),
            ("MP.F0", "MP-F0"),
        ],
    )
    def test_litmus_name_punctuation_normalised(
        self, spelling, canonical, capsys
    ):
        # `+` and `.` names must resolve however the shell mangles the
        # separators (regression: `2.2w` and `3lb` used to be rejected).
        code = main([
            "litmus", spelling, "--chip", "K20", "--distance", "64",
            "--executions", "5",
        ])
        assert code == 0
        assert f"{canonical} d=64 on K20" in capsys.readouterr().out

    def test_survey_tests_filter_normalises_punctuation(self, capsys):
        code = main([
            "experiment", "survey", "--scale", "smoke",
            "--chips", "K20", "--tests", "2.2w", "3-lb",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2+2W" in out and "3.LB" in out

    def test_litmus_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["litmus", "MP+lwsync", "--executions", "5"])

    def test_litmus_vector_backend(self, capsys):
        code = main([
            "litmus", "SB", "--chip", "K20", "--distance", "64",
            "--executions", "4096", "--backend", "vector",
        ])
        assert code == 0
        assert "[vector]" in capsys.readouterr().out

    def test_survey_vector_backend(self, capsys):
        code = main([
            "experiment", "survey", "--scale", "smoke",
            "--chips", "K20", "--tests", "MP", "--backend", "vector",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "vector backend" in out

    def test_backend_flag_rejected_outside_survey(self, capsys):
        code = main([
            "experiment", "table1", "--backend", "vector",
        ])
        assert code == 2
        assert "--backend" in capsys.readouterr().err

    def test_litmus_engine_backend(self, capsys):
        code = main([
            "litmus", "MP", "--chip", "K20", "--distance", "64",
            "--executions", "4", "--backend", "engine",
        ])
        assert code == 0
        assert "[engine]" in capsys.readouterr().out

    def test_experiment_survey_with_tests_filter(self, capsys):
        code = main([
            "experiment", "survey", "--scale", "smoke",
            "--chips", "K20", "--tests", "MP", "mp-ff",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MP-FF" in out and "Litmus survey" in out

    def test_tests_filter_rejected_outside_survey(self, capsys):
        code = main([
            "experiment", "table1", "--tests", "MP",
        ])
        assert code == 2
        assert "--tests" in capsys.readouterr().err

    def test_litmus_native(self, capsys):
        code = main([
            "litmus", "MP", "--chip", "K20", "--distance", "64",
            "--executions", "30",
        ])
        assert code == 0
        assert "MP d=64 on K20" in capsys.readouterr().out

    def test_litmus_stressed(self, capsys):
        code = main([
            "litmus", "SB", "--chip", "Titan", "--distance", "64",
            "--executions", "40", "--stress-at", "0,64",
            "--sequence", "ld st2 ld",
        ])
        assert code == 0
        assert "SB" in capsys.readouterr().out

    def test_test_app(self, capsys):
        code = main([
            "test-app", "cbe-dot", "--chip", "K20",
            "--environment", "no-str-", "--runs", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cbe-dot on K20" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "GTX 980" in capsys.readouterr().out
