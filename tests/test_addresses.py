"""Tests for the address space and bump allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidAccessError
from repro.gpu.addresses import AddressSpace, Buffer, CUDA_MALLOC_ALIGN


class TestBuffer:
    def test_addr_offsets_from_base(self):
        buf = Buffer("b", base=100, size=10)
        assert buf.addr(0) == 100
        assert buf.addr(9) == 109

    @pytest.mark.parametrize("idx", [-1, 10, 1000])
    def test_out_of_bounds_raises(self, idx):
        with pytest.raises(InvalidAccessError):
            Buffer("b", base=0, size=10).addr(idx)

    def test_len(self):
        assert len(Buffer("b", base=0, size=7)) == 7


class TestAddressSpace:
    def test_buffers_do_not_overlap(self):
        space = AddressSpace()
        a = space.alloc("a", 10)
        b = space.alloc("b", 10)
        assert a.base + a.size <= b.base

    def test_alignment_respected(self):
        space = AddressSpace()
        space.alloc("pad", 3)
        buf = space.alloc("aligned", 8, align=32)
        assert buf.base % 32 == 0

    def test_default_alignment(self):
        space = AddressSpace(default_align=CUDA_MALLOC_ALIGN)
        space.alloc("a", 1)
        b = space.alloc("b", 1)
        assert b.base % CUDA_MALLOC_ALIGN == 0

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("x", 4)
        with pytest.raises(ValueError):
            space.alloc("x", 4)

    def test_lookup_by_name(self):
        space = AddressSpace()
        buf = space.alloc("x", 4)
        assert space.buffer("x") is buf

    def test_lookup_missing_raises(self):
        with pytest.raises(InvalidAccessError):
            AddressSpace().buffer("nope")

    @pytest.mark.parametrize("bad", [0, -3])
    def test_bad_size_rejected(self, bad):
        with pytest.raises(ValueError):
            AddressSpace().alloc("x", bad)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace(offset=-1)

    def test_words_used_grows(self):
        space = AddressSpace()
        space.alloc("a", 10)
        assert space.words_used >= 10

    @given(
        sizes=st.lists(st.integers(1, 200), min_size=1, max_size=20),
        align=st.sampled_from([1, 2, 8, 32, 64]),
    )
    def test_property_no_overlap_any_alignment(self, sizes, align):
        space = AddressSpace(default_align=align)
        buffers = [
            space.alloc(f"b{i}", size) for i, size in enumerate(sizes)
        ]
        spans = sorted((b.base, b.base + b.size) for b in buffers)
        for (lo1, hi1), (lo2, _hi2) in zip(spans, spans[1:]):
            assert hi1 <= lo2
        for b in buffers:
            assert b.base % align == 0
