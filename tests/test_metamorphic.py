"""Cross-backend metamorphic tests: renaming must not change rates.

Two metamorphic relations over the litmus registry:

* **Location renaming** — rewriting every location name (``x`` -> ``a``,
  ...) preserves the layout order, so all three backends must produce
  *bit-identical* weak counts at a fixed seed.
* **Thread renaming** — permuting the thread tuple changes SM placement
  and tie-break ranks but not the memory semantics; weak rates must be
  statistically unchanged (two-sided two-proportion test at α = 0.001)
  on every backend.
"""

import pytest

from repro.litmus import (
    get_test,
    run_litmus,
    run_litmus_compiled,
    run_litmus_vector,
)
from repro.litmus.ir import And, LocEq, Or, RegEq
from repro.litmus.tests import LitmusTest
from repro.stress.strategies import TunedStress
from repro.testing.stats import parity_family
from repro.tuning.pipeline import shipped_params

#: Renaming keeps ``name`` so derived seed streams stay comparable;
#: the rewritten test is never registered.
_LOC_MAP = {"x": "a", "y": "b", "z": "c", "w": "d"}


def _rename_condition(cond, mapping):
    if isinstance(cond, LocEq):
        return LocEq(mapping.get(cond.loc, cond.loc), cond.value)
    if isinstance(cond, RegEq):
        return cond
    terms = tuple(_rename_condition(t, mapping) for t in cond.terms)
    return And(*terms) if isinstance(cond, And) else Or(*terms)


def rename_locations(test: LitmusTest, mapping=None) -> LitmusTest:
    mapping = mapping or _LOC_MAP
    def rewrite(ins):
        if ins[0] in ("st", "ld"):
            return (ins[0], mapping.get(ins[1], ins[1]), ins[2])
        if ins[0] == "rmw":
            return (ins[0], mapping.get(ins[1], ins[1]), ins[2], ins[3])
        return ins
    return LitmusTest(
        name=test.name,
        description=test.description,
        threads=tuple(
            tuple(rewrite(i) for i in p) for p in test.threads
        ),
        forbidden=_rename_condition(test.forbidden, mapping),
    )


def permute_threads(test: LitmusTest, perm) -> LitmusTest:
    return LitmusTest(
        name=test.name,
        description=test.description,
        threads=tuple(test.threads[i] for i in perm),
        forbidden=test.forbidden,
    )


def _tuned(chip):
    return TunedStress(shipped_params(chip.short_name))


class TestLocationRenaming:
    """Same layout order, new names: bit-identical on every backend."""

    @pytest.mark.parametrize("name", ["MP", "SB", "2+2W", "WRC", "3.LB"])
    def test_direct_backend_invariant(self, name, k20):
        d = 2 * k20.patch_size
        test = get_test(name)
        renamed = rename_locations(test)
        assert renamed.locations != test.locations
        a = run_litmus(k20, test, d, _tuned(k20), 200, seed=7)
        b = run_litmus(k20, renamed, d, _tuned(k20), 200, seed=7)
        assert a.weak == b.weak

    @pytest.mark.parametrize("name", ["MP", "SB", "2+2W", "IRIW"])
    def test_vector_backend_invariant(self, name, k20):
        d = 2 * k20.patch_size
        test = get_test(name)
        a = run_litmus_vector(k20, test, d, _tuned(k20), 4096, seed=7)
        b = run_litmus_vector(
            k20, rename_locations(test), d, _tuned(k20), 4096, seed=7
        )
        assert a.weak == b.weak

    @pytest.mark.parametrize("name", ["MP", "SB"])
    def test_engine_backend_invariant(self, name, k20):
        d = 2 * k20.patch_size
        test = get_test(name)
        a = run_litmus_compiled(k20, test, d, _tuned(k20), 24, seed=7)
        b = run_litmus_compiled(
            k20, rename_locations(test), d, _tuned(k20), 24, seed=7
        )
        assert a.weak == b.weak


class TestThreadRenaming:
    """Permuted thread tuples: statistically unchanged rates."""

    @pytest.mark.slow
    def test_vector_backend_rates_unchanged(self, k20):
        d = 2 * k20.patch_size
        spec = _tuned(k20)
        n = 8192
        samples = []
        for name in ("MP", "SB", "2+2W", "WRC", "IRIW"):
            test = get_test(name)
            reversed_ = permute_threads(
                test, range(test.n_threads - 1, -1, -1)
            )
            a = run_litmus_vector(k20, test, d, spec, n, seed=7)
            b = run_litmus_vector(k20, reversed_, d, spec, n, seed=7)
            samples.append((name, (a.weak, n, b.weak, n)))
        verdict = parity_family(samples, alpha=0.001)
        assert verdict.passed, (
            f"thread renaming shifted rates: {verdict.rejections}"
        )

    @pytest.mark.slow
    def test_direct_backend_rates_unchanged(self, k20):
        d = 2 * k20.patch_size
        spec = _tuned(k20)
        n = 800
        samples = []
        for name in ("SB", "IRIW"):
            test = get_test(name)
            reversed_ = permute_threads(
                test, range(test.n_threads - 1, -1, -1)
            )
            a = run_litmus(k20, test, d, spec, n, seed=7)
            b = run_litmus(k20, reversed_, d, spec, n, seed=7)
            samples.append((name, (a.weak, n, b.weak, n)))
        verdict = parity_family(samples, alpha=0.001)
        assert verdict.passed, (
            f"thread renaming shifted rates: {verdict.rejections}"
        )

    def test_engine_backend_rates_unchanged(self, k20):
        d = 2 * k20.patch_size
        test = get_test("SB")
        swapped = permute_threads(test, (1, 0))
        n = 24
        a = run_litmus_compiled(k20, test, d, _tuned(k20), n, seed=7)
        b = run_litmus_compiled(k20, swapped, d, _tuned(k20), n, seed=7)
        verdict = parity_family(
            [("SB", (a.weak, n, b.weak, n))], alpha=0.001
        )
        assert verdict.passed

    def test_identity_permutation_is_bit_identical(self, k20):
        test = get_test("WRC")
        same = permute_threads(test, range(test.n_threads))
        a = run_litmus_vector(k20, test, 128, _tuned(k20), 4096, seed=3)
        b = run_litmus_vector(k20, same, 128, _tuned(k20), 4096, seed=3)
        assert a.weak == b.weak
