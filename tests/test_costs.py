"""Tests for the fence cost study (paper Sec. 6)."""

import pytest

from repro.apps import get_application
from repro.chips import get_chip
from repro.costs import (
    CostPoint,
    FencingStrategy,
    figure5_points,
    measure_cost,
    overhead_summary,
)
from repro.costs.measure import fences_for
from repro.errors import CostMeasurementError, ReproError
from repro.hardening.fence_sets import all_fences


class _FakeResult:
    """The engine-result shape ``measure_cost`` reads."""

    runtime_ticks = 1000
    ticks = 1000
    fence_stall_cycles = 0


class _FakeRun:
    def __init__(self, erroneous):
        self.erroneous = erroneous
        self.result = _FakeResult()


class _SeedRecordingBatch:
    """ApplicationBatch stand-in that logs every seed it is run with."""

    recorded: dict[tuple[str, str], list[int]] = {}

    def __init__(self, app, chip, **kwargs):
        self._key = (app.name, chip.short_name)
        self.recorded.setdefault(self._key, [])

    def run(self, seed, fence_sites=None):
        self.recorded[self._key].append(seed)
        return _FakeRun(erroneous=False)


class _AlwaysErroneousBatch:
    def __init__(self, app, chip, **kwargs):
        pass

    def run(self, seed, fence_sites=None):
        return _FakeRun(erroneous=True)


class TestSeedDerivation:
    def test_every_cell_draws_a_distinct_stream(self, monkeypatch):
        """Seeds must depend on app *and* chip: before the fix every
        (app, chip) cell at one seed replayed an identical stream."""
        import repro.costs.measure as measure_module

        _SeedRecordingBatch.recorded = {}
        monkeypatch.setattr(
            measure_module, "ApplicationBatch", _SeedRecordingBatch
        )
        cells = [
            (get_application(a), get_chip(c))
            for a in ("cbe-dot", "cbe-ht")
            for c in ("980", "C2050")
        ]
        for app, chip in cells:
            measure_cost(app, chip, FencingStrategy.NONE, runs=4, seed=0)
        streams = [
            tuple(_SeedRecordingBatch.recorded[(a.name, c.short_name)])
            for a, c in cells
        ]
        assert len(set(streams)) == len(streams)

    def test_strategies_draw_distinct_streams(self, monkeypatch):
        import repro.costs.measure as measure_module

        _SeedRecordingBatch.recorded = {}
        monkeypatch.setattr(
            measure_module, "ApplicationBatch", _SeedRecordingBatch
        )
        app, chip = get_application("cbe-dot"), get_chip("980")
        seen = []
        for strategy in FencingStrategy:
            _SeedRecordingBatch.recorded = {}
            measure_cost(app, chip, strategy, runs=4, seed=0)
            seen.append(
                tuple(_SeedRecordingBatch.recorded[("cbe-dot", "980")])
            )
        assert len(set(seen)) == len(seen)


class TestRetryCap:
    def test_exhausted_retries_raise_domain_error(self, monkeypatch):
        import repro.costs.measure as measure_module

        monkeypatch.setattr(
            measure_module, "ApplicationBatch", _AlwaysErroneousBatch
        )
        app, chip = get_application("cbe-dot"), get_chip("980")
        with pytest.raises(CostMeasurementError) as excinfo:
            measure_cost(app, chip, FencingStrategy.NONE, runs=3, seed=0)
        assert excinfo.value.app == "cbe-dot"
        assert excinfo.value.chip == "980"
        assert excinfo.value.attempts == 12
        assert excinfo.value.passing == 0
        # Classifiable at the library's API boundary.
        assert isinstance(excinfo.value, ReproError)


class TestFencesFor:
    def test_none_strategy_is_empty(self):
        app = get_application("cbe-dot")
        assert fences_for(app, FencingStrategy.NONE) == frozenset()

    def test_conservative_is_all_sites(self):
        app = get_application("cbe-dot")
        assert fences_for(app, FencingStrategy.CONSERVATIVE) == \
            all_fences(app)

    def test_empirical_defaults_to_required(self):
        app = get_application("cbe-dot")
        assert fences_for(app, FencingStrategy.EMPIRICAL) == \
            app.required_sites()

    def test_empirical_override(self):
        app = get_application("cbe-dot")
        custom = frozenset({app.sites()[0]})
        assert fences_for(app, FencingStrategy.EMPIRICAL, custom) == custom


class TestMeasureCost:
    @pytest.fixture(scope="class")
    def measurements(self):
        app = get_application("cbe-dot")
        chip = get_chip("K20")
        return {
            s: measure_cost(app, chip, s, runs=6, seed=3)
            for s in FencingStrategy
        }

    def test_runtime_positive(self, measurements):
        for m in measurements.values():
            assert m.runtime_ms > 0

    def test_fences_never_speed_up(self, measurements):
        # Paper Fig. 5: no points below the diagonal.
        base = measurements[FencingStrategy.NONE]
        cons = measurements[FencingStrategy.CONSERVATIVE]
        assert cons.runtime_ms > base.runtime_ms

    def test_conservative_costs_more_than_empirical(self, measurements):
        emp = measurements[FencingStrategy.EMPIRICAL]
        cons = measurements[FencingStrategy.CONSERVATIVE]
        assert cons.runtime_ms > emp.runtime_ms

    def test_energy_available_on_k20(self, measurements):
        assert measurements[FencingStrategy.NONE].energy_j is not None

    def test_energy_unavailable_without_sensors(self):
        app = get_application("cbe-dot")
        m = measure_cost(
            app, get_chip("980"), FencingStrategy.NONE, runs=3, seed=1
        )
        assert m.energy_j is None

    def test_overhead_helpers(self, measurements):
        base = measurements[FencingStrategy.NONE]
        cons = measurements[FencingStrategy.CONSERVATIVE]
        assert cons.overhead_vs(base) > 0
        assert cons.energy_overhead_vs(base) > 0


class TestFigure5:
    @pytest.fixture(scope="class")
    def points(self):
        apps = [get_application(n) for n in ("cbe-dot", "cbe-ht")]
        chips = [get_chip("K20"), get_chip("C2075")]
        return figure5_points(apps, chips, runs=5, seed=4)

    def test_point_count(self, points):
        # 2 apps x 2 chips x 2 fencing strategies.
        assert len(points) == 8

    def test_no_points_below_diagonal(self, points):
        for p in points:
            assert p.fenced_runtime_ms >= p.baseline_runtime_ms * 0.98

    def test_summary_shape(self, points):
        summary = overhead_summary(points)
        assert set(summary) == {"emp fences", "cons fences"}
        assert (
            summary["cons fences"]["median runtime overhead %"]
            > summary["emp fences"]["median runtime overhead %"]
        )

    def test_energy_overhead_tracks_runtime(self, points):
        # Paper: runtime costs correspond closely to energy costs.
        for p in points:
            e = p.energy_overhead_pct
            if e is None:
                continue
            r = p.runtime_overhead_pct
            assert (e > 0) == (r > 0) or abs(r) < 5

    def test_cost_point_properties(self):
        p = CostPoint(
            chip="K20", app="x", strategy=FencingStrategy.EMPIRICAL,
            baseline_runtime_ms=10.0, fenced_runtime_ms=15.0,
            baseline_energy_j=1.0, fenced_energy_j=1.5,
        )
        assert p.runtime_overhead_pct == pytest.approx(50.0)
        assert p.energy_overhead_pct == pytest.approx(50.0)
