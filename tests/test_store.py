"""Tests for the persistent run ledger (repro.store).

Covers the satellite requirements of the persistence subsystem: JSONL
round-trips of every record kind, atomicity under a killed writer
(truncated final line tolerated, anything worse refused), and resume
parity — an interrupted-then-resumed campaign must be bit-identical to
a cold serial run and to a ``jobs=2`` run.
"""

import dataclasses
import json

import pytest

from repro.apps import get_application
from repro.costs.measure import CostMeasurement, FencingStrategy
from repro.errors import (
    LedgerConflictError,
    LedgerCorruptError,
    LedgerError,
    ReproError,
)
from repro.hardening.insertion import InsertionResult
from repro.litmus.results import LitmusResult
from repro.parallel import CellShard, ParallelConfig, plan, run_units
from repro.reporting.experiments import open_ledger, run_experiment
from repro.scale import SMOKE
from repro.store import (
    RunLedger,
    RunRecord,
    campaign_cell_key,
    campaign_cells,
    campaign_shard_key,
    content_key,
    cost_key,
    cost_measurements,
    decode,
    insertion_key,
    insertion_results,
    litmus_key,
    litmus_results,
    stress_token,
)
from repro.store import records as store_records
from repro.stress.strategies import (
    FixedLocationStress,
    NoStress,
    TunedStress,
)
from repro.testing.campaign import CampaignCell, run_campaign
from repro.tuning import shipped_params

TINY = dataclasses.replace(SMOKE, campaign_runs=6)

LITMUS = LitmusResult(
    test="MP", distance=64, weak=7, executions=200, location=(0, 64),
    backend="engine",
)
CELL = CampaignCell(
    chip="K20", app="cbe-dot", environment="sys-str+", errors=3,
    timeouts=1, runs=24,
)
SHARD = CellShard(cell=0, start=4, stop=8, errors=2, timeouts=0)
INSERTION = InsertionResult(
    chip="Titan", app="cbe-ht", initial_fences=5,
    reduced=frozenset({"a", "b"}), iterations_used=64, check_runs=321,
    wall_seconds=1.5, converged=False,
)
COST = CostMeasurement(
    chip="K20", app="cbe-dot", strategy=FencingStrategy.CONSERVATIVE,
    runtime_ms=1.25, energy_j=None, runs=30, discarded=2,
)


class TestContentKeys:
    def test_key_fields_in_order(self):
        key = content_key("campaign", "K20", "cbe-dot", "sys-str+",
                          "r24", 7, "engine")
        assert key == "campaign:K20:cbe-dot:sys-str+:r24:s7:engine"

    def test_keys_sanitise_separator_and_spaces(self):
        key = content_key("cost", "K20", "x", "no fences", "r1", 0)
        assert " " not in key and key.count(":") == 6

    def test_distinct_coordinates_distinct_keys(self):
        keys = {
            campaign_cell_key(chip, app, env, runs, seed)
            for chip in ("K20", "Titan")
            for app in ("cbe-dot", "cbe-ht")
            for env in ("sys-str+", "no-str-")
            for runs in (10, 20)
            for seed in (0, 1)
        }
        assert len(keys) == 32

    def test_shard_key_includes_range(self):
        a = campaign_shard_key("K20", "x", "e", 24, 0, 0, 12)
        b = campaign_shard_key("K20", "x", "e", 24, 0, 12, 24)
        assert a != b

    def test_stress_tokens_distinguish_strategies(self):
        tokens = {
            stress_token(NoStress()),
            stress_token(FixedLocationStress((0, 64), ("st", "ld"))),
            stress_token(TunedStress(shipped_params("K20"))),
            stress_token(TunedStress(shipped_params("Titan"))),
        }
        assert len(tokens) == 4

    def test_litmus_key_distinguishes_backend_and_randomise(self):
        base = dict(chip="K20", test="MP", stress="no-str", distance=64,
                    executions=100, seed=0)
        assert litmus_key(**base) != litmus_key(**base, backend="engine")
        assert litmus_key(**base) != litmus_key(**base, randomise=True)


class TestBackendKeying:
    """direct/engine/vector results of one test never collide, and a
    resume never satisfies one backend's work with another's records."""

    _COORDS = dict(chip="K20", test="MP", stress="no-str", distance=64,
                   executions=100, seed=0)

    def test_three_backends_three_keys(self):
        keys = {
            litmus_key(**self._COORDS, backend=b)
            for b in ("direct", "engine", "vector")
        }
        assert len(keys) == 3

    def test_ledger_lookup_isolated_per_backend(self, tmp_path):
        ledger = RunLedger.create(tmp_path / "ledger")
        vector_key = litmus_key(**self._COORDS, backend="vector")
        result = dataclasses.replace(LITMUS, backend="vector")
        ledger.append(
            store_records.encode_litmus(
                vector_key, result, chip="K20", seed=0
            )
        )
        reopened = RunLedger.open(tmp_path / "ledger")
        assert reopened.get(vector_key) is not None
        for other in ("direct", "engine"):
            assert reopened.get(
                litmus_key(**self._COORDS, backend=other)
            ) is None

    def test_decode_preserves_backend_field(self, tmp_path):
        ledger = RunLedger.create(tmp_path / "ledger")
        key = litmus_key(**self._COORDS, backend="vector")
        result = dataclasses.replace(LITMUS, backend="vector")
        ledger.append(store_records.encode_litmus(key, result))
        decoded = decode(RunLedger.open(tmp_path / "ledger").get(key))
        assert decoded.backend == "vector"
        assert decoded == result

    def test_survey_resume_never_crosses_backends(self, tmp_path):
        # A completed vector survey must not satisfy a direct survey's
        # resume: the direct run appends its own records under its own
        # keys instead of reusing the vector ones.
        kwargs = dict(
            scale=TINY, seed=0, chips=("K20",), tests=("MP", "SB")
        )
        run_experiment(
            "survey", out=str(tmp_path / "ledger"),
            backend="vector", **kwargs,
        )
        after_vector = len(RunLedger.open(tmp_path / "ledger"))
        assert after_vector > 0
        run_experiment(
            "survey", resume=str(tmp_path / "ledger"),
            out=str(tmp_path / "ledger"), backend="direct", **kwargs,
        )
        after_direct = len(RunLedger.open(tmp_path / "ledger"))
        assert after_direct == 2 * after_vector

    def test_survey_resume_reuses_same_backend(self, tmp_path):
        kwargs = dict(
            scale=TINY, seed=0, chips=("K20",), tests=("MP",)
        )
        first = run_experiment(
            "survey", out=str(tmp_path / "ledger"),
            backend="vector", **kwargs,
        )
        size = len(RunLedger.open(tmp_path / "ledger"))
        second = run_experiment(
            "survey", resume=str(tmp_path / "ledger"),
            backend="vector", **kwargs,
        )
        assert second == first
        assert len(RunLedger.open(tmp_path / "ledger")) == size


class TestRoundTrip:
    def _ledger(self, tmp_path):
        return RunLedger.create(tmp_path / "ledger")

    def test_litmus_round_trip(self, tmp_path):
        ledger = self._ledger(tmp_path)
        key = litmus_key("K20", "MP", "no-str", 64, 200, 0, "engine")
        ledger.append(store_records.encode_litmus(key, LITMUS))
        reopened = RunLedger.open(tmp_path / "ledger")
        assert decode(reopened.get(key)) == LITMUS

    def test_campaign_cell_round_trip(self, tmp_path):
        ledger = self._ledger(tmp_path)
        key = campaign_cell_key("K20", "cbe-dot", "sys-str+", 24, 0)
        ledger.append(store_records.encode_campaign_cell(key, CELL))
        assert decode(RunLedger.open(ledger.root).get(key)) == CELL

    def test_campaign_shard_round_trip(self, tmp_path):
        ledger = self._ledger(tmp_path)
        key = campaign_shard_key("K20", "cbe-dot", "sys-str+", 24, 0, 4, 8)
        ledger.append(
            store_records.encode_campaign_shard(
                key, "K20", "cbe-dot", "sys-str+", 24, 0, SHARD
            )
        )
        record = RunLedger.open(ledger.root).get(key)
        # Shards re-home onto the resuming run's grid index.
        assert store_records.decode_campaign_shard(record, cell=3) == \
            dataclasses.replace(SHARD, cell=3)

    def test_insertion_round_trip(self, tmp_path):
        ledger = self._ledger(tmp_path)
        key = insertion_key("Titan", "cbe-ht", 40, 32, 4, 0)
        ledger.append(store_records.encode_insertion(key, INSERTION))
        assert decode(RunLedger.open(ledger.root).get(key)) == INSERTION

    def test_cost_round_trip(self, tmp_path):
        ledger = self._ledger(tmp_path)
        key = cost_key("K20", "cbe-dot", "CONSERVATIVE", 30, 0)
        ledger.append(store_records.encode_cost(key, COST))
        assert decode(RunLedger.open(ledger.root).get(key)) == COST

    def test_domain_queries(self, tmp_path):
        ledger = self._ledger(tmp_path)
        ledger.append(
            store_records.encode_litmus(
                litmus_key("K20", "MP", "no-str", 64, 200, 0), LITMUS
            ),
            store_records.encode_campaign_cell(
                campaign_cell_key("K20", "cbe-dot", "sys-str+", 24, 0),
                CELL,
            ),
            store_records.encode_insertion(
                insertion_key("Titan", "cbe-ht", 40, 32, 4, 0), INSERTION
            ),
            store_records.encode_cost(
                cost_key("K20", "cbe-dot", "CONSERVATIVE", 30, 0), COST
            ),
        )
        assert litmus_results(ledger) == [LITMUS]
        assert campaign_cells(ledger) == [CELL]
        assert insertion_results(ledger) == [INSERTION]
        assert cost_measurements(ledger) == [COST]
        assert campaign_cells(ledger, chip="none") == []

    def test_litmus_payload_filters_on_chip_and_seed(self, tmp_path):
        ledger = self._ledger(tmp_path)
        ledger.append(
            store_records.encode_litmus(
                litmus_key("K20", "MP", "no-str", 64, 200, 0), LITMUS,
                chip="K20", seed=0,
            ),
            store_records.encode_litmus(
                litmus_key("Titan", "MP", "no-str", 64, 200, 3), LITMUS,
                chip="Titan", seed=3,
            ),
        )
        assert len(litmus_results(ledger)) == 2
        assert len(litmus_results(ledger, chip="K20")) == 1
        assert len(litmus_results(ledger, chip="Titan", seed=3)) == 1
        assert litmus_results(ledger, chip="C2075") == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            decode(RunRecord(key="k", kind="mystery", payload={}))


class TestLedgerDurability:
    def test_create_then_open(self, tmp_path):
        ledger = RunLedger.create(tmp_path / "led", meta={"note": "x"})
        assert RunLedger.open(tmp_path / "led").manifest["note"] == "x"

    def test_create_refuses_existing(self, tmp_path):
        RunLedger.create(tmp_path / "led")
        with pytest.raises(LedgerError):
            RunLedger.create(tmp_path / "led")

    def test_open_missing_raises(self, tmp_path):
        with pytest.raises(LedgerError):
            RunLedger.open(tmp_path / "absent")

    def test_open_or_create_roundtrips(self, tmp_path):
        first = RunLedger.open_or_create(tmp_path / "led")
        first.append(
            store_records.encode_campaign_cell(
                campaign_cell_key("K20", "a", "e", 5, 0), CELL
            )
        )
        second = RunLedger.open_or_create(tmp_path / "led")
        assert len(second) == 1

    def test_ledger_error_is_repro_error(self, tmp_path):
        with pytest.raises(ReproError):
            RunLedger.open(tmp_path / "absent")

    def test_identical_duplicate_merges_idempotently(self, tmp_path):
        ledger = RunLedger.create(tmp_path / "led")
        key = campaign_cell_key("K20", "a", "e", 5, 0)
        ledger.append(store_records.encode_campaign_cell(key, CELL))
        segments_before = len(list((tmp_path / "led").glob("seg-*.jsonl")))
        # Re-appending the same record (a reassigned lease racing its
        # original holder, a re-run experiment) is a no-op.
        ledger.append(store_records.encode_campaign_cell(key, CELL))
        assert len(ledger) == 1
        segments_after = len(list((tmp_path / "led").glob("seg-*.jsonl")))
        assert segments_after == segments_before
        assert decode(RunLedger.open(ledger.root).get(key)) == CELL

    def test_conflicting_duplicate_key_refused(self, tmp_path):
        ledger = RunLedger.create(tmp_path / "led")
        key = campaign_cell_key("K20", "a", "e", 5, 0)
        ledger.append(store_records.encode_campaign_cell(key, CELL))
        conflicting = dataclasses.replace(CELL, errors=9)
        with pytest.raises(LedgerConflictError):
            ledger.append(
                store_records.encode_campaign_cell(key, conflicting)
            )
        # Nothing durable changed: the original record survives.
        assert decode(RunLedger.open(ledger.root).get(key)) == CELL

    def test_killed_writer_truncated_tail_tolerated(self, tmp_path):
        ledger = RunLedger.create(tmp_path / "led")
        with ledger.writer() as writer:
            for i in range(3):
                writer.write(
                    store_records.encode_campaign_cell(
                        campaign_cell_key("K20", f"app{i}", "e", 5, 0),
                        dataclasses.replace(CELL, app=f"app{i}"),
                    )
                )
        segments = list((tmp_path / "led").glob("seg-*.jsonl"))
        assert len(segments) == 1
        # Simulate a writer killed mid-record: chop into the last line.
        raw = segments[0].read_bytes()
        segments[0].write_bytes(raw[:-10])
        survivors = RunLedger.open(tmp_path / "led")
        assert len(survivors) == 2
        assert campaign_cell_key("K20", "app1", "e", 5, 0) in survivors
        assert campaign_cell_key("K20", "app2", "e", 5, 0) not in survivors

    def test_mid_file_corruption_refused(self, tmp_path):
        ledger = RunLedger.create(tmp_path / "led")
        with ledger.writer() as writer:
            for i in range(3):
                writer.write(
                    store_records.encode_campaign_cell(
                        campaign_cell_key("K20", f"app{i}", "e", 5, 0),
                        CELL,
                    )
                )
        segment = next((tmp_path / "led").glob("seg-*.jsonl"))
        lines = segment.read_text().splitlines()
        lines[1] = lines[1][:-5] + "@@@"
        segment.write_text("\n".join(lines) + "\n")
        with pytest.raises(LedgerCorruptError):
            RunLedger.open(tmp_path / "led")

    def test_complete_final_line_with_bad_json_refused(self, tmp_path):
        # A *complete* line (newline-terminated) that does not parse is
        # corruption, not a killed writer.
        ledger = RunLedger.create(tmp_path / "led")
        segment = ledger.root / "seg-000001.jsonl"
        segment.write_text('{"key": "k", "kind": "campaign"\n')
        with pytest.raises(LedgerCorruptError):
            RunLedger.open(tmp_path / "led")

    def test_empty_writer_leaves_no_segment(self, tmp_path):
        ledger = RunLedger.create(tmp_path / "led")
        with ledger.writer():
            pass
        assert list((tmp_path / "led").glob("seg-*.jsonl")) == []

    def test_append_is_atomic_segment(self, tmp_path):
        ledger = RunLedger.create(tmp_path / "led")
        ledger.append(
            store_records.encode_campaign_cell(
                campaign_cell_key("K20", "a", "e", 5, 0), CELL
            )
        )
        segments = list((tmp_path / "led").glob("seg-*.jsonl"))
        assert len(segments) == 1
        assert not list((tmp_path / "led").glob("*.tmp"))

    def test_bad_manifest_format_refused(self, tmp_path):
        RunLedger.create(tmp_path / "led")
        manifest = tmp_path / "led" / "manifest.json"
        manifest.write_text(json.dumps({"format": 999}))
        with pytest.raises(LedgerError):
            RunLedger.open(tmp_path / "led")


class TestLedgerMerge:
    """Content-key merge semantics backing the distributed ingest path."""

    def _record(self, errors=3):
        return store_records.encode_campaign_cell(
            campaign_cell_key("K20", "a", "e", 5, 0),
            dataclasses.replace(CELL, errors=errors),
        )

    def test_ingest_same_records_twice_writes_zero(self, tmp_path):
        ledger = RunLedger.create(tmp_path / "led")
        assert ledger.ingest([self._record()]) == 1
        assert ledger.ingest([self._record()]) == 0
        assert len(ledger) == 1

    def test_ingest_conflicting_payload_refused(self, tmp_path):
        ledger = RunLedger.create(tmp_path / "led")
        ledger.ingest([self._record()])
        with pytest.raises(LedgerConflictError):
            ledger.ingest([self._record(errors=9)])
        # The refusal left the original record untouched on disk.
        reopened = RunLedger.open(tmp_path / "led")
        cell = store_records.decode_campaign_cell(
            reopened.get(campaign_cell_key("K20", "a", "e", 5, 0))
        )
        assert cell.errors == 3

    def test_overlapping_shards_from_different_jobs_coexist(
        self, tmp_path, k20
    ):
        """Two runs of the same grid at different ``--jobs`` produce
        shard records with overlapping run ranges under *different*
        content keys; merging their ledgers must not conflict, and a
        resume over the merged ledger stays bit-identical."""
        args = _campaign_args(k20)
        cold = run_campaign(**args)

        serial = RunLedger.create(tmp_path / "a")
        run_campaign(**args, ledger=serial)
        sharded = RunLedger.create(tmp_path / "b")
        run_campaign(
            **args, parallel=ParallelConfig(jobs=2), ledger=sharded
        )

        merged = RunLedger.create(tmp_path / "merged")
        merged.ingest(serial.records())
        # The jobs=2 cells are byte-identical (skipped); its shards
        # cover the same run ranges under different keys (written).
        written = merged.ingest(sharded.records())
        assert written == sharded.counts_by_kind()["campaign-shard"]
        assert run_campaign(**args, ledger=merged) == cold


def _campaign_args(k20):
    return dict(
        chips=[k20],
        apps=[get_application("cbe-dot"), get_application("cbe-ht")],
        environments=["no-str-", "sys-str+"],
        scale=TINY,
        seed=3,
    )


class TestResumeParity:
    """Interrupted-then-resumed statistics must match a cold run exactly."""

    def test_resumed_campaign_matches_cold_and_jobs2(
        self, tmp_path, monkeypatch, k20
    ):
        args = _campaign_args(k20)
        cold = run_campaign(**args)

        import repro.testing.campaign as campaign_module

        real_submit_units = campaign_module.submit_units

        def interrupting_submit_units(units, config, ledger, submit=None):
            count = 0

            def interrupting_submit(batch, cfg, on_record):
                def counting(index, record):
                    nonlocal count
                    if on_record is not None:
                        on_record(index, record)
                    count += 1
                    if count >= 2:
                        raise KeyboardInterrupt

                return run_units(batch, cfg, counting)

            return real_submit_units(
                units, config, ledger, interrupting_submit
            )

        ledger = RunLedger.create(tmp_path / "led")
        monkeypatch.setattr(
            campaign_module, "submit_units", interrupting_submit_units
        )
        with pytest.raises(KeyboardInterrupt):
            run_campaign(**args, ledger=ledger)
        monkeypatch.setattr(
            campaign_module, "submit_units", real_submit_units
        )

        # The kill landed mid-campaign: some shards persisted, no cell
        # finished, and the resumed run completes bit-identically.
        interrupted = RunLedger.open(tmp_path / "led")
        assert interrupted.counts_by_kind().get("campaign-shard") == 2
        resumed = run_campaign(**args, ledger=interrupted)
        assert resumed == cold

        # A jobs=2 run over a fresh ledger also matches.
        parallel_ledger = RunLedger.create(tmp_path / "led2")
        sharded = run_campaign(
            **args, parallel=ParallelConfig(jobs=2), ledger=parallel_ledger
        )
        assert sharded == cold

        # And resuming *across* worker counts is exact too: a serial
        # resume over the jobs=2 ledger decodes the same cells.
        assert run_campaign(**args, ledger=parallel_ledger) == cold

    def test_complete_ledger_needs_zero_simulation(
        self, tmp_path, monkeypatch, k20
    ):
        args = _campaign_args(k20)
        ledger = RunLedger.create(tmp_path / "led")
        cells = run_campaign(**args, ledger=ledger)

        def explode(unit):  # pragma: no cover - must never run
            raise AssertionError("ledger-complete run simulated a shard")

        monkeypatch.setitem(plan._EXECUTORS, "campaign-shard", explode)
        assert run_campaign(**args, ledger=ledger) == cells

    def test_mid_cell_shard_records_shrink_the_resume(
        self, tmp_path, monkeypatch, k20
    ):
        """Only the runs not covered by checkpointed shards re-execute."""
        args = _campaign_args(k20)
        cold = run_campaign(**args)
        ledger = RunLedger.create(tmp_path / "led")

        import repro.testing.campaign as campaign_module

        real_execute = campaign_module.execute_campaign_unit
        executed: list[tuple[str, int, int]] = []

        def recording_execute(unit):
            executed.append(
                (unit.spec["app"], unit.spec["start"], unit.spec["stop"])
            )
            return real_execute(unit)

        # Pre-checkpoint runs [0, 3) of the first cell by hand.
        app = args["apps"][0]
        pre_unit = campaign_module.campaign_unit(
            k20, app, _env(k20, "no-str-"), TINY.campaign_runs, 3, 0, 3
        )
        ledger.append(real_execute(pre_unit))
        monkeypatch.setitem(
            plan._EXECUTORS, "campaign-shard", recording_execute
        )
        resumed = run_campaign(**args, ledger=ledger)
        assert resumed == cold
        # The pre-checkpointed range was skipped...
        assert (app.name, 0, 3) not in executed
        # ...and its complement ran as one shard.
        assert (app.name, 3, TINY.campaign_runs) in executed


def _env(chip, name):
    from repro.stress.environment import standard_environments

    envs = {
        e.name: e
        for e in standard_environments(shipped_params(chip.short_name))
    }
    return envs[name]


class TestLedgeredExperiments:
    def test_table5_interrupt_resume_byte_identical_and_zero_sim(
        self, tmp_path, monkeypatch
    ):
        """The acceptance criterion: an interrupted ``--out`` campaign
        resumed with ``--resume`` renders byte-identical table5 output,
        and the complete ledger re-renders with zero simulation runs."""
        kwargs = dict(
            scale=TINY, seed=5, chips=("K20",),
            environments=("no-str-", "sys-str+"),
        )
        cold = run_experiment("table5", **kwargs)

        import repro.testing.campaign as campaign_module

        real_submit_units = campaign_module.submit_units

        def interrupting_submit_units(units, config, ledger, submit=None):
            count = 0

            def interrupting_submit(batch, cfg, on_record):
                def counting(index, record):
                    nonlocal count
                    if on_record is not None:
                        on_record(index, record)
                    count += 1
                    if count >= 3:
                        raise KeyboardInterrupt

                return run_units(batch, cfg, counting)

            return real_submit_units(
                units, config, ledger, interrupting_submit
            )

        out = str(tmp_path / "ledger")
        monkeypatch.setattr(
            campaign_module, "submit_units", interrupting_submit_units
        )
        with pytest.raises(KeyboardInterrupt):
            run_experiment("table5", **kwargs, out=out)
        monkeypatch.setattr(
            campaign_module, "submit_units", real_submit_units
        )

        resumed = run_experiment("table5", **kwargs, resume=out)
        assert resumed == cold

        def explode(unit):  # pragma: no cover - must never run
            raise AssertionError("complete ledger re-simulated a shard")

        monkeypatch.setitem(plan._EXECUTORS, "campaign-shard", explode)
        assert run_experiment("table5", **kwargs, resume=out) == cold

    def test_survey_renders_from_ledger_without_runs(
        self, tmp_path, monkeypatch
    ):
        kwargs = dict(
            scale=SMOKE, seed=3, chips=("K20",), tests=("MP", "SB"),
        )
        out = str(tmp_path / "ledger")
        first = run_experiment("survey", **kwargs, out=out)

        import repro.litmus.units  # noqa: F401 - registers the executor

        def explode(unit):  # pragma: no cover - must never run
            raise AssertionError("survey re-ran a ledgered litmus test")

        monkeypatch.setitem(plan._EXECUTORS, "litmus", explode)
        assert run_experiment("survey", **kwargs, resume=out) == first

    def test_open_ledger_rejects_mismatched_out_resume(self, tmp_path):
        # LedgerError (a ReproError) so every CLI subcommand reports it
        # as a clean `gpu-wmm: error:` line, not a traceback.
        RunLedger.create(tmp_path / "a")
        with pytest.raises(LedgerError):
            open_ledger(out=str(tmp_path / "a"), resume=str(tmp_path / "b"))

    def test_open_ledger_same_dir_both_flags(self, tmp_path):
        RunLedger.create(tmp_path / "a")
        ledger = open_ledger(out=str(tmp_path / "a"),
                             resume=str(tmp_path / "a"))
        assert isinstance(ledger, RunLedger)

    def test_open_ledger_none(self):
        assert open_ledger() is None
