"""Tests for the tuning pipeline (paper Sec. 3)."""

import dataclasses

import pytest

from repro.chips import get_chip
from repro.scale import SMOKE
from repro.stress.sequences import format_sequence
from repro.tuning import (
    critical_patch_size,
    find_patches,
    scan_patches,
    score_spreads,
    select_sequence,
    select_spread,
    shipped_params,
)
from repro.tuning.access import SequenceScores, pareto_front
from repro.tuning.patches import PatchScan

TINY = dataclasses.replace(
    SMOKE,
    max_distance=3 * 32,
    distance_step=32,
    max_location=128,
    location_step=16,
    executions=32,
)


class TestFindPatches:
    LOCS = tuple(range(0, 160, 16))

    def test_single_patch(self):
        row = [0, 0, 5, 6, 0, 0, 0, 0, 0, 0]
        assert find_patches(row, self.LOCS, epsilon=1) == [(32, 32)]

    def test_multiple_patches(self):
        row = [5, 5, 0, 0, 9, 8, 7, 0, 0, 4]
        patches = find_patches(row, self.LOCS, epsilon=1)
        assert (0, 32) in patches
        assert (64, 48) in patches

    def test_trailing_patch_extends_to_grid_end(self):
        row = [0] * 8 + [5, 5]
        assert find_patches(row, self.LOCS, epsilon=1) == [(128, 32)]

    def test_single_dip_bridged(self):
        row = [0, 0, 5, 1, 6, 0, 0, 0, 0, 0]
        assert find_patches(row, self.LOCS, epsilon=1) == [(32, 48)]

    def test_empty_row_no_patches(self):
        assert find_patches([0] * 10, self.LOCS, epsilon=1) == []

    def test_threshold_is_strict(self):
        row = [1] * 10
        assert find_patches(row, self.LOCS, epsilon=1) == []

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            find_patches([1, 2], self.LOCS, epsilon=1)


class TestCriticalPatchSize:
    def test_synthetic_agreement(self):
        locs = tuple(range(0, 128, 16))
        scan = PatchScan(
            chip="x", executions=100, distances=(0, 64), locations=locs
        )
        for test in ("MP", "LB", "SB"):
            for d in (0, 64):
                for l in locs:
                    # one hot 32-word patch at 64..96 for d=64
                    hot = d == 64 and 64 <= l < 96
                    scan.counts[(test, d, l)] = 50 if hot else 0
        size, per_test = critical_patch_size(scan, epsilon=5)
        assert size == 32
        assert per_test == {"MP": 32, "LB": 32, "SB": 32}

    def test_silent_test_excluded_from_agreement(self):
        # The paper's Maxwell case: MP shows no patches; LB/SB agree.
        locs = tuple(range(0, 256, 16))
        scan = PatchScan(
            chip="980x", executions=100, distances=(128,), locations=locs
        )
        for test in ("MP", "LB", "SB"):
            for l in locs:
                hot = test != "MP" and 64 <= l < 128
                scan.counts[(test, 128, l)] = 60 if hot else 0
        size, per_test = critical_patch_size(scan, epsilon=5)
        assert size == 64
        assert per_test["MP"] is None

    def test_no_patches_anywhere_raises(self):
        scan = PatchScan(
            chip="x", executions=10, distances=(0,), locations=(0, 16)
        )
        scan.counts.update({("MP", 0, 0): 0, ("MP", 0, 16): 0})
        with pytest.raises(ValueError):
            critical_patch_size(scan, epsilon=1)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["Titan", "K20", "C2075", "980"])
    def test_rediscovers_hidden_patch_size(self, name):
        chip = get_chip(name)
        # Maxwell's MP silence (paper Sec. 3.2) leaves the estimate to
        # LB/SB, which needs a slightly larger sample to stabilise.
        scale = (
            dataclasses.replace(SMOKE, executions=64)
            if name == "980"
            else SMOKE
        )
        scan = scan_patches(chip, scale, seed=3)
        size, _per_test = critical_patch_size(scan)
        assert size == chip.patch_size


class TestSequenceSelection:
    def _scores(self, table):
        scores = SequenceScores(chip="x", tests=("MP", "LB", "SB"))
        scores.scores = table
        return scores

    def test_pareto_front_excludes_dominated(self):
        a, b = ("ld",), ("st",)
        scores = self._scores({
            a: {"MP": 10, "LB": 10, "SB": 10},
            b: {"MP": 1, "LB": 1, "SB": 1},
        })
        assert pareto_front(scores) == [a]

    def test_incomparable_both_on_front(self):
        a, b = ("ld",), ("st",)
        scores = self._scores({
            a: {"MP": 10, "LB": 0, "SB": 5},
            b: {"MP": 0, "LB": 10, "SB": 5},
        })
        assert set(pareto_front(scores)) == {a, b}

    def test_tie_break_by_two_of_three(self):
        a, b = ("ld",), ("st",)
        scores = self._scores({
            a: {"MP": 10, "LB": 9, "SB": 1},
            b: {"MP": 9, "LB": 10, "SB": 2},
        })
        # b beats a on LB and SB: majority winner.
        assert select_sequence(scores) == b

    def test_single_front_returned_directly(self):
        a = ("ld", "st")
        scores = self._scores({a: {"MP": 1, "LB": 1, "SB": 1}})
        assert select_sequence(scores) == a

    def test_table3_rows_shape(self):
        a, b = ("ld",), ("st",)
        scores = self._scores({
            a: {"MP": 10, "LB": 9, "SB": 1},
            b: {"MP": 9, "LB": 10, "SB": 2},
        })
        rows = scores.table3_rows(top=1, bottom=1)
        assert set(rows) == {"MP", "LB", "SB"}
        assert rows["MP"][0]["rank"] == 1


class TestSpreadSelection:
    @pytest.mark.slow
    @pytest.mark.parametrize("name", ["K20", "980"])
    def test_spread_two_is_optimal(self, name):
        # Paper Tab. 2: spread 2 on every chip.
        chip = get_chip(name)
        scale = dataclasses.replace(
            SMOKE, max_spread=12, spread_executions=96,
            spread_distance_step=32, max_distance=192,
        )
        scores = score_spreads(
            chip, chip.patch_size, chip.best_sequence, scale, seed=6
        )
        assert select_spread(scores) == 2

    def test_series_shape(self, k20):
        scale = dataclasses.replace(
            SMOKE, max_spread=3, spread_executions=8,
            spread_distance_step=96,
        )
        scores = score_spreads(k20, 32, ("ld", "st"), scale, seed=0)
        series = scores.series("MP")
        assert [m for m, _s in series] == [1, 2, 3]


class TestShippedParams:
    @pytest.mark.parametrize(
        "name,seq",
        [
            ("980", "ld4 st"),
            ("K5200", "ld3 st ld"),
            ("Titan", "ld st2 ld"),
            ("K20", "ld st2 ld"),
            ("770", "st2 ld2"),
            ("C2075", "ld st"),
            ("C2050", "ld st"),
        ],
    )
    def test_matches_paper_table2(self, name, seq):
        config = shipped_params(name)
        assert format_sequence(config.sequence) == seq
        assert config.spread == 2

    def test_fermi_sequences_match(self):
        assert shipped_params("C2075").sequence == \
            shipped_params("C2050").sequence

    def test_titan_k20_sequences_match(self):
        # Paper: Titan and K20 share ld st2 ld, a rotation of 770's
        # st2 ld2.
        assert shipped_params("Titan").sequence == \
            shipped_params("K20").sequence
