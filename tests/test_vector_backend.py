"""Tests for the vectorized mega-batch backend and its statistical oracle.

The vector backend (:mod:`repro.litmus.vector`) is deliberately not
draw-identical to the scalar core, so its correctness case is built from
three statistical pillars plus the usual mechanical contracts:

* **SC soundness** — all 16 registry tests stay silent on the ``sc-ref``
  chip: no batch size, stress level or seed may produce a forbidden
  outcome where sequential consistency forbids it.
* **Weak-rate parity** — at fixed seeds, per (test, chip, environment),
  the vector backend's weak rate and the direct backend's weak rate are
  indistinguishable under a two-sided two-proportion test at α = 0.001
  with Bonferroni correction across the family
  (:mod:`repro.testing.stats`).
* **Fence ordering** — fenced variants show lower weak rates than their
  unfenced bases on the vector backend too, and fully fenced or
  coherence tests stay silent.
* **Mechanics** — ``backend="vector"`` tagging, bit-identical repeats,
  serial/sharded equality, ragged final batches, and the same
  too-many-threads validation as the scalar runners.
"""

import pytest

from repro.chips import SC_REFERENCE, get_chip
from repro.litmus import (
    ALL_TESTS,
    BACKENDS,
    FENCED_VARIANTS,
    LitmusTest,
    get_test,
    run_litmus,
    run_litmus_vector,
)
from repro.litmus.ir import LocEq, st
from repro.parallel import ParallelConfig
from repro.stress.strategies import NoStress, TunedStress
from repro.testing.stats import (
    bonferroni_alpha,
    normal_isf,
    normal_sf,
    parity_family,
    two_proportion_test,
    wilson_interval,
)
from repro.tuning.pipeline import shipped_params

_names = [t.name for t in ALL_TESTS]

#: Sample sizes for the parity pillar: the direct backend is the slow
#: reference (hundreds of executions each), the vector backend is cheap
#: at mega-batch granularity.
_N_DIRECT = 1500
_N_VECTOR = 8192


def _tuned(chip):
    return TunedStress(shipped_params(chip.short_name))


# ----------------------------------------------------------------------
# the statistical toolbox itself
# ----------------------------------------------------------------------
class TestStats:
    def test_identical_samples_never_reject(self):
        t = two_proportion_test(50, 1000, 50, 1000)
        assert t.z == 0.0
        assert t.p_value == 1.0
        assert not t.rejects(0.05)

    def test_grossly_different_samples_reject(self):
        t = two_proportion_test(500, 1000, 100, 1000)
        assert abs(t.z) > 10
        assert t.rejects(1e-6)

    def test_z_sign_follows_rate_difference(self):
        assert two_proportion_test(60, 100, 40, 100).z > 0
        assert two_proportion_test(40, 100, 60, 100).z < 0

    def test_degenerate_pool_reports_unity_p(self):
        assert two_proportion_test(0, 50, 0, 80).p_value == 1.0
        assert two_proportion_test(50, 50, 80, 80).p_value == 1.0

    def test_two_proportion_validates_inputs(self):
        with pytest.raises(ValueError):
            two_proportion_test(1, 0, 1, 10)
        with pytest.raises(ValueError):
            two_proportion_test(11, 10, 1, 10)

    def test_normal_tail_round_trip(self):
        for p in (0.5, 0.1, 0.025, 1e-3, 1e-6):
            assert normal_sf(normal_isf(p)) == pytest.approx(p, rel=1e-9)
        # The classic two-sided 5% quantile.
        assert normal_isf(0.025) == pytest.approx(1.959964, abs=1e-5)

    def test_wilson_interval_contains_point_estimate(self):
        lo, hi = wilson_interval(30, 200)
        assert lo < 30 / 200 < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_wilson_interval_behaves_at_extremes(self):
        lo, hi = wilson_interval(0, 40)
        assert lo == pytest.approx(0.0, abs=1e-12)
        assert 0.0 < hi < 0.15
        lo, hi = wilson_interval(40, 40)
        assert 0.85 < lo < 1.0
        assert hi == pytest.approx(1.0, abs=1e-12)

    def test_wilson_interval_narrows_with_samples(self):
        lo1, hi1 = wilson_interval(10, 100)
        lo2, hi2 = wilson_interval(1000, 10000)
        assert hi2 - lo2 < hi1 - lo1

    def test_bonferroni(self):
        assert bonferroni_alpha(0.05, 10) == pytest.approx(0.005)
        with pytest.raises(ValueError):
            bonferroni_alpha(0.05, 0)

    def test_parity_family_reports_rejections(self):
        verdict = parity_family(
            [
                ("same", (50, 1000, 52, 1000)),
                ("off", (400, 1000, 100, 1000)),
            ],
            alpha=0.001,
        )
        assert not verdict.passed
        assert verdict.rejections == ("off",)
        assert verdict.worst[0] == "off"
        assert verdict.per_comparison_alpha == pytest.approx(0.0005)

    def test_parity_family_passes_clean_families(self):
        verdict = parity_family(
            [(f"c{i}", (50 + i, 1000, 50, 1000)) for i in range(8)]
        )
        assert verdict.passed
        assert verdict.rejections == ()


# ----------------------------------------------------------------------
# pillar 1: SC soundness on the vector backend
# ----------------------------------------------------------------------
class TestSCSoundnessVector:
    @pytest.mark.parametrize("test", ALL_TESTS, ids=_names)
    def test_sc_reference_never_weak(self, test):
        result = run_litmus_vector(
            SC_REFERENCE, test, 64, NoStress(), executions=4096, seed=9
        )
        assert result.weak == 0, (
            f"{test.name}: {result.weak} forbidden outcomes on the "
            "sequentially consistent reference chip"
        )

    @pytest.mark.parametrize("name", ["MP", "SB", "2+2W", "IRIW"])
    def test_sc_reference_never_weak_under_stress(self, name):
        # Stress dilates timings but must never create SC violations.
        spec = TunedStress(shipped_params("K20"))
        result = run_litmus_vector(
            SC_REFERENCE, get_test(name), 64, spec,
            executions=4096, seed=3,
        )
        assert result.weak == 0


# ----------------------------------------------------------------------
# pillar 2: weak-rate parity against the direct backend
# ----------------------------------------------------------------------
class TestWeakRateParity:
    @pytest.mark.slow
    def test_family_parity_k20_both_environments(self, k20):
        """All 16 registry tests, native and tuned-stress, on K20.

        One Bonferroni family across the 32 (test, environment) cells:
        no two-sided two-proportion test may reject at α = 0.001.
        """
        d = 2 * k20.patch_size
        environments = [
            ("no-str", NoStress()),
            ("sys-str", _tuned(k20)),
        ]
        samples = []
        for test in ALL_TESTS:
            for env_name, spec in environments:
                direct = run_litmus(
                    k20, test, d, spec, _N_DIRECT, seed=7
                )
                vector = run_litmus_vector(
                    k20, test, d, spec, _N_VECTOR, seed=7
                )
                samples.append(
                    (
                        f"{test.name}/{env_name}",
                        (direct.weak, _N_DIRECT, vector.weak, _N_VECTOR),
                    )
                )
        verdict = parity_family(samples, alpha=0.001)
        worst_name, worst = verdict.worst
        assert verdict.passed, (
            f"parity rejected for {verdict.rejections}; worst cell "
            f"{worst_name}: direct {worst.rate1:.4f} vs vector "
            f"{worst.rate2:.4f} (z = {worst.z:+.2f})"
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("chip_name", ["980", "C2050"])
    def test_parity_holds_across_chips(self, chip_name):
        """A weak-idiom subset per additional chip, tuned stress."""
        chip = get_chip(chip_name)
        d = 2 * chip.patch_size
        spec = _tuned(chip)
        samples = []
        for name in ("MP", "LB", "SB", "2+2W", "WRC", "IRIW"):
            direct = run_litmus(
                chip, get_test(name), d, spec, _N_DIRECT, seed=7
            )
            vector = run_litmus_vector(
                chip, get_test(name), d, spec, _N_VECTOR, seed=7
            )
            samples.append(
                (name, (direct.weak, _N_DIRECT, vector.weak, _N_VECTOR))
            )
        verdict = parity_family(samples, alpha=0.001)
        assert verdict.passed, (
            f"{chip_name}: parity rejected for {verdict.rejections}"
        )

    def test_weak_idioms_observable_on_vector(self, k20):
        # Beyond "same rate as direct": the backend actually exposes
        # the weak behaviours the paper hunts.
        d = 2 * k20.patch_size
        for name in ("MP", "LB", "SB", "R", "S", "2+2W"):
            result = run_litmus_vector(
                k20, get_test(name), d, _tuned(k20), 4096, seed=7
            )
            assert result.weak > 0, f"{name} silent on vector backend"


# ----------------------------------------------------------------------
# pillar 3: fence ordering on the vector backend
# ----------------------------------------------------------------------
class TestFenceOrderingVector:
    @pytest.mark.parametrize(
        "fenced,base", sorted(FENCED_VARIANTS.items())
    )
    def test_fences_reduce_weak_rates(self, fenced, base, k20):
        d = 2 * k20.patch_size
        spec = _tuned(k20)
        weak_fenced = run_litmus_vector(
            k20, get_test(fenced), d, spec, _N_VECTOR, seed=7
        ).weak
        weak_base = run_litmus_vector(
            k20, get_test(base), d, spec, _N_VECTOR, seed=7
        ).weak
        assert weak_fenced < weak_base, (
            f"{fenced} ({weak_fenced}) not below {base} ({weak_base})"
        )

    @pytest.mark.parametrize("name", ["MP-FF", "LB-FF", "SB-FF"])
    def test_fully_fenced_silent(self, name, k20):
        d = 2 * k20.patch_size
        result = run_litmus_vector(
            k20, get_test(name), d, _tuned(k20), _N_VECTOR, seed=7
        )
        assert result.weak == 0

    @pytest.mark.parametrize("name", ["CoRR", "CoWW"])
    def test_coherence_silent(self, name, k20):
        d = 2 * k20.patch_size
        result = run_litmus_vector(
            k20, get_test(name), d, _tuned(k20), _N_VECTOR, seed=7
        )
        assert result.weak == 0


# ----------------------------------------------------------------------
# mechanics: tagging, determinism, sharding, validation
# ----------------------------------------------------------------------
class TestVectorMechanics:
    def test_result_tagged_with_vector_backend(self, k20):
        result = run_litmus_vector(k20, get_test("MP"), 64, NoStress(),
                                   100, seed=1)
        assert result.backend == "vector"
        assert result.executions == 100

    def test_registered_in_backend_dispatch(self):
        assert BACKENDS["vector"] is run_litmus_vector
        assert set(BACKENDS) == {"direct", "engine", "vector"}

    def test_repeat_runs_bit_identical(self, k20):
        kwargs = dict(executions=10000, seed=13)
        a = run_litmus_vector(
            k20, get_test("SB"), 128, _tuned(k20), **kwargs
        )
        b = run_litmus_vector(
            k20, get_test("SB"), 128, _tuned(k20), **kwargs
        )
        assert a.weak == b.weak

    def test_sharded_matches_serial(self, k20):
        # 3 mega-batches across 2 workers; batch-granular sharding must
        # reproduce the serial count exactly.
        kwargs = dict(executions=10000, seed=5)
        serial = run_litmus_vector(
            k20, get_test("MP"), 128, _tuned(k20), **kwargs
        )
        sharded = run_litmus_vector(
            k20, get_test("MP"), 128, _tuned(k20),
            parallel=ParallelConfig(jobs=2), **kwargs
        )
        assert serial.weak == sharded.weak

    def test_ragged_final_batch(self, k20):
        # Executions far below one lane block still work and count.
        result = run_litmus_vector(
            k20, get_test("MP"), 128, _tuned(k20), 37, seed=7
        )
        assert result.executions == 37
        assert 0 <= result.weak <= 37

    def test_zero_executions(self, k20):
        result = run_litmus_vector(
            k20, get_test("MP"), 128, NoStress(), 0, seed=7
        )
        assert result.weak == 0
        assert result.executions == 0

    def test_seeds_decorrelate_batches(self, k20):
        a = run_litmus_vector(
            k20, get_test("MP"), 128, _tuned(k20), 4096, seed=1
        )
        b = run_litmus_vector(
            k20, get_test("MP"), 128, _tuned(k20), 4096, seed=2
        )
        # Weak counts are binomial with n=4096; distinct seeds landing
        # on the exact same count is possible but overwhelmingly
        # unlikely for MP's mid-range rate at this n.
        assert a.weak != b.weak

    def test_randomise_flag_accepted(self, k20):
        result = run_litmus_vector(
            k20, get_test("MP"), 128, _tuned(k20), 2048, seed=7,
            randomise=True,
        )
        assert 0 <= result.weak <= 2048

    def test_too_many_threads_rejected(self, k20):
        wide = LitmusTest(
            name="wide",
            description="",
            threads=tuple((st("x", 1),) for _ in range(k20.n_sms + 1)),
            forbidden=LocEq("x", 0),
        )
        with pytest.raises(ValueError, match="SMs"):
            run_litmus_vector(k20, wide, 64, NoStress(), 16, seed=1)

    def test_rmw_runs_on_vector(self, k20):
        result = run_litmus_vector(
            k20, get_test("CoWW"), 64, _tuned(k20), 2048, seed=3
        )
        assert result.weak == 0
