"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chips import SC_REFERENCE, all_chips, get_chip
from repro.gpu.memory import MemorySystem
from repro.gpu.pressure import StressField


@pytest.fixture
def k20():
    return get_chip("K20")


@pytest.fixture
def titan():
    return get_chip("Titan")


@pytest.fixture
def sc_ref():
    return SC_REFERENCE


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def quiet_memory(k20, rng):
    """A memory system with no stress (native conditions)."""
    return MemorySystem(k20, StressField.zero(k20), rng)


@pytest.fixture
def sc_memory(rng):
    """A sequentially consistent memory system."""
    return MemorySystem(SC_REFERENCE, StressField.zero(SC_REFERENCE), rng)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running statistical tests"
    )


ALL_CHIP_NAMES = tuple(c.short_name for c in all_chips())
