"""Regression pins for the SC enumerator rewrite.

The enumerator was rewritten from recursive dict-copying to an
iterative indexed-tuple walk with whole-result memoisation (so
synthesis-scale filtering doesn't blow up).  These pins were captured
from the original implementation on the full registry: outcome counts
for every test and exact outcome sets for a representative spread of
shapes (2-thread, 3/4-thread, coherence, rmw, multi-value).  Any drift
here means the rewrite changed SC semantics, not just speed.
"""

from __future__ import annotations

import pytest

from repro.litmus.sc import _sc_outcomes, forbidden_sc_reachable, sc_outcomes
from repro.litmus.tests import ALL_TESTS, get_test

# Captured from the pre-rewrite enumerator.
GOLDEN_COUNTS = {
    "MP": 3, "LB": 3, "SB": 3, "MP-F0": 3, "MP-F1": 3,
    "MP-FF": 3, "LB-FF": 3, "SB-FF": 3, "CoRR": 3, "CoWW": 1,
    "R": 3, "S": 3, "2+2W": 3, "WRC": 7, "IRIW": 15, "3.LB": 7,
}

_XY11 = (("x", 1), ("y", 1))

GOLDEN_SETS = {
    "MP": {
        ((("r1", 0), ("r2", 0)), _XY11),
        ((("r1", 0), ("r2", 1)), _XY11),
        ((("r1", 1), ("r2", 1)), _XY11),
    },
    "SB": {
        ((("r1", 0), ("r2", 1)), _XY11),
        ((("r1", 1), ("r2", 0)), _XY11),
        ((("r1", 1), ("r2", 1)), _XY11),
    },
    "LB": {
        ((("r1", 0), ("r2", 0)), _XY11),
        ((("r1", 0), ("r2", 1)), _XY11),
        ((("r1", 1), ("r2", 0)), _XY11),
    },
    "CoRR": {
        ((("r1", 0), ("r2", 0)), (("x", 1),)),
        ((("r1", 0), ("r2", 1)), (("x", 1),)),
        ((("r1", 1), ("r2", 1)), (("x", 1),)),
    },
    "CoWW": {((), (("x", 2),))},
    "2+2W": {
        ((), (("x", 1), ("y", 2))),
        ((), (("x", 2), ("y", 1))),
        ((), (("x", 2), ("y", 2))),
    },
    "R": {
        ((("r1", 0),), _XY11),
        ((("r1", 1),), _XY11),
        ((("r1", 1),), (("x", 1), ("y", 2))),
    },
    "S": {
        ((("r1", 0),), _XY11),
        ((("r1", 0),), (("x", 2), ("y", 1))),
        ((("r1", 1),), _XY11),
    },
    # All register combinations except the forbidden (1, 1, 0).
    "WRC": {
        ((("r1", a), ("r2", b), ("r3", c)), _XY11)
        for a in (0, 1) for b in (0, 1) for c in (0, 1)
        if (a, b, c) != (1, 1, 0)
    },
    # All register combinations except the forbidden all-ones.
    "3.LB": {
        ((("r1", a), ("r2", b), ("r3", c)),
         (("x", 1), ("y", 1), ("z", 1)))
        for a in (0, 1) for b in (0, 1) for c in (0, 1)
        if (a, b, c) != (1, 1, 1)
    },
}


@pytest.mark.parametrize("name", sorted(GOLDEN_COUNTS))
def test_outcome_counts_pinned(name):
    assert len(sc_outcomes(get_test(name))) == GOLDEN_COUNTS[name]


@pytest.mark.parametrize("name", sorted(GOLDEN_SETS))
def test_outcome_sets_pinned(name):
    assert sc_outcomes(get_test(name)) == GOLDEN_SETS[name]


def test_forbidden_never_sc_reachable():
    for test in ALL_TESTS:
        assert not forbidden_sc_reachable(test), test.name


def test_memoised_across_calls():
    test = get_test("IRIW")
    _sc_outcomes.cache_clear()
    sc_outcomes(test)
    first = _sc_outcomes.cache_info()
    sc_outcomes(test)
    second = _sc_outcomes.cache_info()
    assert second.hits == first.hits + 1
    assert second.misses == first.misses


def test_returns_fresh_set():
    test = get_test("MP")
    out = sc_outcomes(test)
    out.clear()
    assert sc_outcomes(test) == GOLDEN_SETS["MP"]
