"""Table 6: empirical fence insertion (Sec. 5, Algorithm 1).

Runs Algorithm 1 on three fence-free applications on Titan (the chip the
paper centres Table 6 on) and checks the reduced fence counts against
the paper: one fence for cbe-dot/cbe-ht, two for cub-scan-nf.  Cross-
chip agreement and the ls-bh-nf four-fence case are covered by the test
suite; the full table is available via ``gpu-wmm experiment table6``.

Candidate fence-set checks inherit ``REPRO_BENCH_JOBS`` through the
scale's ``jobs`` knob; the reduction path and final fence sets are
identical at any job count.
"""

import dataclasses

import pytest

from repro.apps import get_application
from repro.chips import get_chip
from repro.hardening import empirical_fence_insertion
from repro.reporting.tables import render_table

EXPECTED_REDUCED = {"cbe-dot": 1, "cbe-ht": 1, "cub-scan-nf": 2}


@pytest.mark.parametrize("app_name", sorted(EXPECTED_REDUCED))
def test_table6_titan(benchmark, tiny_scale, app_name):
    app = get_application(app_name)
    chip = get_chip("Titan")
    scale = dataclasses.replace(tiny_scale, stability_runs=60)
    result = benchmark.pedantic(
        empirical_fence_insertion,
        args=(app, chip),
        kwargs={"scale": scale, "seed": 1, "initial_iterations": 48},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table([result.table6_row()],
                       title=f"Table 6 row ({app_name} on Titan)"))
    print("reduced fences:", sorted(result.reduced))
    assert result.converged
    assert len(result.reduced) == EXPECTED_REDUCED[app_name]
    # The exact sites depend on removal order (paper Sec. 5.1): a fence
    # immediately after the published flag orders the same publication
    # as a fence after the data store, so accept either member of each
    # equivalent pair.
    equivalents = {
        "cub-scan:store-aggregate": {"cub-scan:store-aggregate",
                                     "cub-scan:store-flag-a"},
        "cub-scan:store-prefix": {"cub-scan:store-prefix",
                                  "cub-scan:store-flag-p"},
    }
    for required in app.required_sites():
        accept = equivalents.get(required, {required})
        assert result.reduced & accept, (required, result.reduced)
