"""Distributed protocol A/B: sync v2 leasing vs v3 pipelined+adaptive.

The tentpole claim of the protocol-v3 overhaul is that lease
pipelining plus adaptive lease sizing takes the coordinator round-trip
off the worker's critical path: instead of *blocking* on a
request/lease exchange before every unit (one-unit-per-lease v2, the
worst case and the old chaos default), a v3 worker prefetches its next
lease while the current one executes and the coordinator batches units
toward a target lease duration.

This benchmark measures that directly, without needing a second
machine or even a second CPU: the coordinator runs in a thread, the
worker runs in-process via :func:`repro.dist.run_worker`, and wire
latency is injected deterministically with the fault runtime
(``socket.send``/``delay`` on every frame, both directions — the same
production code path chaos testing uses).  Both sides execute the
identical unit grid; the records must match exactly (the byte-identity
contract).  Recorded per side: wall-clock, blocking lease round trips
(:class:`~repro.dist.WorkerStats`), and raw-vs-wire bytes
(:class:`~repro.dist.WireStats`, compression on for the v3 side)::

    REPRO_BENCH_JSON=BENCH_throughput.json \
        pytest benchmarks/bench_dist_protocol.py -s

The acceptance floor (ISSUE 9): the pipelined+adaptive run completes
the grid with at least :data:`_MIN_RT_RATIO` x fewer blocking round
trips than the sync one-unit-per-lease run.
"""

from __future__ import annotations

import os
import threading
import time

from repro.dist import Coordinator, WorkerStats, run_worker
from repro.faults import FaultPlan, FaultSpec, install, uninstall
from repro.litmus.units import litmus_unit
from repro.store import litmus_key
from repro.stress.strategies import NoStress

#: Work units in the A/B grid (cycled over the litmus family, unique
#: seeds, tiny execution counts — the wire, not the simulator, is what
#: this benchmark exercises).
_UNITS = int(os.environ.get("REPRO_BENCH_DIST_UNITS", "24"))
_EXECUTIONS = 8
#: Injected one-way per-frame latency (seconds).
_DELAY_S = float(os.environ.get("REPRO_BENCH_DIST_DELAY_S", "0.003"))
#: Acceptance floor: sync blocking round trips / pipelined ones.
_MIN_RT_RATIO = 5.0

_TESTS = ["MP", "SB", "LB", "CoRR", "R", "S", "WRC", "IRIW"]


def _grid(n=_UNITS):
    units = []
    for i in range(n):
        test = _TESTS[i % len(_TESTS)]
        key = litmus_key("K20", test, "no-str", 64, _EXECUTIONS, i)
        units.append(
            litmus_unit(
                key, "K20", test, 64, NoStress(), _EXECUTIONS, seed=i
            )
        )
    return units


def _latency_plan():
    return FaultPlan(
        name="bench-wire-latency",
        seed=1,
        specs=(
            FaultSpec(
                "socket.send", "delay", params={"delay_s": _DELAY_S}
            ),
        ),
    )


def _run_side(units, protocol, units_per_lease, compress):
    """One full campaign: coordinator thread + in-process worker.

    Returns (wall_s, records, worker_stats, coordinator_wire).
    """
    coordinator = Coordinator(
        units,
        units_per_lease=units_per_lease,
        compress=compress,
        lease_timeout=30.0,
    )
    host, port = coordinator.bind()
    box = {}

    def serve():
        box["records"] = coordinator.serve()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    stats = WorkerStats()
    start = time.perf_counter()
    run_worker(
        host,
        port,
        name=f"bench-v{protocol}",
        protocol=protocol,
        compress=compress,
        stats=stats,
    )
    wall = time.perf_counter() - start
    thread.join(timeout=60)
    assert "records" in box, "coordinator did not finish"
    return wall, box["records"], stats, coordinator.wire


def _blocking_round_trips(stats):
    """Lease-acquisition round trips the worker *waited* on: blocking
    grant requests plus empty-handed wait/retry sleeps.  Prefetched
    grants are excluded by construction — their latency overlapped
    execution."""
    return stats.blocking_grants + stats.wait_sleeps


def test_dist_protocol_ab(bench_json):
    units = _grid()
    install(_latency_plan())
    try:
        # A: protocol v2, one unit per lease, no compression — every
        # unit pays a blocking request/lease exchange.
        sync_wall, sync_records, sync_stats, sync_wire = _run_side(
            units, protocol=2, units_per_lease=1, compress=False
        )
        # B: protocol v3 — adaptive lease sizing, pipelined prefetch,
        # compression negotiated on.
        pipe_wall, pipe_records, pipe_stats, pipe_wire = _run_side(
            units, protocol=3, units_per_lease=None, compress=True
        )
    finally:
        uninstall()

    # Byte-identity first: the optimisation must change nothing.
    assert [r.key for r in sync_records] == [r.key for r in pipe_records]
    assert [r.to_json() for r in sync_records] == [
        r.to_json() for r in pipe_records
    ]
    assert sync_stats.executed == pipe_stats.executed == len(units)

    sync_rt = _blocking_round_trips(sync_stats)
    pipe_rt = _blocking_round_trips(pipe_stats)
    ratio = sync_rt / max(1, pipe_rt)

    def side(wall, stats, wire, round_trips):
        return {
            "wall_s": round(wall, 3),
            "blocking_round_trips": round_trips,
            "blocking_grants": stats.blocking_grants,
            "prefetched_grants": stats.prefetched_grants,
            "wait_sleeps": stats.wait_sleeps,
            "leases_served": stats.leases_served,
            "result_parts_streamed": stats.parts_sent,
            "coordinator_raw_bytes": wire.raw_out + wire.raw_in,
            "coordinator_wire_bytes": wire.wire_out + wire.wire_in,
            "compressed_frames": (
                wire.compressed_out + wire.compressed_in
            ),
        }

    bench_json["dist_protocol_ab"] = {
        "units": len(units),
        "injected_delay_ms_per_frame": _DELAY_S * 1000.0,
        "sync_v2_one_unit_leases": side(
            sync_wall, sync_stats, sync_wire, sync_rt
        ),
        "pipelined_v3_adaptive": side(
            pipe_wall, pipe_stats, pipe_wire, pipe_rt
        ),
        "blocking_round_trip_ratio": round(ratio, 1),
        "min_ratio_floor": _MIN_RT_RATIO,
    }

    assert ratio >= _MIN_RT_RATIO, (
        f"pipelined+adaptive still blocked on {pipe_rt} lease round "
        f"trip(s) vs {sync_rt} sync — ratio {ratio:.1f}x is under the "
        f"{_MIN_RT_RATIO:.0f}x floor"
    )
    # Compression must never inflate the wire.
    pipe_total = bench_json["dist_protocol_ab"]["pipelined_v3_adaptive"]
    assert (
        pipe_total["coordinator_wire_bytes"]
        <= pipe_total["coordinator_raw_bytes"]
        + 4 * (pipe_wire.frames_out + pipe_wire.frames_in)
    )
    print(
        f"\ndist protocol A/B ({len(units)} units, "
        f"{_DELAY_S * 1000:.0f}ms/frame injected): "
        f"sync v2 {sync_rt} blocking round trips / {sync_wall:.2f}s, "
        f"pipelined v3 {pipe_rt} / {pipe_wall:.2f}s "
        f"({ratio:.1f}x fewer, {pipe_stats.prefetched_grants} "
        f"prefetched lease(s), "
        f"{pipe_wire.compressed_out + pipe_wire.compressed_in} "
        f"compressed frame(s))"
    )
