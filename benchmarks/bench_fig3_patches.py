"""Figure 3: patch-finding bar strips (Sec. 3.2).

Regenerates the ⟨T_d, l⟩ sweep for Titan and C2075 and checks the
paper's qualitative findings: no weak behaviour below the critical patch
size, patches of the chip's size above it.

Set ``REPRO_BENCH_JOBS=N`` to shard the ⟨T_d, l⟩ grid across N worker
processes; the scan (and these assertions) are identical at any job
count.
"""

from repro.chips import get_chip
from repro.reporting.figures import render_bars
from repro.tuning import critical_patch_size, scan_patches


def _scan(chip_name, scale, parallel):
    chip = get_chip(chip_name)
    scan = scan_patches(chip, scale, seed=3, parallel=parallel)
    return chip, scan


def test_fig3_titan(benchmark, bench_scale, bench_parallel):
    chip, scan = benchmark.pedantic(
        _scan, args=("Titan", bench_scale, bench_parallel),
        rounds=1, iterations=1,
    )
    print()
    print(f"Figure 3a ({chip.name}):")
    for test in ("MP", "LB"):
        for d in (0, 32, 64):
            print(render_bars(scan.row(test, d), label=f"{test} d={d}"))
    size, _ = critical_patch_size(scan)
    print(f"critical patch size: {size} (paper: 32)")
    assert size == 32
    # Paper: no weak behaviour for contiguous locations (d = 0).
    assert sum(scan.row("MP", 0)) <= 1


def test_fig3_c2075(benchmark, bench_scale, bench_parallel):
    chip, scan = benchmark.pedantic(
        _scan, args=("C2075", bench_scale, bench_parallel),
        rounds=1, iterations=1,
    )
    print()
    print(f"Figure 3b ({chip.name}):")
    for test in ("MP", "LB"):
        for d in (0, 64, 128):
            print(render_bars(scan.row(test, d), label=f"{test} d={d}"))
    size, _ = critical_patch_size(scan)
    print(f"critical patch size: {size} (paper: 64)")
    assert size == 64
