"""Litmus-execution throughput: the repo's performance trajectory anchor.

The paper's methodology is brute force — nearly half a billion litmus
executions (Sec. 3) — so single-worker executions/second is the number
every tuning grid, campaign cell and fence-insertion check multiplies.
This benchmark measures it for the canonical hot workload (K20, MP at
distance 2 x patch size, tuned ``sys-str`` stressing, fixed seed) plus a
no-stress variant, a sharded run and a per-test sweep of the full litmus
family, and deposits the measurements into ``BENCH_throughput.json`` via
the ``bench_json`` emitter fixture::

    REPRO_BENCH_JSON=BENCH_throughput.json \
        pytest benchmarks/bench_throughput.py -s

Each measurement also re-checks the fixed-seed weak count against the
golden value captured from the pre-refactor core, so a throughput win
can never come from silently changing the model (the full pinning lives
in ``tests/test_golden_stats.py``).

``reference.pre_pr_serial_exec_per_sec`` is the pre-overhaul core
measured on the PR's development machine (best of six 1000-execution
runs, same workload); the hot-path overhaul measured 3.0-3.3x that on
the same machine.  The ratio is only meaningful for runs on comparable
hardware — the JSON records the current machine's absolute numbers.

Timing is done directly with ``time.perf_counter`` (best of ``_REPS``)
so the benchmark runs without pytest-benchmark installed.
"""

from __future__ import annotations

import os
import time

from repro.chips import get_chip
from repro.litmus import ALL_TESTS, MP, run_litmus, run_litmus_vector
from repro.litmus.runner import LitmusInstance, _litmus_span
from repro.parallel import ParallelConfig
from repro.stress.strategies import NoStress, TunedStress
from repro.tuning.pipeline import shipped_params

#: Executions per registry test for the family-rate record.
_FAMILY_EXECUTIONS = int(
    os.environ.get("REPRO_BENCH_FAMILY_EXECUTIONS", "150")
)

#: Executions per timed run (override for quick smoke: the golden-count
#: cross-check only applies at the default size).
_EXECUTIONS = int(os.environ.get("REPRO_BENCH_THROUGHPUT_EXECUTIONS", "600"))
_SEED = 7
_REPS = 3

#: Fixed-seed weak counts of this workload on the pre-refactor core.
_GOLDEN_WEAK_SYS = 130
_GOLDEN_WEAK_NO = 0

#: Pre-overhaul throughput on the PR's development machine (see module
#: docstring); kept in the JSON so the perf trajectory has an anchor.
_REFERENCE = {
    "workload": "K20/MP d=2*patch sys-str serial, seed 7",
    "pre_pr_serial_exec_per_sec": 1679.0,
    "note": "best-of-6 on the PR-2 dev container; compare only on "
    "the same machine",
}


def _best_rate(run, executions):
    best = 0.0
    weak = None
    for _ in range(_REPS):
        start = time.perf_counter()
        weak = run()
        elapsed = time.perf_counter() - start
        best = max(best, executions / elapsed)
    return best, weak


def _layout(chip):
    return LitmusInstance.layout(chip, MP, 2 * chip.patch_size)


def test_serial_sys_str_throughput(bench_json):
    chip = get_chip("K20")
    spec = TunedStress(shipped_params("K20"))
    instance = _layout(chip)
    _litmus_span(chip, instance, spec, _SEED, False, 0, 50)  # warm caches

    rate, weak = _best_rate(
        lambda: _litmus_span(
            chip, instance, spec, _SEED, False, 0, _EXECUTIONS
        ),
        _EXECUTIONS,
    )
    if _EXECUTIONS == 600:
        assert weak == _GOLDEN_WEAK_SYS  # golden tie-in
    assert rate > 0
    bench_json.setdefault("reference", _REFERENCE)
    bench_json["serial_sys_str"] = {
        "executions": _EXECUTIONS,
        "weak": weak,
        "exec_per_sec": round(rate, 1),
    }
    print(f"\nserial sys-str: {rate:,.0f} executions/s (weak={weak})")


def test_serial_no_str_throughput(bench_json):
    chip = get_chip("K20")
    spec = NoStress()
    instance = _layout(chip)
    _litmus_span(chip, instance, spec, _SEED, False, 0, 50)

    rate, weak = _best_rate(
        lambda: _litmus_span(
            chip, instance, spec, _SEED, False, 0, _EXECUTIONS
        ),
        _EXECUTIONS,
    )
    if _EXECUTIONS == 600:
        assert weak == _GOLDEN_WEAK_NO
    bench_json["serial_no_str"] = {
        "executions": _EXECUTIONS,
        "weak": weak,
        "exec_per_sec": round(rate, 1),
    }
    print(f"\nserial no-str: {rate:,.0f} executions/s (weak={weak})")


def test_family_litmus_rates(bench_json):
    """Per-test weak rates for the full litmus family (K20, sys-str,
    d = 2 x patch size, fixed seed) — the expanded-registry analogue of
    the golden weak counts.  The record makes regressions in any family
    member visible in the merged BENCH_throughput.json artifact, and
    doubles as a whole-family throughput measurement."""
    chip = get_chip("K20")
    spec = TunedStress(shipped_params("K20"))
    d = 2 * chip.patch_size
    start = time.perf_counter()
    family = {}
    total = 0
    for test in ALL_TESTS:
        result = run_litmus(
            chip, test, d, spec, _FAMILY_EXECUTIONS, seed=_SEED
        )
        total += result.executions
        family[test.name] = {
            "threads": test.n_threads,
            "weak": result.weak,
            "executions": result.executions,
            "rate": round(result.rate, 4),
        }
    elapsed = time.perf_counter() - start
    bench_json["family_sys_str"] = {
        "chip": "K20",
        "distance": d,
        "seed": _SEED,
        "exec_per_sec": round(total / elapsed, 1),
        "tests": family,
    }
    weak_tests = [n for n, r in family.items() if r["weak"]]
    if _FAMILY_EXECUTIONS == 150:  # golden tie-in at the default size
        assert "MP" in weak_tests
        assert family["CoRR"]["weak"] == 0 and family["CoWW"]["weak"] == 0
    print(
        f"\nfamily sys-str: {len(family)} tests, "
        f"{total / elapsed:,.0f} executions/s, weak in "
        f"{len(weak_tests)}/{len(family)} tests"
    )


#: Executions per timed vector-backend run: four mega-batches, so the
#: measurement covers batch turnover, not just one warm batch.
_VECTOR_EXECUTIONS = int(
    os.environ.get("REPRO_BENCH_VECTOR_EXECUTIONS", "16384")
)
#: The tentpole floor: the vector backend must beat the direct serial
#: path by at least this factor on the same workload (ISSUE 6).
_VECTOR_MIN_SPEEDUP = 10.0


def _direct_serial_rate(bench_json, chip, spec):
    """Serial direct-backend exec/s for the canonical workload — reuse
    the A-side record when the serial benchmark already ran in this
    session, else measure inline (standalone invocation)."""
    recorded = bench_json.get("serial_sys_str")
    if recorded:
        return recorded["exec_per_sec"]
    instance = _layout(chip)
    _litmus_span(chip, instance, spec, _SEED, False, 0, 50)
    rate, _ = _best_rate(
        lambda: _litmus_span(
            chip, instance, spec, _SEED, False, 0, _EXECUTIONS
        ),
        _EXECUTIONS,
    )
    return rate


def test_vector_sys_str_throughput(bench_json):
    """A/B: the vectorized mega-batch backend against the serial direct
    path on the canonical workload.  Records both sides and the ratio;
    the tentpole acceptance floor is >= 10x."""
    chip = get_chip("K20")
    spec = TunedStress(shipped_params("K20"))
    direct_rate = _direct_serial_rate(bench_json, chip, spec)

    def run():
        return run_litmus_vector(
            chip, MP, 2 * chip.patch_size, spec,
            _VECTOR_EXECUTIONS, seed=_SEED,
        ).weak

    run()  # warm plan/table caches
    rate, weak = _best_rate(run, _VECTOR_EXECUTIONS)
    ratio = rate / direct_rate
    bench_json["vector_sys_str"] = {
        "executions": _VECTOR_EXECUTIONS,
        "weak": weak,
        "weak_rate": round(weak / _VECTOR_EXECUTIONS, 4),
        "exec_per_sec": round(rate, 1),
        "direct_serial_exec_per_sec": round(direct_rate, 1),
        "speedup_vs_direct_serial": round(ratio, 1),
    }
    assert ratio >= _VECTOR_MIN_SPEEDUP, (
        f"vector backend {rate:,.0f} exec/s is only {ratio:.1f}x the "
        f"direct serial path ({direct_rate:,.0f} exec/s); "
        f"floor is {_VECTOR_MIN_SPEEDUP:.0f}x"
    )
    print(
        f"\nvector sys-str: {rate:,.0f} executions/s "
        f"({ratio:.1f}x direct serial, weak rate "
        f"{weak / _VECTOR_EXECUTIONS:.4f})"
    )


def test_vector_family_throughput(bench_json):
    """The full 16-test family on the vector backend (the family
    benchmark of the acceptance criteria): per-test weak rates plus
    whole-family exec/s, with the >= 10x floor checked against the
    direct family sweep."""
    chip = get_chip("K20")
    spec = TunedStress(shipped_params("K20"))
    d = 2 * chip.patch_size
    per_test = max(4096, _VECTOR_EXECUTIONS // 4)
    for test in ALL_TESTS:  # warm plan/table caches
        run_litmus_vector(chip, test, d, spec, 64, seed=_SEED)
    start = time.perf_counter()
    family = {}
    total = 0
    for test in ALL_TESTS:
        result = run_litmus_vector(
            chip, test, d, spec, per_test, seed=_SEED
        )
        total += result.executions
        family[test.name] = {
            "threads": test.n_threads,
            "weak": result.weak,
            "executions": result.executions,
            "rate": round(result.rate, 4),
        }
    elapsed = time.perf_counter() - start
    rate = total / elapsed
    record = {
        "chip": "K20",
        "distance": d,
        "seed": _SEED,
        "exec_per_sec": round(rate, 1),
        "tests": family,
    }
    direct_family = bench_json.get("family_sys_str")
    if direct_family:
        ratio = rate / direct_family["exec_per_sec"]
        record["speedup_vs_direct_family"] = round(ratio, 1)
        assert ratio >= _VECTOR_MIN_SPEEDUP, (
            f"vector family sweep {rate:,.0f} exec/s is only "
            f"{ratio:.1f}x the direct family sweep"
        )
    bench_json["vector_family_sys_str"] = record
    assert family["CoRR"]["weak"] == 0 and family["CoWW"]["weak"] == 0
    assert family["MP"]["weak"] > 0
    print(
        f"\nvector family sys-str: {len(family)} tests, "
        f"{rate:,.0f} executions/s"
    )


def test_sharded_sys_str_throughput(bench_json, bench_jobs):
    """Same workload through run_litmus with REPRO_BENCH_JOBS workers
    (jobs=1 exercises the serial public path).  Statistics are identical
    at any job count — only wall-clock changes."""
    chip = get_chip("K20")
    spec = TunedStress(shipped_params("K20"))

    def run():
        return run_litmus(
            chip,
            MP,
            2 * chip.patch_size,
            spec,
            executions=_EXECUTIONS,
            seed=_SEED,
            parallel=ParallelConfig(jobs=bench_jobs),
        ).weak

    run()  # warm caches / worker pool
    rate, weak = _best_rate(run, _EXECUTIONS)
    if _EXECUTIONS == 600:
        assert weak == _GOLDEN_WEAK_SYS
    bench_json["sharded_sys_str"] = {
        "executions": _EXECUTIONS,
        "jobs": bench_jobs,
        "weak": weak,
        "exec_per_sec": round(rate, 1),
    }
    print(
        f"\nsharded sys-str (jobs={bench_jobs}): "
        f"{rate:,.0f} executions/s (weak={weak})"
    )
