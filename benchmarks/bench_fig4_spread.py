"""Figure 4: spread finding for 980 and K20 (Sec. 3.4).

The spread-scoring grid inherits ``REPRO_BENCH_JOBS`` through the
scale's ``jobs`` knob; scores are identical at any job count.
"""

import pytest

from repro.chips import get_chip
from repro.reporting.figures import render_series
from repro.tuning.spread import score_spreads, select_spread


@pytest.mark.parametrize("chip_name", ["980", "K20"])
def test_fig4_spread(benchmark, tiny_scale, chip_name):
    chip = get_chip(chip_name)
    scores = benchmark.pedantic(
        score_spreads,
        args=(chip, chip.patch_size, chip.best_sequence, tiny_scale),
        kwargs={"seed": 6},
        rounds=1,
        iterations=1,
    )
    series = {
        t: [(float(m), float(s)) for m, s in scores.series(t)]
        for t in scores.tests
    }
    print()
    print(render_series(
        series,
        title=f"Figure 4 ({chip.name}): score vs spread",
        x_label="spread",
        y_label="weak behaviours",
    ))
    best = select_spread(scores)
    print(f"selected spread: {best} (paper: 2)")
    assert best == 2
