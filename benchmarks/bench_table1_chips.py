"""Table 1: the seven studied GPUs (static registry; no run loops,
so ``REPRO_BENCH_JOBS`` has no effect here)."""

from repro.reporting.experiments import table1


def test_table1(benchmark):
    text = benchmark(table1)
    print()
    print(text)
    for chip in ("GTX 980", "Quadro K5200", "GTX Titan", "Tesla K20",
                 "GTX 770", "Tesla C2075", "Tesla C2050"):
        assert chip in text
