"""Table 3: access-sequence ranking snippet for Titan (Sec. 3.3).

The σ-scoring grid inherits ``REPRO_BENCH_JOBS`` through the scale's
``jobs`` knob; scores are identical at any job count.
"""

import dataclasses

from repro.chips import get_chip
from repro.reporting.tables import render_table
from repro.stress.sequences import format_sequence
from repro.tuning.access import score_sequences, select_sequence


def test_table3_titan(benchmark, tiny_scale):
    chip = get_chip("Titan")
    scale = dataclasses.replace(tiny_scale, max_sequence_length=4)
    scores = benchmark.pedantic(
        score_sequences, args=(chip, chip.patch_size, scale),
        kwargs={"seed": 5}, rounds=1, iterations=1,
    )
    best = select_sequence(scores)
    print()
    print(f"selected sigma: {format_sequence(best)} (paper: ld st2 ld)")
    for test, rows in scores.table3_rows().items():
        print(render_table(rows, title=f"Table 3 snippet, {test}"))

    # The paper's qualitative findings:
    assert best == chip.best_sequence
    for test in scores.tests:
        ranked = scores.ranking(test)
        top_seq, top_score = ranked[0]
        bottom = ranked[-3:]
        # Store-only sequences rank at the bottom with near-zero scores.
        assert all(
            score <= max(2, 0.05 * max(top_score, 1))
            for _seq, score in bottom
        )
        assert any("ld" in seq for seq, _ in ranked[:3])
