"""Table 5: testing-environment effectiveness (Sec. 4).

Runs a reduced campaign — one Kepler chip, all ten applications, four of
the eight environments — and checks the paper's headline findings:

* sys-str+ observes errors in more applications than any
  straightforward environment;
* sdk-red and cub-scan (whose fences are sufficient) never err;
* ls-bh errs even with its fences.

The full 7 x 8 grid is available via
``gpu-wmm experiment table5 --scale default`` (slow).

Set ``REPRO_BENCH_JOBS=N`` to shard the campaign across N worker
processes; the grid statistics (and these assertions) are identical at
any job count.

``test_table5_dist_scaling`` additionally A/Bs the same campaign
through the distributed backend at one vs two socket workers and
records cells/s plus scaling efficiency into ``REPRO_BENCH_JSON``.  On
single-CPU hosts the A/B is skipped (two workers time-slicing one core
cannot speed anything up) with the reason logged into the same record.
"""

import os
import time

import pytest

from repro.chips import get_chip
from repro.dist import DistributedSubmit
from repro.reporting.tables import render_table
from repro.testing import run_campaign, table5_summary
from repro.testing.summary import most_capable_environment

ENVS = ("no-str-", "sys-str+", "rand-str-", "cache-str+")


def _campaign(scale, parallel):
    chip = get_chip("K20")
    return run_campaign([chip], environments=list(ENVS), scale=scale,
                        seed=4, parallel=parallel)


def test_table5_k20(benchmark, bench_scale, bench_parallel):
    cells = benchmark.pedantic(
        _campaign, args=(bench_scale, bench_parallel),
        rounds=1, iterations=1,
    )
    table = table5_summary(cells)
    rows = [
        {
            "chip": "K20",
            **{
                env: str(table[("K20", env)])
                for env in ENVS
            },
        }
    ]
    print()
    print(render_table(rows, title="Table 5 (K20 row, 4 environments)"))
    by_app = {
        (c.app, c.environment): c for c in cells
    }
    sys_cell = table[("K20", "sys-str+")]
    print("apps with observed errors under sys-str+:",
          sys_cell.observed_apps)

    assert sys_cell.observed >= 4
    assert most_capable_environment(table, "K20") == "sys-str+"
    for env in ("no-str-", "rand-str-", "cache-str+"):
        assert table[("K20", env)].observed <= sys_cell.observed
    # Fence-sufficient applications never err (paper Sec. 4.3).
    for app in ("sdk-red", "cub-scan"):
        assert by_app[(app, "sys-str+")].errors == 0


def test_table5_dist_scaling(bench_scale, bench_json):
    """One vs two distributed workers over the same campaign grid.

    Measures cells/s at each worker count and the two-worker scaling
    efficiency (speedup / workers); the byte-identity of the two runs
    is asserted as a side effect.  The >=1.6x speedup assertion only
    applies on multi-core hosts — a single CPU time-slicing two worker
    processes proves coordination correctness but not throughput, so
    the A/B is skipped there with the reason logged into the JSON
    artefact.
    """
    cpus = os.cpu_count() or 1
    if cpus < 2:
        reason = (
            f"dist A/B needs >= 2 CPUs for a meaningful speedup; "
            f"host has {cpus}"
        )
        bench_json["dist_table5_ab"] = {
            "skipped": True,
            "reason": reason,
            "cpus": cpus,
        }
        print(f"\ndist A/B skipped: {reason}")
        pytest.skip(reason)

    chip = get_chip("K20")
    args = dict(
        chips=[chip], environments=list(ENVS), scale=bench_scale, seed=4
    )
    wall: dict[int, float] = {}
    cells: dict[int, list] = {}
    for workers in (1, 2):
        started = time.perf_counter()
        cells[workers] = run_campaign(
            **args, submit=DistributedSubmit(workers=workers)
        )
        wall[workers] = time.perf_counter() - started
    assert cells[1] == cells[2]  # worker count never changes results

    n_cells = len(cells[1])
    speedup = wall[1] / wall[2]
    record = {
        "cells": n_cells,
        "cpus": cpus,
        "wall_s": {str(w): round(wall[w], 3) for w in wall},
        "cells_per_s": {
            str(w): round(n_cells / wall[w], 3) for w in wall
        },
        "speedup_2_workers": round(speedup, 3),
        "scaling_efficiency": round(speedup / 2, 3),
    }
    bench_json["dist_table5_ab"] = record
    print(f"\ndist A/B: {record}")
    assert speedup >= 1.6
