"""Table 5: testing-environment effectiveness (Sec. 4).

Runs a reduced campaign — one Kepler chip, all ten applications, four of
the eight environments — and checks the paper's headline findings:

* sys-str+ observes errors in more applications than any
  straightforward environment;
* sdk-red and cub-scan (whose fences are sufficient) never err;
* ls-bh errs even with its fences.

The full 7 x 8 grid is available via
``gpu-wmm experiment table5 --scale default`` (slow).

Set ``REPRO_BENCH_JOBS=N`` to shard the campaign across N worker
processes; the grid statistics (and these assertions) are identical at
any job count.
"""

from repro.chips import get_chip
from repro.reporting.tables import render_table
from repro.testing import run_campaign, table5_summary
from repro.testing.summary import most_capable_environment

ENVS = ("no-str-", "sys-str+", "rand-str-", "cache-str+")


def _campaign(scale, parallel):
    chip = get_chip("K20")
    return run_campaign([chip], environments=list(ENVS), scale=scale,
                        seed=4, parallel=parallel)


def test_table5_k20(benchmark, bench_scale, bench_parallel):
    cells = benchmark.pedantic(
        _campaign, args=(bench_scale, bench_parallel),
        rounds=1, iterations=1,
    )
    table = table5_summary(cells)
    rows = [
        {
            "chip": "K20",
            **{
                env: str(table[("K20", env)])
                for env in ENVS
            },
        }
    ]
    print()
    print(render_table(rows, title="Table 5 (K20 row, 4 environments)"))
    by_app = {
        (c.app, c.environment): c for c in cells
    }
    sys_cell = table[("K20", "sys-str+")]
    print("apps with observed errors under sys-str+:",
          sys_cell.observed_apps)

    assert sys_cell.observed >= 4
    assert most_capable_environment(table, "K20") == "sys-str+"
    for env in ("no-str-", "rand-str-", "cache-str+"):
        assert table[("K20", env)].observed <= sys_cell.observed
    # Fence-sufficient applications never err (paper Sec. 4.3).
    for app in ("sdk-red", "cub-scan"):
        assert by_app[(app, "sys-str+")].errors == 0
