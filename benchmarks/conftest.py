"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index) at a reduced scale and times the
underlying computation with pytest-benchmark.  The regenerated artefact
is printed, so running with ``-s`` shows the paper-shaped output::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.scale import SMOKE


@pytest.fixture
def bench_scale():
    """Scale used by the benchmark harness (kept small; the CLI can
    regenerate any artefact at ``default`` or ``paper`` scale)."""
    return SMOKE


@pytest.fixture
def tiny_scale():
    """Extra-small grids for the heaviest pipelines."""
    return dataclasses.replace(
        SMOKE,
        max_distance=192,
        distance_step=32,
        max_location=160,
        location_step=16,
        executions=40,
        seq_distance_step=64,
        seq_executions=48,
        max_sequence_length=4,
        spread_distance_step=32,
        spread_executions=96,
        max_spread=12,
        campaign_runs=12,
        stability_runs=60,
    )
