"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one table or figure of the paper
(see docs/ARCHITECTURE.md's per-experiment index) at a reduced scale and
times the underlying computation with pytest-benchmark.  The regenerated
artefact is printed, so running with ``-s`` shows the paper-shaped
output::

    pytest benchmarks/ --benchmark-only -s

Set ``REPRO_BENCH_JOBS=N`` to shard the run loops across N worker
processes (0 = one per CPU).  The regenerated artefacts — and hence
every benchmark assertion — are identical at any job count; only the
timed wall-clock changes, e.g.::

    REPRO_BENCH_JOBS=4 pytest benchmarks/bench_table5_campaign.py -s
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.parallel import ParallelConfig
from repro.scale import SMOKE

try:
    import pytest_benchmark  # noqa: F401
except ImportError:
    # Without the pytest-benchmark plugin (e.g. the minimal CI
    # environment) the artefact checks still matter; substitute a
    # fixture that runs the workload once, untimed.
    class _BenchmarkShim:
        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, rounds=1,
                     iterations=1, **_ignored):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _BenchmarkShim()


@pytest.fixture(scope="session")
def bench_json():
    """Session-wide JSON record emitter.

    Benchmarks deposit structured measurements into the yielded dict
    (``bench_json["name"] = {...}``); at session end the collected
    records are written to the path named by ``REPRO_BENCH_JSON`` (e.g.
    ``REPRO_BENCH_JSON=BENCH_throughput.json``).  Without the variable
    the records are simply discarded, so the benchmarks run unchanged
    in plain interactive use.

    An existing file is merged into, not overwritten, so separate
    benchmark invocations (e.g. the throughput and dist-scaling CI
    steps) can deposit into one artefact; records from this session win
    on key collisions.
    """
    records: dict[str, object] = {}
    yield records
    path = os.environ.get("REPRO_BENCH_JSON")
    if path and records:
        merged: dict[str, object] = {}
        try:
            with open(path, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
            if isinstance(existing, dict):
                merged.update(existing)
        except (OSError, ValueError):
            pass
        merged.update(records)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")


@pytest.fixture
def bench_jobs():
    """Worker processes for the benchmark run loops (REPRO_BENCH_JOBS)."""
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture
def bench_parallel(bench_jobs):
    """ParallelConfig shared by every benchmark harness."""
    return ParallelConfig(jobs=bench_jobs)


@pytest.fixture
def bench_scale(bench_jobs):
    """Scale used by the benchmark harness (kept small; the CLI can
    regenerate any artefact at ``default`` or ``paper`` scale)."""
    return dataclasses.replace(SMOKE, jobs=bench_jobs)


@pytest.fixture
def tiny_scale(bench_jobs):
    """Extra-small grids for the heaviest pipelines."""
    return dataclasses.replace(
        SMOKE,
        jobs=bench_jobs,
        max_distance=192,
        distance_step=32,
        max_location=160,
        location_step=16,
        executions=40,
        seq_distance_step=64,
        seq_executions=48,
        max_sequence_length=4,
        spread_distance_step=32,
        spread_executions=96,
        max_spread=12,
        campaign_runs=12,
        stability_runs=60,
    )
