"""Figure 5: the cost of fences (Sec. 6).

Measures native runtime (and, on sensor-equipped chips, energy) of the
no/emp/cons fencing strategies and checks the paper's qualitative
findings: fences never reduce cost, conservative fencing costs more than
empirical fencing, and old (Fermi) chips pay the most.

Cost measurement repeats runs until enough *passing* executions
accumulate — a sequentially dependent loop — so it deliberately stays
serial and ignores ``REPRO_BENCH_JOBS``.
"""

import statistics

from repro.apps import get_application
from repro.chips import get_chip
from repro.costs import figure5_points, overhead_summary
from repro.costs.measure import FencingStrategy
from repro.reporting.tables import render_table

APPS = ("cbe-dot", "cbe-ht", "sdk-red", "cub-scan", "tpo-tm")
CHIPS = ("K20", "C2075")


def _measure():
    apps = [get_application(a) for a in APPS]
    chips = [get_chip(c) for c in CHIPS]
    return figure5_points(apps, chips, runs=6, seed=4)


def test_fig5_cost(benchmark):
    points = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rows = [
        {
            "chip": p.chip,
            "app": p.app,
            "strategy": p.strategy.value,
            "runtime +%": round(p.runtime_overhead_pct, 1),
            "energy +%": (
                round(e, 1)
                if (e := p.energy_overhead_pct) is not None
                else "-"
            ),
        }
        for p in points
    ]
    print()
    print(render_table(rows, title="Figure 5: fence cost points"))
    summary = overhead_summary(points)
    print(render_table(
        [{"strategy": k, **{m: round(v, 1) for m, v in s.items()}}
         for k, s in summary.items()],
        title="Overhead summary",
    ))

    # No points below the diagonal (fences never decrease cost).
    for p in points:
        assert p.fenced_runtime_ms >= p.baseline_runtime_ms * 0.97

    # Conservative fences cost more than empirical fences.
    emp = [p for p in points if p.strategy is FencingStrategy.EMPIRICAL]
    cons = [p for p in points
            if p.strategy is FencingStrategy.CONSERVATIVE]
    med = statistics.median
    assert med([p.runtime_overhead_pct for p in cons]) > \
        med([p.runtime_overhead_pct for p in emp])

    # The Fermi chip pays more than the Kepler chip for cons fences.
    fermi = med([p.runtime_overhead_pct for p in cons
                 if p.chip == "C2075"])
    kepler = med([p.runtime_overhead_pct for p in cons
                  if p.chip == "K20"])
    assert fermi > kepler
