"""Table 4: the application case studies, plus a correctness smoke run
of every application on the SC reference chip (one run per app — too
little work to shard, so ``REPRO_BENCH_JOBS`` has no effect here)."""

from repro.apps import all_applications
from repro.apps.base import run_application
from repro.chips import SC_REFERENCE
from repro.reporting.experiments import table4


def _smoke_all():
    results = {}
    for app in all_applications():
        results[app.name] = run_application(app, SC_REFERENCE, seed=1).ok
    return results


def test_table4(benchmark):
    results = benchmark.pedantic(_smoke_all, rounds=1, iterations=1)
    print()
    print(table4())
    print()
    print("SC smoke run:", results)
    assert all(results.values())
    assert len(results) == 10
