"""Table 2: the full tuning pipeline rediscovers the shipped parameters.

Runs patch finding, sequence scoring and spread finding end to end for
one Kepler and one Fermi chip and checks the result against the paper's
Table 2 row (which our ``shipped_params`` mirrors).  The full 7-chip
table is available via ``gpu-wmm experiment table2 --scale default``.

The tuning grids inherit ``REPRO_BENCH_JOBS`` through the scale's
``jobs`` knob; the discovered parameters are identical at any job count.
"""

import dataclasses

import pytest

from repro.chips import get_chip
from repro.reporting.tables import render_table
from repro.tuning import shipped_params, tune_chip


@pytest.mark.parametrize("chip_name", ["Titan", "C2075"])
def test_table2_pipeline(benchmark, tiny_scale, chip_name):
    chip = get_chip(chip_name)
    scale = dataclasses.replace(
        tiny_scale,
        max_sequence_length=4 if chip_name in ("Titan", "C2075") else 5,
    )
    result = benchmark.pedantic(
        tune_chip, args=(chip, scale), kwargs={"seed": 5},
        rounds=1, iterations=1,
    )
    print()
    print(render_table([result.table2_row()],
                       title=f"Table 2 row ({chip_name})"))
    truth = shipped_params(chip_name)
    assert result.config.patch_size == truth.patch_size
    assert result.config.sequence == truth.sequence
    assert result.config.spread == truth.spread
