"""Application-execution throughput: the SIMT-engine trajectory anchor.

The litmus runner covers the paper's Sec. 3 tuning loops; everything
else — the Sec. 4 application campaigns, Sec. 5 empirical fence
insertion and the Sec. 6 cost study — multiplies application
runs/second through the SIMT engine.  This benchmark measures the two
shapes those harnesses actually execute:

* one sys-str campaign cell (cbe-dot on K20 under the tuned ``sys-str+``
  environment) through the batch driver
  (:class:`repro.apps.base.ApplicationBatch`) and, for comparison, the
  one-shot :func:`run_application` path;
* one empirical fence-insertion reduction (Algorithm 1 on cbe-dot/K20
  at a reduced scale), reported as check-runs/second.

Measurements land in ``BENCH_throughput.json`` via the ``bench_json``
emitter, merged with the litmus numbers when both files run in one
pytest session::

    REPRO_BENCH_JSON=BENCH_throughput.json pytest \
        benchmarks/bench_throughput.py benchmarks/bench_app_throughput.py -s

Each measurement re-checks its fixed-seed statistics against golden
values captured from the pre-batch engine, so a throughput win can
never come from silently changing the model (the full pinning lives in
``tests/test_golden_stats.py``).

``reference.pre_pr_app_runs_per_sec`` is the pre-overhaul engine
measured on this PR's development machine (best of three 100-run
timings, same workload); the overhaul measured ~2.2x that on the same
machine.  The ratio is only meaningful for runs on comparable hardware —
the JSON records the current machine's absolute numbers.
"""

from __future__ import annotations

import dataclasses
import os
import time

from repro.apps.base import ApplicationBatch, run_application
from repro.apps.registry import get_application
from repro.chips import get_chip
from repro.hardening.insertion import empirical_fence_insertion
from repro.rng import derive_seed
from repro.scale import SMOKE
from repro.stress.environment import standard_environments
from repro.tuning.pipeline import shipped_params

#: Runs per timed campaign-cell measurement (override for quick smoke:
#: the golden-count cross-check only applies at the default size).
_RUNS = int(os.environ.get("REPRO_BENCH_APP_RUNS", "100"))
_SEED = 7
_REPS = 3

#: Errors over the 100-run cbe-dot/K20/sys-str+ workload at seed 7 on
#: the pre-batch engine (bit-identity makes this the current value too).
_GOLDEN_ERRORS = 18

#: Pre-overhaul throughput on the PR's development machine (see module
#: docstring); kept in the JSON so the perf trajectory has an anchor.
_REFERENCE = {
    "workload": "cbe-dot/K20 sys-str+ campaign cell, 100 runs, seed 7",
    "pre_pr_app_runs_per_sec": 64.4,
    "pre_pr_insertion_check_runs_per_sec": 61.7,
    "note": "best-of-3 on this PR's dev container; compare only on "
    "the same machine",
}


def _sys_str_env():
    return next(
        e
        for e in standard_environments(shipped_params("K20"))
        if e.name == "sys-str+"
    )


def _seeds():
    return [
        derive_seed(_SEED, "campaign", "sys-str+", i) for i in range(_RUNS)
    ]


def _best_rate(run, n):
    best = 0.0
    value = None
    for _ in range(_REPS):
        start = time.perf_counter()
        value = run()
        elapsed = time.perf_counter() - start
        best = max(best, n / elapsed)
    return best, value


def test_batch_sys_str_cell_throughput(bench_json):
    """The campaign-cell hot loop: one ApplicationBatch, many seeds."""
    app = get_application("cbe-dot")
    chip = get_chip("K20")
    env = _sys_str_env()
    seeds = _seeds()
    batch = ApplicationBatch(
        app, chip, stress_spec=env.strategy, randomise=env.randomise
    )
    batch.run(seeds[0])  # warm caches

    rate, errors = _best_rate(
        lambda: sum(batch.run(s).erroneous for s in seeds), _RUNS
    )
    if _RUNS == 100:
        assert errors == _GOLDEN_ERRORS  # golden tie-in
    assert rate > 0
    bench_json.setdefault("app_reference", _REFERENCE)
    bench_json["app_batch_sys_str"] = {
        "runs": _RUNS,
        "errors": errors,
        "runs_per_sec": round(rate, 1),
    }
    print(f"\nbatch sys-str cell: {rate:,.1f} runs/s (errors={errors})")


def test_single_run_sys_str_cell_throughput(bench_json):
    """The one-shot path (setup per run), for the amortisation delta."""
    app = get_application("cbe-dot")
    chip = get_chip("K20")
    env = _sys_str_env()
    seeds = _seeds()

    def run():
        return sum(
            run_application(
                app,
                chip,
                stress_spec=env.strategy,
                randomise=env.randomise,
                seed=s,
            ).erroneous
            for s in seeds
        )

    run_application(
        app, chip, stress_spec=env.strategy, randomise=env.randomise,
        seed=seeds[0],
    )
    rate, errors = _best_rate(run, _RUNS)
    if _RUNS == 100:
        assert errors == _GOLDEN_ERRORS
    bench_json["app_single_sys_str"] = {
        "runs": _RUNS,
        "errors": errors,
        "runs_per_sec": round(rate, 1),
    }
    print(f"\nsingle-run sys-str cell: {rate:,.1f} runs/s (errors={errors})")


def test_fence_insertion_reduction_throughput(bench_json):
    """One Algorithm-1 reduction (cbe-dot/K20) at a reduced scale.

    The reduction's wall-clock is dominated by its CheckApplication
    runs, so check-runs/second is the comparable rate; the converged
    fence set is asserted against the application's ground truth so the
    timing can never drift off the real workload.
    """
    scale = dataclasses.replace(SMOKE, stability_runs=40)
    app = get_application("cbe-dot")

    def run():
        return empirical_fence_insertion(
            app,
            get_chip("K20"),
            scale=scale,
            seed=_SEED,
            initial_iterations=8,
        )

    start = time.perf_counter()
    result = run()
    elapsed = time.perf_counter() - start
    assert result.converged
    assert result.reduced == app.required_sites()
    rate = result.check_runs / elapsed
    bench_json["fence_insertion_reduction"] = {
        "app": "cbe-dot",
        "chip": "K20",
        "check_runs": result.check_runs,
        "seconds": round(elapsed, 3),
        "check_runs_per_sec": round(rate, 1),
        "reduced_fences": sorted(result.reduced),
    }
    print(
        f"\nfence insertion: {result.check_runs} check runs in "
        f"{elapsed:.2f}s ({rate:,.1f} runs/s)"
    )
