"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that editable
installs work in offline environments whose setuptools predates PEP 660
(no `wheel` package available).
"""

from setuptools import setup

setup()
