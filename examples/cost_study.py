"""The cost of fences (paper Sec. 6, Fig. 5).

Benchmarks the seven distinct applications natively under three fencing
strategies — none, empirical (hardened) and conservative (a fence after
every access) — on two chips, reporting runtime and (where the chip has
power sensors) energy overheads.

Run with::

    python examples/cost_study.py
"""

import statistics

from repro import get_application, get_chip
from repro.costs import figure5_points, overhead_summary

APPS = ("cbe-ht", "cbe-dot", "ct-octree", "tpo-tm", "sdk-red",
        "cub-scan", "ls-bh")
CHIPS = ("K20", "C2075")
RUNS = 8


def main() -> None:
    apps = [get_application(a) for a in APPS]
    chips = [get_chip(c) for c in CHIPS]
    print(f"Measuring {len(apps)} applications x {len(chips)} chips x "
          f"3 fencing strategies ({RUNS} runs each)...\n")
    points = figure5_points(apps, chips, runs=RUNS, seed=7)

    header = (f"{'chip':>6s} {'app':>10s} {'strategy':>12s} "
              f"{'runtime +%':>11s} {'energy +%':>10s}")
    print(header)
    print("-" * len(header))
    for p in points:
        energy = p.energy_overhead_pct
        print(f"{p.chip:>6s} {p.app:>10s} {p.strategy.value:>12s} "
              f"{p.runtime_overhead_pct:>11.1f} "
              f"{energy if energy is None else round(energy, 1)!s:>10s}")

    print()
    for strategy, summary in overhead_summary(points).items():
        cells = ", ".join(f"{k}={v:.1f}" for k, v in summary.items())
        print(f"{strategy}: {cells}")
    print()
    print("Shape to compare with the paper: fences never reduce cost;")
    print("conservative fencing costs far more than empirical fencing;")
    print("the Fermi-era chip pays the most (the paper's extreme case")
    print("is C2075/cbe-ht).")


if __name__ == "__main__":
    main()
