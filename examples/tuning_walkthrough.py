"""Tuning walkthrough: rediscover a chip's Table 2 row (paper Sec. 3).

Treats the Tesla C2075 as an unknown chip and runs the three tuning
stages the paper describes:

1. patch finding     — the critical patch size (Sec. 3.2, Fig. 3);
2. sequence scoring  — the most effective access sequence (Sec. 3.3);
3. spread finding    — how many regions to stress at once (Sec. 3.4).

The discovered parameters match the library's shipped Table 2 row.

Run with (takes a minute or two)::

    python examples/tuning_walkthrough.py
"""

import dataclasses

from repro import SMOKE, get_chip, shipped_params
from repro.reporting.figures import render_bars
from repro.stress.sequences import format_sequence
from repro.tuning import (
    critical_patch_size,
    scan_patches,
    score_sequences,
    score_spreads,
    select_sequence,
    select_spread,
)

CHIP = "C2075"
SCALE = dataclasses.replace(
    SMOKE,
    max_sequence_length=3,   # C2075's best sequence is short (ld st)
    seq_distance_step=64,
    seq_executions=32,
    max_distance=192,
    max_spread=8,
    spread_executions=40,
)


def main() -> None:
    chip = get_chip(CHIP)
    print(f"Tuning {chip.name} ({chip.architecture}) from scratch...")

    print("\n[1/3] patch finding")
    scan = scan_patches(chip, SCALE, seed=3)
    patch, per_test = critical_patch_size(scan)
    for test in ("MP", "LB"):
        for d in (0, 64, 128):
            print(render_bars(scan.row(test, d), label=f"{test} d={d}"))
    print(f"critical patch size: {patch} words (per test: {per_test})")

    print("\n[2/3] access-sequence scoring "
          f"({2 ** (SCALE.max_sequence_length + 1) - 2} sequences)")
    scores = score_sequences(chip, patch, SCALE, seed=3)
    sequence = select_sequence(scores)
    for test in scores.tests:
        top = scores.ranking(test)[:3]
        print(f"  {test} top-3: "
              + ", ".join(f"{format_sequence(s)}={v}" for s, v in top))
    print(f"selected sequence: {format_sequence(sequence)}")

    print("\n[3/3] spread finding")
    spread_scores = score_spreads(chip, patch, sequence, SCALE, seed=3)
    spread = select_spread(spread_scores)
    for test in spread_scores.tests:
        series = spread_scores.series(test)
        print(f"  {test}: "
              + " ".join(f"m={m}:{s}" for m, s in series))
    print(f"selected spread: {spread}")

    truth = shipped_params(CHIP)
    print("\nDiscovered vs shipped (paper Table 2):")
    print(f"  patch size: {patch} vs {truth.patch_size}")
    print(f"  sequence:   {format_sequence(sequence)} "
          f"vs {truth.sequence_notation}")
    print(f"  spread:     {spread} vs {truth.spread}")


if __name__ == "__main__":
    main()
