"""Litmus survey: weak behaviours across chips and distances (Sec. 3).

Runs every test in the litmus registry — the paper's MP/LB/SB triple
plus fenced variants, coherence tests and 3/4-thread idioms — on
several chips, natively and under tuned stressing, across a range of
distances between the communication locations.  The registry is
enumerated dynamically, so tests added to ``repro.litmus.tests`` appear
here without changes.  Reproduces the qualitative structure of the
paper's Fig. 3 (no weak behaviour below the critical patch size, strong
rates above it, store-only stressing useless) and extends it: fenced
variants show strictly lower rates than their bases, coherence tests
stay silent everywhere.

Run with::

    python examples/litmus_survey.py
"""

from repro import get_chip, run_litmus
from repro.litmus import ALL_TESTS
from repro.stress.strategies import FixedLocationStress, NoStress
from repro.stress.sequences import format_sequence

EXECUTIONS = 80
CHIPS = ("Titan", "C2075", "980")


def main() -> None:
    for chip_name in CHIPS:
        chip = get_chip(chip_name)
        patch = chip.patch_size
        seq = chip.best_sequence
        stress = FixedLocationStress((0, 2 * patch), seq)
        stores = FixedLocationStress((0, 2 * patch), ("st", "st", "st"))
        print(f"=== {chip.name} (critical patch size {patch}, "
              f"sigma = {format_sequence(seq)}) ===")
        header = f"{'test':>6s} {'d':>4s} {'native':>8s} " \
                 f"{'tuned':>8s} {'st3':>8s}"
        print(header)
        for test in ALL_TESTS:
            for d in (0, patch // 2, 2 * patch):
                native = run_litmus(chip, test, d, NoStress(),
                                    EXECUTIONS, seed=1)
                tuned = run_litmus(chip, test, d, stress,
                                   EXECUTIONS, seed=1)
                st3 = run_litmus(chip, test, d, stores,
                                 EXECUTIONS, seed=1)
                print(f"{test.name:>6s} {d:>4d} "
                      f"{native.weak:>8d} {tuned.weak:>8d} "
                      f"{st3.weak:>8d}")
        print()
    print(f"(counts out of {EXECUTIONS} executions; d is the distance "
          f"in words between the\ncommunication locations — note the "
          f"silence below the patch size, the fenced\nvariants' "
          f"suppression, and the always-silent coherence tests.  The "
          f"980's rare\nMP leak at d = 0 needs larger samples; see "
          f"tests/test_litmus.py.)")


if __name__ == "__main__":
    main()
