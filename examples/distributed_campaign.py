"""Distributed campaign execution with repro.dist.

The paper's campaigns ran for an hour per (chip, application,
environment) cell across seven GPUs — a scale that wants more than one
machine.  This walkthrough runs a Table 5 campaign through the
distributed coordinator three ways and checks the headline property
each time: the merged result is **byte-identical** to the serial run,
because every work unit seeds from its global grid coordinates and the
merge is exact by content key.

1. the one-liner: ``DistributedSubmit`` spawns two localhost socket
   workers (what ``gpu-wmm experiment table5 --dist 2`` does);
2. worker churn: a worker that executes one unit and leaves, another
   that is killed outright mid-lease — the coordinator reassigns and
   the campaign still completes exactly;
3. distributed + durable: the same coordinator streaming every merged
   record into a run ledger, then re-rendering with zero simulation.

Run with::

    python examples/distributed_campaign.py
"""

import dataclasses
import shutil
import signal
import subprocess
import tempfile
import threading
import time
from pathlib import Path

from repro.chips import get_chip
from repro.dist import Coordinator, DistributedSubmit, worker_command
from repro.dist.submit import _worker_env
from repro.reporting.experiments import run_experiment
from repro.scale import SMOKE
from repro.store import RunLedger
from repro.testing.campaign import run_campaign

SCALE = dataclasses.replace(SMOKE, campaign_runs=8)
CHIPS = ("K20",)
ENVIRONMENTS = ("no-str-", "sys-str+")


def main() -> None:
    print("1. Serial reference run...")
    serial = run_experiment(
        "table5", scale=SCALE, seed=7, chips=CHIPS,
        environments=ENVIRONMENTS,
    )

    print("2. The same campaign through two localhost socket workers...")
    distributed = run_experiment(
        "table5", scale=SCALE, seed=7, chips=CHIPS,
        environments=ENVIRONMENTS, dist=2,
    )
    assert distributed == serial, "distributed must be byte-identical"
    print("   byte-identical to serial: yes")

    print("3. Worker churn: one dies mid-lease, one joins late...")
    chip = get_chip("K20")
    args = dict(
        chips=[chip], environments=list(ENVIRONMENTS), scale=SCALE, seed=7
    )
    reference = run_campaign(**args)

    def churny_submit(units, config, on_record):
        coordinator = Coordinator(
            units, on_record=on_record, log=lambda m: print(f"   [coord] {m}")
        )
        host, port = coordinator.bind()
        env = _worker_env()
        # A deliberately slow worker that will be SIGKILLed holding a
        # lease, and a healthy one that finishes the plan.
        doomed = subprocess.Popen(
            worker_command(host, port, "doomed")
            + ["--delay", "0.4"],
            env=env,
        )
        survivor = subprocess.Popen(
            worker_command(host, port, "survivor"), env=env
        )

        def assassinate():
            time.sleep(1.5)
            doomed.send_signal(signal.SIGKILL)
            print("   [demo] kill -9 sent to the doomed worker")

        killer = threading.Thread(target=assassinate, daemon=True)
        killer.start()
        try:
            return coordinator.serve()
        finally:
            killer.join()
            doomed.wait()
            if survivor.poll() is None:
                survivor.terminate()
            survivor.wait()

    churned = run_campaign(**args, submit=churny_submit)
    assert churned == reference, "reassigned leases must merge exactly"
    print("   campaign completed despite the kill; results exact: yes")

    print("4. Distributed + durable: streaming merges into a ledger...")
    root = Path(tempfile.mkdtemp(prefix="gpu-wmm-dist-"))
    try:
        ledger_dir = root / "ledger"
        ledgered = run_experiment(
            "table5", scale=SCALE, seed=7, chips=CHIPS,
            environments=ENVIRONMENTS, dist=2, out=str(ledger_dir),
        )
        assert ledgered == serial
        print(
            "   ledger after the distributed run: "
            f"{RunLedger.open(ledger_dir).counts_by_kind()}"
        )
        again = run_experiment(
            "table5", scale=SCALE, seed=7, chips=CHIPS,
            environments=ENVIRONMENTS, resume=str(ledger_dir),
        )
        assert again == serial
        print("   re-rendered from the ledger with zero runs: yes")
    finally:
        shutil.rmtree(root)

    print()
    print(serial)
    print("CLI equivalents:")
    print("  gpu-wmm experiment table5 --dist 2")
    print("  gpu-wmm coordinate table5 --host 0.0.0.0 --port 7077"
          " --out ledger/")
    print("  gpu-wmm worker --connect coordinator:7077 --jobs 0")
    # DistributedSubmit is the programmatic one-liner behind --dist:
    print("  (python)  run_campaign(..., submit=DistributedSubmit(workers=2))")
    assert DistributedSubmit(workers=2).workers == 2


if __name__ == "__main__":
    main()
