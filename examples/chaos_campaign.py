"""Chaos-testing a distributed campaign with repro.faults.

The distributed layer promises that its merged output is byte-identical
to a serial run *no matter what fails underneath it*: workers crashing,
the coordinator restarting, ledger segments corrupting on disk.  This
walkthrough makes that promise falsifiable.  A :class:`FaultPlan` is a
seeded, declarative list of failures to inject at named sites; the
chaos harness runs a Table 5 campaign under the plan and diffs the
result against a fault-free serial reference.

The plan used here stacks three independent disasters:

1. a **poison unit** — one campaign shard raises on every worker that
   tries it, until its attempt budget quarantines it (the harness then
   repairs it serially, with injection suppressed);
2. a **coordinator restart** after the third merged result — workers
   ride out the outage with backoff and reconnect, and the restarted
   coordinator rebuilds its lease table from merged records;
3. a **corrupted ledger checkpoint** — one record's line on disk is
   replaced with garbage; ``verify``/``salvage`` detect it, quarantine
   the damaged segment and recover every intact record around it.

Same plan + same seed = same injection trace, so a chaos failure is
re-runnable exactly.

Run with::

    python examples/chaos_campaign.py
"""

import dataclasses
import shutil
import tempfile
from pathlib import Path

from repro.apps.registry import all_applications
from repro.faults import FaultPlan, FaultSpec, run_chaos
from repro.scale import SMOKE
from repro.store.records import campaign_shard_key

SCALE = dataclasses.replace(SMOKE, campaign_runs=8)
CHIPS = ("K20",)
ENVIRONMENTS = ("no-str-", "sys-str+")
SEED = 7


def main() -> None:
    apps = [app.name for app in all_applications()]
    runs = SCALE.campaign_runs
    # Content keys make targeting exact: these are the very records the
    # campaign will produce, so the plan poisons one specific shard and
    # corrupts another's checkpoint line — deterministically.
    poison = campaign_shard_key(
        CHIPS[0], apps[0], "sys-str+", runs, SEED, 0, runs
    )
    corrupt = campaign_shard_key(
        CHIPS[0], apps[1], "no-str-", runs, SEED, 0, runs
    )
    plan = FaultPlan(
        name="walkthrough",
        seed=41,
        specs=(
            FaultSpec("unit.execute", "raise", match=poison, role="worker"),
            FaultSpec(
                "coordinator.merge", "restart", skip=2, max_fires=1,
                role="coordinator",
            ),
            FaultSpec(
                "ledger.checkpoint", "corrupt", match=corrupt,
                role="coordinator",
            ),
        ),
    )

    out = Path(tempfile.mkdtemp(prefix="chaos-example-")) / "ledger"
    try:
        print(f"Running table5 under plan {plan.name!r}...")
        report = run_chaos(
            "table5",
            plan,
            scale=SCALE,
            seed=SEED,
            workers=2,
            out=str(out),
            chips=CHIPS,
            environments=ENVIRONMENTS,
        )
        print(report.summary())
        assert report.identical, "chaos output must match serial"
        assert set(report.quarantined) == {poison}
        assert report.salvage is not None
        assert report.salvage["recovered"] > 0
        print()
        print("Injection trace (site, kind, draw):")
        for event in report.trace:
            print(
                f"  {event['site']:18s} {event['kind']:8s} "
                f"draw={event['draw']}"
            )
        print()
        print(
            "The campaign survived a poison unit, a coordinator "
            "restart and on-disk corruption — output byte-identical "
            "to the fault-free serial run."
        )
    finally:
        shutil.rmtree(out.parent, ignore_errors=True)


if __name__ == "__main__":
    main()
