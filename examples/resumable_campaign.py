"""Durable, resumable campaigns with the run ledger (repro.store).

The paper's tables are derived from archived campaign logs, not
re-measured hardware.  This walkthrough gives the reproduction the same
workflow: a Table 5 campaign checkpoints every completed shard into an
append-only JSONL ledger, an (artificially) interrupted run is resumed
bit-identically, and the finished ledger regenerates the table with
zero simulation runs.

Run with::

    python examples/resumable_campaign.py
"""

import dataclasses
import shutil
import tempfile
from pathlib import Path

from repro.reporting.experiments import run_experiment
from repro.scale import SMOKE
from repro.store import RunLedger, campaign_cells

SCALE = dataclasses.replace(SMOKE, campaign_runs=8)
CHIPS = ("K20",)
ENVIRONMENTS = ("no-str-", "sys-str+")


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="gpu-wmm-ledger-"))
    ledger_dir = root / "ledger"

    print("1. Cold reference run (no ledger)...")
    cold = run_experiment(
        "table5", scale=SCALE, seed=7, chips=CHIPS,
        environments=ENVIRONMENTS,
    )

    print("2. Campaign writing to the ledger, interrupted mid-run...")
    import repro.testing.campaign as campaign
    from repro.parallel import run_units

    real_submit_units = campaign.submit_units

    def interrupting_submit_units(units, config, ledger, submit=None):
        count = 0

        def interrupting_submit(batch, cfg, on_record):
            def counting(index, record):
                nonlocal count
                if on_record is not None:
                    on_record(index, record)
                count += 1
                if count >= 2:  # simulate a kill after two shards
                    raise KeyboardInterrupt

            return run_units(batch, cfg, counting)

        return real_submit_units(units, config, ledger, interrupting_submit)

    campaign.submit_units = interrupting_submit_units
    try:
        run_experiment(
            "table5", scale=SCALE, seed=7, chips=CHIPS,
            environments=ENVIRONMENTS, out=str(ledger_dir),
        )
    except KeyboardInterrupt:
        print("   ... interrupted (as planned)")
    finally:
        campaign.submit_units = real_submit_units

    survivors = RunLedger.open(ledger_dir)
    print(f"   ledger after the kill: {survivors.counts_by_kind()}")

    print("3. Resuming: only the missing run ranges execute...")
    resumed = run_experiment(
        "table5", scale=SCALE, seed=7, chips=CHIPS,
        environments=ENVIRONMENTS, resume=str(ledger_dir),
    )
    assert resumed == cold, "resumed output must be byte-identical"
    print("   byte-identical to the uninterrupted run: yes")

    print("4. Rendering again from the complete ledger (zero runs)...")
    again = run_experiment(
        "table5", scale=SCALE, seed=7, chips=CHIPS,
        environments=ENVIRONMENTS, resume=str(ledger_dir),
    )
    assert again == cold
    final = RunLedger.open(ledger_dir)
    print(f"   final ledger: {final.counts_by_kind()}")
    print(f"   {len(campaign_cells(final))} campaign cells on disk, e.g.")
    for cell in campaign_cells(final)[:3]:
        print(f"     {cell}")
    print()
    print(again)
    print("CLI equivalent:")
    print("  gpu-wmm experiment table5 --scale smoke --out ledger/")
    print("  gpu-wmm experiment table5 --scale smoke --resume ledger/")
    shutil.rmtree(root)


if __name__ == "__main__":
    main()
