"""Quickstart: the paper's running example (Sec. 1, Fig. 1).

The cbe-dot application — the dot product of *CUDA by Example*, whose
final reduction is guarded by a custom spinlock — never fails when run
natively, so a developer might conclude it is correct.  Under the tuned
testing environment (sys-str+), the unlock overtakes the critical-section
store and the application errs in a sizeable fraction of runs.

Run with::

    python examples/quickstart.py
"""

from repro import (
    TunedStress,
    get_application,
    get_chip,
    run_application,
    shipped_params,
)

RUNS = 60


def error_rate(app, chip, stress_spec=None, randomise=False):
    errors = 0
    for seed in range(RUNS):
        run = run_application(
            app, chip, stress_spec=stress_spec, randomise=randomise,
            seed=seed,
        )
        errors += run.erroneous
    return errors


def main() -> None:
    chip = get_chip("K20")
    app = get_application("cbe-dot")
    print(f"Application: {app.name} — {app.description}")
    print(f"Chip: {chip.name} ({chip.architecture})")
    print(f"Post-condition: {app.postcondition}")
    print()

    native = error_rate(app, chip)
    print(f"native (no-str-):      {native:3d}/{RUNS} erroneous runs")

    stress = TunedStress(shipped_params(chip.short_name))
    stressed = error_rate(app, chip, stress, randomise=True)
    print(f"tuned stress (sys-str+): {stressed:3d}/{RUNS} erroneous runs")

    hardened = 0
    for seed in range(RUNS):
        run = run_application(
            app, chip, stress_spec=stress, randomise=True, seed=seed,
            fence_sites=app.required_sites(),
        )
        hardened += run.erroneous
    print(f"hardened (+1 fence):     {hardened:3d}/{RUNS} erroneous runs")
    print()
    print(
        "The single fence (after the critical-section store, i.e. at "
        "the start\nof unlock) is exactly what the paper's empirical "
        "fence insertion finds."
    )


if __name__ == "__main__":
    main()
