"""Fence hardening walkthrough (paper Sec. 5).

Runs empirical fence insertion (Algorithm 1) on cbe-dot and cbe-ht on
GTX Titan: starting from a fence after every memory access, binary and
linear reduction converge to a minimal empirically stable set — a single
fence for each of these applications, matching the paper's Table 6 —
and the hardened application survives the aggressive sys-str+
environment.

Run with::

    python examples/fence_hardening.py
"""

import dataclasses

from repro import (
    SMOKE,
    TunedStress,
    empirical_fence_insertion,
    get_application,
    get_chip,
    run_application,
    shipped_params,
)

SCALE = dataclasses.replace(SMOKE, stability_runs=40)
VALIDATION_RUNS = 40


def main() -> None:
    chip = get_chip("Titan")
    stress = TunedStress(shipped_params(chip.short_name))
    for app_name in ("cbe-dot", "cbe-ht"):
        app = get_application(app_name)
        print(f"=== {app.name} on {chip.name} ===")
        result = empirical_fence_insertion(app, chip, scale=SCALE, seed=1)
        print(f"initial fences: {result.initial_fences} "
              f"(one per memory access)")
        print(f"reduced fences: {len(result.reduced)}")
        for site in sorted(result.reduced):
            print(f"  fence after {site}")
        print(f"converged: {result.converged} "
              f"({result.check_runs} CheckApplication runs, "
              f"{result.wall_seconds:.1f}s)")

        errors = sum(
            run_application(
                app, chip, stress_spec=stress, randomise=True, seed=i,
                fence_sites=result.reduced,
            ).erroneous
            for i in range(VALIDATION_RUNS)
        )
        print(f"hardened validation: {errors}/{VALIDATION_RUNS} "
              f"erroneous under sys-str+")
        print()
    print("Note: as the paper stresses, this is testing, not")
    print("verification — the fences harden, they do not prove.")


if __name__ == "__main__":
    main()
