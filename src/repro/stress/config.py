"""Tuned stressing parameters — a row of the paper's Table 2."""

from __future__ import annotations

from dataclasses import dataclass

from .sequences import format_sequence


@dataclass(frozen=True)
class StressConfig:
    """Per-chip stressing parameters found by the tuning pipeline.

    * ``patch_size`` — the chip's critical patch size, in words.
    * ``sequence`` — the most effective access sequence.
    * ``spread`` — how many critical-patch-sized regions to stress
      simultaneously.
    * ``scratch_regions`` — regions available in the scratchpad (the
      paper's ``M``); the spread locations are sampled from these.
    """

    chip: str
    patch_size: int
    sequence: tuple[str, ...]
    spread: int
    scratch_regions: int = 64

    def __post_init__(self) -> None:
        if self.patch_size <= 0:
            raise ValueError("patch_size must be positive")
        if not 1 <= self.spread <= self.scratch_regions:
            raise ValueError("spread must be in [1, scratch_regions]")

    @property
    def sequence_notation(self) -> str:
        """Run-length notation used by the paper (e.g. ``ld st2 ld``)."""
        return format_sequence(self.sequence)

    @property
    def scratch_words(self) -> int:
        """Scratchpad size implied by the region count."""
        return self.patch_size * self.scratch_regions

    def table2_row(self) -> dict[str, object]:
        """This configuration as a row of the paper's Table 2."""
        return {
            "chip": self.chip,
            "c. patch size": self.patch_size,
            "sequence": self.sequence_notation,
            "spread": self.spread,
        }
