"""Testing environments: stressing strategy × thread randomisation.

The paper's Sec. 4.2 evaluates eight environments per chip —
``{no, sys, rand, cache}-str`` × ``{+, -}`` (thread randomisation on or
off).  ``sys-str`` needs the chip's tuned parameters (Table 2), supplied
as a :class:`~repro.stress.config.StressConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import StressConfig
from .strategies import CacheStress, NoStress, RandomStress, TunedStress


@dataclass(frozen=True)
class TestingEnvironment:
    """One cell of the paper's environment grid (e.g. ``sys-str+``)."""

    strategy: object
    randomise: bool

    @property
    def name(self) -> str:
        return f"{self.strategy.name}{'+' if self.randomise else '-'}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Environment order used in the paper's Table 5 columns.
ENVIRONMENT_ORDER = (
    "no-str-",
    "no-str+",
    "sys-str-",
    "sys-str+",
    "rand-str-",
    "rand-str+",
    "cache-str-",
    "cache-str+",
)


def standard_environments(
    tuned: StressConfig,
) -> list[TestingEnvironment]:
    """The eight testing environments, in Table 5 column order."""
    strategies = {
        "no-str": NoStress(),
        "sys-str": TunedStress(tuned),
        "rand-str": RandomStress(),
        "cache-str": CacheStress(),
    }
    envs = []
    for name in ENVIRONMENT_ORDER:
        base, sign = name[:-1], name[-1]
        envs.append(
            TestingEnvironment(
                strategy=strategies[base], randomise=(sign == "+")
            )
        )
    return envs
