"""Thread randomisation (paper Sec. 3.5).

GPU thread ids are randomised subject to the GPU programming model:

* block membership is respected — threads sharing a block before
  randomisation share a (possibly different) block afterwards, which is
  required for barriers to stay well defined; and
* warp membership is respected — co-warp threads stay co-warp, since
  applications may exploit implicit intra-warp synchronisation.

:func:`randomise_thread_ids` produces the id permutation; the engine
realises its scheduling consequences by shuffling block-to-SM placement
and de-synchronising warp progress (see
:mod:`repro.gpu.scheduler`).
"""

from __future__ import annotations

import numpy as np


def randomise_thread_ids(
    grid_dim: int,
    block_dim: int,
    warp_size: int,
    rng: np.random.Generator,
) -> list[int]:
    """Permutation of global thread ids respecting warps and blocks.

    Returns ``perm`` with ``perm[old_gid] = new_gid``.  The permutation
    composes three legal shuffles: blocks within the grid, warps within
    each block, and lanes within each warp.
    """
    if grid_dim <= 0 or block_dim <= 0 or warp_size <= 0:
        raise ValueError("grid, block and warp sizes must be positive")
    warps_per_block = -(-block_dim // warp_size)

    block_perm = rng.permutation(grid_dim)
    perm = [0] * (grid_dim * block_dim)
    # Only full warps are interchangeable; a short tail warp (when
    # block_dim is not a multiple of warp_size) keeps its position.
    n_full = block_dim // warp_size
    for old_block in range(grid_dim):
        new_block = int(block_perm[old_block])
        full_perm = rng.permutation(n_full) if n_full else []
        for old_warp in range(warps_per_block):
            if old_warp < n_full:
                new_warp = int(full_perm[old_warp])
            else:
                new_warp = old_warp
            lo = old_warp * warp_size
            hi = min(lo + warp_size, block_dim)
            lanes = rng.permutation(hi - lo)
            for i, old_lane in enumerate(range(lo, hi)):
                new_lane = new_warp * warp_size + int(lanes[i])
                old_gid = old_block * block_dim + old_lane
                perm[old_gid] = new_block * block_dim + new_lane
    return perm


def respects_blocks(
    perm: list[int], grid_dim: int, block_dim: int
) -> bool:
    """Check the block-membership constraint of a permutation."""
    for block in range(grid_dim):
        gids = range(block * block_dim, (block + 1) * block_dim)
        targets = {perm[g] // block_dim for g in gids}
        if len(targets) != 1:
            return False
    return True


def respects_warps(
    perm: list[int], grid_dim: int, block_dim: int, warp_size: int
) -> bool:
    """Check the warp-membership constraint of a permutation."""
    for block in range(grid_dim):
        warps_per_block = -(-block_dim // warp_size)
        for warp in range(warps_per_block):
            lo = warp * warp_size
            hi = min(lo + warp_size, block_dim)
            gids = [block * block_dim + t for t in range(lo, hi)]
            targets = {(perm[g] % block_dim) // warp_size for g in gids}
            if len(targets) != 1:
                return False
    return True
