"""Memory stressing strategies and testing environments (paper Sec. 3-4).

The paper compares four stressing strategies — the systematically tuned
``sys-str``, random ``rand-str``, L2-sized ``cache-str`` and native
``no-str`` — each with thread randomisation on (``+``) or off (``-``),
for eight testing environments in total.
"""

from .config import StressConfig
from .sequences import all_sequences, format_sequence, parse_sequence
from .strategies import (
    CacheStress,
    FixedLocationStress,
    NoStress,
    RandomStress,
    TunedStress,
    spec_from_json,
    spec_to_json,
)
from .randomisation import randomise_thread_ids
from .environment import TestingEnvironment, standard_environments

__all__ = [
    "StressConfig",
    "all_sequences",
    "format_sequence",
    "parse_sequence",
    "CacheStress",
    "FixedLocationStress",
    "NoStress",
    "RandomStress",
    "TunedStress",
    "spec_to_json",
    "spec_from_json",
    "randomise_thread_ids",
    "TestingEnvironment",
    "standard_environments",
]
