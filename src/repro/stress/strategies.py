"""Stressing strategies (paper Sec. 3 and Sec. 4.2).

Every strategy implements the *stress spec* protocol used by the litmus
runner and the application campaign::

    build(profile, scratch_base, scratch_size, rng) -> StressField
    stress_units(app_warps, rng) -> int   # scheduler dilution

``build`` is called once per execution, so randomised choices (number of
stressing threads, random spread locations) vary between runs exactly as
in the paper.

Stressing thread counts follow the paper's two regimes:

* litmus tuning — total threads between 50% and 100% of the chip's
  maximum resident threads (Sec. 3.2);
* application testing — stressing blocks between 15% and 50% of the
  application's blocks (Sec. 4.2), configured via ``threads_range``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

import numpy as np

from ..chips.profile import HardwareProfile
from ..errors import InvalidStressConfigError
from ..gpu.pressure import StressField
from .config import StressConfig

#: Mean sequence strength of uniformly random single accesses, as issued
#: by the rand-str strategy (a coin flip between one load and one store).
_RAND_STRENGTH = 0.5
#: Per-channel pressure exerted by walking an L2-sized scratchpad.
_CACHE_LEVEL = 0.26


def _sample_threads(
    profile: HardwareProfile,
    threads_range: tuple[int, int] | None,
    rng: np.random.Generator,
) -> int:
    if threads_range is None:
        lo = profile.max_resident_threads // 2
        hi = profile.max_resident_threads
    else:
        lo, hi = threads_range
    if hi <= lo:
        return max(lo, 1)
    return int(rng.integers(lo, hi + 1))


@dataclass(frozen=True)
class NoStress:
    """The ``no-str`` environment: run the application natively."""

    name: str = "no-str"

    def build(self, profile, scratch_base, scratch_size, rng) -> StressField:
        return StressField.zero(profile)

    def stress_units(self, app_warps: int, rng) -> int:
        return 0


@dataclass(frozen=True)
class FixedLocationStress:
    """Stress specific scratchpad offsets (tuning micro-benchmarks).

    This is the ⟨T_d, σ@l⟩ / ⟨T_d, σ@L⟩ shape from Sec. 3.2-3.4: the
    stressed locations are fixed, the thread count is random per run.
    """

    locations: tuple[int, ...]
    sequence: tuple[str, ...]
    threads_range: tuple[int, int] | None = None
    name: str = "fixed-str"

    def build(self, profile, scratch_base, scratch_size, rng) -> StressField:
        if any(loc < 0 or loc >= scratch_size for loc in self.locations):
            raise InvalidStressConfigError(
                f"stress locations {self.locations} outside scratchpad "
                f"of {scratch_size} words"
            )
        threads = _sample_threads(profile, self.threads_range, rng)
        return StressField.from_locations(
            profile,
            scratch_base,
            self.locations,
            profile.sequence_strength(self.sequence),
            threads,
        )

    def stress_units(self, app_warps: int, rng) -> int:
        return max(1, app_warps // 3)


@dataclass(frozen=True)
class TunedStress:
    """The ``sys-str`` strategy: per-chip tuned stressing (Sec. 3.5).

    Each execution stresses ``config.spread`` randomly chosen critical
    patch-sized regions of the scratchpad with the chip's most effective
    access sequence.
    """

    config: StressConfig
    threads_range: tuple[int, int] | None = None
    name: str = "sys-str"

    def build(self, profile, scratch_base, scratch_size, rng) -> StressField:
        regions = min(
            self.config.scratch_regions,
            scratch_size // self.config.patch_size,
        )
        if regions < self.config.spread:
            raise InvalidStressConfigError(
                f"scratchpad of {scratch_size} words has only {regions} "
                f"regions; spread {self.config.spread} impossible"
            )
        picks = rng.choice(regions, size=self.config.spread, replace=False)
        locations = [int(r) * self.config.patch_size for r in picks]
        threads = _sample_threads(profile, self.threads_range, rng)
        return StressField.from_locations(
            profile,
            scratch_base,
            locations,
            profile.sequence_strength(self.config.sequence),
            threads,
        )

    def stress_units(self, app_warps: int, rng) -> int:
        # Paper: stressing blocks are 15%-50% of the application blocks.
        frac = rng.uniform(0.15, 0.5)
        return max(1, int(round(frac * app_warps)))


@dataclass(frozen=True)
class RandomStress:
    """The ``rand-str`` strategy: random ops at random locations.

    Scatters accesses over the whole scratchpad, so no channel gets hot —
    the pressure is diffuse and mostly ineffective (paper Tab. 5).
    """

    threads_range: tuple[int, int] | None = None
    name: str = "rand-str"

    def build(self, profile, scratch_base, scratch_size, rng) -> StressField:
        threads = _sample_threads(profile, self.threads_range, rng)
        intensity = min(1.25, threads / 64.0)
        return StressField.diffuse(profile, _RAND_STRENGTH * intensity)

    def stress_units(self, app_warps: int, rng) -> int:
        frac = rng.uniform(0.15, 0.5)
        return max(1, int(round(frac * app_warps)))


@dataclass(frozen=True)
class CacheStress:
    """The ``cache-str`` strategy: walk an L2-sized scratchpad.

    Touches every channel at a moderate, even rate (cache thrashing);
    many hot channels means high dilution, so it is rarely effective —
    matching the paper's findings.
    """

    threads_range: tuple[int, int] | None = None
    name: str = "cache-str"

    def build(self, profile, scratch_base, scratch_size, rng) -> StressField:
        threads = _sample_threads(profile, self.threads_range, rng)
        level = _CACHE_LEVEL * min(1.0, threads / 128.0 + 0.5)
        return StressField.uniform(profile, level)

    def stress_units(self, app_warps: int, rng) -> int:
        frac = rng.uniform(0.15, 0.5)
        return max(1, int(round(frac * app_warps)))


#: Wire tags for the stress-spec codec, one per strategy class.
_SPEC_CLASSES = {
    "no": NoStress,
    "fixed": FixedLocationStress,
    "tuned": TunedStress,
    "random": RandomStress,
    "cache": CacheStress,
}
_SPEC_TAGS = {cls: tag for tag, cls in _SPEC_CLASSES.items()}


def _pair(value) -> tuple[int, int] | None:
    return None if value is None else (int(value[0]), int(value[1]))


def spec_to_json(spec) -> dict:
    """Serialise a stress spec to a JSON-safe dict.

    The codec exists so work units can cross process and machine
    boundaries as plain JSON (see :mod:`repro.parallel.plan`);
    :func:`spec_from_json` reconstructs a dataclass equal to the
    original, so seed-derived behaviour is identical on the far side.
    """
    try:
        tag = _SPEC_TAGS[type(spec)]
    except KeyError:
        raise InvalidStressConfigError(
            f"cannot serialise stress spec of type {type(spec).__name__}; "
            f"known: {', '.join(c.__name__ for c in _SPEC_TAGS)}"
        ) from None
    out: dict = {"type": tag}
    if isinstance(spec, FixedLocationStress):
        out["locations"] = list(spec.locations)
        out["sequence"] = list(spec.sequence)
    elif isinstance(spec, TunedStress):
        c = spec.config
        out["config"] = {
            "chip": c.chip,
            "patch_size": c.patch_size,
            "sequence": list(c.sequence),
            "spread": c.spread,
            "scratch_regions": c.scratch_regions,
        }
    if not isinstance(spec, NoStress) and spec.threads_range is not None:
        out["threads_range"] = list(spec.threads_range)
    return out


def spec_from_json(obj: dict):
    """Rebuild the stress spec serialised by :func:`spec_to_json`."""
    try:
        cls = _SPEC_CLASSES[obj["type"]]
    except (KeyError, TypeError):
        raise InvalidStressConfigError(
            f"malformed stress spec {obj!r}"
        ) from None
    if cls is NoStress:
        return NoStress()
    threads_range = _pair(obj.get("threads_range"))
    if cls is FixedLocationStress:
        return FixedLocationStress(
            locations=tuple(int(l) for l in obj["locations"]),
            sequence=tuple(str(s) for s in obj["sequence"]),
            threads_range=threads_range,
        )
    if cls is TunedStress:
        c = obj["config"]
        return TunedStress(
            config=StressConfig(
                chip=c["chip"],
                patch_size=c["patch_size"],
                sequence=tuple(str(s) for s in c["sequence"]),
                spread=c["spread"],
                scratch_regions=c["scratch_regions"],
            ),
            threads_range=threads_range,
        )
    return cls(threads_range=threads_range)


def with_threads_range(strategy, threads_range: tuple[int, int]):
    """Copy of ``strategy`` with an application-sized thread range."""
    if isinstance(strategy, NoStress):
        return strategy
    return replace(strategy, threads_range=threads_range)


def sequence_for(strategy) -> Sequence[str] | None:
    """The access sequence a strategy stresses with, if any."""
    if isinstance(strategy, FixedLocationStress):
        return strategy.sequence
    if isinstance(strategy, TunedStress):
        return strategy.config.sequence
    return None
