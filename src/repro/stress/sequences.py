"""Access sequences for stressing threads (paper Sec. 3.3).

An access sequence is a non-empty word over ``{ld, st}`` executed in the
stressing threads' loop body.  The paper writes them with run-length
notation — e.g. ``ld st2 ld`` for ``(ld, st, st, ld)`` — and enumerates
every sequence up to length ``N`` (63 for N = 5 including both orders of
every multiset; rotationally equivalent sequences are deliberately kept
distinct, since the paper found they can behave differently).
"""

from __future__ import annotations

import itertools
import re

from ..errors import InvalidSequenceError
from ..chips.profile import ACCESS_KINDS

_TOKEN_RE = re.compile(r"^(ld|st)(\d*)$")


def all_sequences(max_length: int) -> list[tuple[str, ...]]:
    """Every access sequence of length 1..max_length, in order."""
    if max_length < 1:
        raise InvalidSequenceError("max_length must be at least 1")
    sequences = []
    for length in range(1, max_length + 1):
        sequences.extend(itertools.product(ACCESS_KINDS, repeat=length))
    return sequences


def format_sequence(seq: tuple[str, ...]) -> str:
    """Run-length notation, e.g. ``('ld','st','st','ld') -> 'ld st2 ld'``."""
    if not seq:
        raise InvalidSequenceError("empty access sequence")
    parts = []
    for kind, group in itertools.groupby(seq):
        n = len(list(group))
        parts.append(kind if n == 1 else f"{kind}{n}")
    return " ".join(parts)


def parse_sequence(text: str) -> tuple[str, ...]:
    """Inverse of :func:`format_sequence` (``'ld3 st'`` etc.)."""
    seq: list[str] = []
    for token in text.split():
        match = _TOKEN_RE.match(token)
        if match is None:
            raise InvalidSequenceError(
                f"bad token {token!r} in access sequence {text!r}"
            )
        kind, count = match.group(1), match.group(2)
        seq.extend([kind] * (int(count) if count else 1))
    if not seq:
        raise InvalidSequenceError(f"empty access sequence {text!r}")
    return tuple(seq)
