"""Persistent run ledger: durable, resumable experiment results.

The paper's tables are derived from archived campaign logs, not from
live hardware at paper-writing time; this package gives the
reproduction the same property.  Experiment layers write every
completed :class:`LitmusResult` / :class:`CampaignCell` /
:class:`InsertionResult` / :class:`CostMeasurement` (plus per-shard
campaign checkpoints) into an append-only JSONL ledger keyed by a
deterministic content key, and the reporting layer renders tables and
figures straight from the ledger — interrupted campaigns resume by
replaying only the missing keys, bit-identically to a cold run.

See ``docs/ARCHITECTURE.md`` ("The run ledger") for the format and the
resume semantics, and ``gpu-wmm experiment ... --out/--resume`` for the
CLI surface.
"""

from .ledger import (
    LEDGER_FORMAT,
    QUARANTINE_DIR,
    LedgerWriter,
    RunLedger,
    salvage_ledger,
    verify_ledger,
)
from .records import (
    RECORD_KINDS,
    RunRecord,
    campaign_cell_key,
    campaign_shard_key,
    content_key,
    cost_key,
    decode,
    insertion_key,
    litmus_key,
    stress_token,
)
from .resume import (
    cached_or_run,
    campaign_cells,
    cost_measurements,
    insertion_results,
    ledgered_map,
    litmus_grid_counts,
    litmus_results,
    missing_ranges,
    submit_units,
)

__all__ = [
    "LEDGER_FORMAT",
    "QUARANTINE_DIR",
    "RunLedger",
    "LedgerWriter",
    "verify_ledger",
    "salvage_ledger",
    "RunRecord",
    "RECORD_KINDS",
    "content_key",
    "stress_token",
    "litmus_key",
    "campaign_cell_key",
    "campaign_shard_key",
    "insertion_key",
    "cost_key",
    "decode",
    "ledgered_map",
    "submit_units",
    "litmus_grid_counts",
    "missing_ranges",
    "cached_or_run",
    "litmus_results",
    "campaign_cells",
    "insertion_results",
    "cost_measurements",
]
