"""Ledger records: content keys and the domain-object codecs.

A :class:`RunRecord` is one JSONL line of the run ledger: a record
``kind``, a deterministic content ``key`` and a JSON-safe ``payload``
from which the original domain object is reconstructed exactly.  Four
result kinds cover the experiment layers —

* ``litmus``    — a :class:`~repro.litmus.results.LitmusResult`
  (survey runs and the tuning-grid points);
* ``campaign``  — a :class:`~repro.testing.campaign.CampaignCell`;
* ``insertion`` — a :class:`~repro.hardening.insertion.InsertionResult`;
* ``cost``      — a :class:`~repro.costs.measure.CostMeasurement`;

plus the checkpoint kind ``campaign-shard`` carrying one
:class:`~repro.parallel.merge.CellShard` worth of partial-cell
statistics, so an interrupted campaign resumes mid-cell.

Content keys are pure functions of ``(kind, chip, subject, environment,
scale, seed, backend)`` — everything that determines a result under the
global-index seeding contract — so "is this already computed?" is a set
lookup, and replaying only the missing keys reproduces a cold run bit
for bit.

This module deliberately imports no domain types at module level (the
domain layers import it); decoders resolve their classes lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Separator between the fixed key fields.
_SEP = ":"


def _clean(value: object) -> str:
    """One key field: colons and whitespace normalised away."""
    return str(value).replace(_SEP, "_").replace(" ", "-")


def content_key(
    kind: str,
    chip: str,
    subject: str,
    environment: str,
    scale: str,
    seed: int,
    backend: str = "direct",
) -> str:
    """The deterministic identity of one ledgered result.

    ``subject`` is the application or litmus-test name; ``environment``
    describes the stressing conditions (a testing-environment name, a
    stress-spec token or a fencing strategy); ``scale`` captures the
    sample-size knobs that shaped the result (run/execution counts,
    grid coordinates).
    """
    return _SEP.join(
        _clean(part)
        for part in (kind, chip, subject, environment, scale, f"s{seed}",
                     backend)
    )


def stress_token(spec: object) -> str:
    """A stable key token for a stressing strategy instance."""
    name = type(spec).__name__
    if name == "NoStress":
        return "no-str"
    if name == "FixedLocationStress":
        locs = ".".join(str(l) for l in spec.locations)
        return f"fix.l{locs}.{'-'.join(spec.sequence)}"
    if name == "TunedStress":
        c = spec.config
        return (
            f"sys-str.{c.chip}.p{c.patch_size}.{'-'.join(c.sequence)}"
            f".m{c.spread}.r{c.scratch_regions}"
        )
    if name == "RandomStress":
        return "rand-str"
    if name == "CacheStress":
        return "cache-str"
    return _clean(name.lower())


# -- key builders (one per record kind) --------------------------------

def litmus_key(
    chip: str,
    test: str,
    stress: str,
    distance: int,
    executions: int,
    seed: int,
    backend: str = "direct",
    randomise: bool = False,
) -> str:
    return content_key(
        "litmus", chip, test, stress,
        f"d{distance}.x{executions}.rnd{int(randomise)}", seed, backend,
    )


def campaign_cell_key(
    chip: str, app: str, environment: str, runs: int, seed: int
) -> str:
    return content_key(
        "campaign", chip, app, environment, f"r{runs}", seed, "engine"
    )


def campaign_shard_key(
    chip: str, app: str, environment: str, runs: int, seed: int,
    start: int, stop: int,
) -> str:
    return content_key(
        "campaign-shard", chip, app, environment,
        f"r{runs}.{start}-{stop}", seed, "engine",
    )


def insertion_key(
    chip: str, app: str, stability_runs: int, initial_iterations: int,
    max_restarts: int, seed: int,
) -> str:
    return content_key(
        "insertion", chip, app, "sys-str+",
        f"st{stability_runs}.it{initial_iterations}.mr{max_restarts}",
        seed, "engine",
    )


def cost_key(
    chip: str, app: str, strategy: str, runs: int, seed: int,
    fences: frozenset[str] | None = None,
) -> str:
    env = _clean(strategy)
    if fences is not None:
        env += ".f" + ("+".join(sorted(fences)) or "none")
    return content_key("cost", chip, app, env, f"r{runs}", seed, "engine")


@dataclass(frozen=True)
class RunRecord:
    """One ledger line: ``{"key": ..., "kind": ..., "payload": {...}}``."""

    key: str
    kind: str
    payload: dict[str, Any]

    @classmethod
    def from_json(cls, obj: object) -> "RunRecord":
        if (
            not isinstance(obj, dict)
            or not isinstance(obj.get("key"), str)
            or not isinstance(obj.get("kind"), str)
            or not isinstance(obj.get("payload"), dict)
        ):
            raise ValueError(f"malformed ledger record: {obj!r}")
        return cls(key=obj["key"], kind=obj["kind"], payload=obj["payload"])

    def to_json(self) -> dict[str, Any]:
        return {"key": self.key, "kind": self.kind, "payload": self.payload}


# -- codecs ------------------------------------------------------------

def encode_litmus(
    key: str, result, chip: str | None = None, seed: int | None = None
) -> RunRecord:
    """``chip`` and ``seed`` are not part of :class:`LitmusResult`, but
    callers know them and queries want to filter on them — store them
    alongside the result fields."""
    return RunRecord(
        key=key,
        kind="litmus",
        payload={
            "chip": chip,
            "seed": seed,
            "test": result.test,
            "distance": result.distance,
            "weak": result.weak,
            "executions": result.executions,
            "location": list(result.location),
            "backend": result.backend,
        },
    )


def decode_litmus(record: RunRecord):
    from ..litmus.results import LitmusResult

    p = record.payload
    return LitmusResult(
        test=p["test"],
        distance=p["distance"],
        weak=p["weak"],
        executions=p["executions"],
        location=tuple(p["location"]),
        backend=p["backend"],
    )


def encode_campaign_cell(key: str, cell) -> RunRecord:
    return RunRecord(
        key=key,
        kind="campaign",
        payload={
            "chip": cell.chip,
            "app": cell.app,
            "environment": cell.environment,
            "errors": cell.errors,
            "timeouts": cell.timeouts,
            "runs": cell.runs,
        },
    )


def decode_campaign_cell(record: RunRecord):
    from ..testing.campaign import CampaignCell

    p = record.payload
    return CampaignCell(
        chip=p["chip"],
        app=p["app"],
        environment=p["environment"],
        errors=p["errors"],
        timeouts=p["timeouts"],
        runs=p["runs"],
    )


def encode_campaign_shard(
    key: str, chip: str, app: str, environment: str, runs: int, seed: int,
    shard,
) -> RunRecord:
    """A partial-cell checkpoint.  Cell identity is stored by *name*
    (never by grid index — resumed runs may filter the grid
    differently)."""
    return RunRecord(
        key=key,
        kind="campaign-shard",
        payload={
            "chip": chip,
            "app": app,
            "environment": environment,
            "runs": runs,
            "seed": seed,
            "start": shard.start,
            "stop": shard.stop,
            "errors": shard.errors,
            "timeouts": shard.timeouts,
        },
    )


def decode_campaign_shard(record: RunRecord, cell: int = 0):
    """Rebuild a :class:`CellShard`, re-homed onto ``cell`` (the grid
    index of the *current* run, not the one that wrote the record)."""
    from ..parallel.merge import CellShard

    p = record.payload
    return CellShard(
        cell=cell,
        start=p["start"],
        stop=p["stop"],
        errors=p["errors"],
        timeouts=p["timeouts"],
    )


def encode_insertion(key: str, result) -> RunRecord:
    return RunRecord(
        key=key,
        kind="insertion",
        payload={
            "chip": result.chip,
            "app": result.app,
            "initial_fences": result.initial_fences,
            "reduced": sorted(result.reduced),
            "iterations_used": result.iterations_used,
            "check_runs": result.check_runs,
            "wall_seconds": result.wall_seconds,
            "converged": result.converged,
        },
    )


def decode_insertion(record: RunRecord):
    from ..hardening.insertion import InsertionResult

    p = record.payload
    return InsertionResult(
        chip=p["chip"],
        app=p["app"],
        initial_fences=p["initial_fences"],
        reduced=frozenset(p["reduced"]),
        iterations_used=p["iterations_used"],
        check_runs=p["check_runs"],
        wall_seconds=p["wall_seconds"],
        converged=p["converged"],
    )


def encode_cost(key: str, measurement) -> RunRecord:
    return RunRecord(
        key=key,
        kind="cost",
        payload={
            "chip": measurement.chip,
            "app": measurement.app,
            "strategy": measurement.strategy.name,
            "runtime_ms": measurement.runtime_ms,
            "energy_j": measurement.energy_j,
            "runs": measurement.runs,
            "discarded": measurement.discarded,
        },
    )


def decode_cost(record: RunRecord):
    from ..costs.measure import CostMeasurement, FencingStrategy

    p = record.payload
    return CostMeasurement(
        chip=p["chip"],
        app=p["app"],
        strategy=FencingStrategy[p["strategy"]],
        runtime_ms=p["runtime_ms"],
        energy_j=p["energy_j"],
        runs=p["runs"],
        discarded=p["discarded"],
    )


_DECODERS = {
    "litmus": decode_litmus,
    "campaign": decode_campaign_cell,
    "campaign-shard": decode_campaign_shard,
    "insertion": decode_insertion,
    "cost": decode_cost,
}

#: Every record kind the ledger understands.
RECORD_KINDS = tuple(_DECODERS)


def decode(record: RunRecord):
    """Reconstruct the domain object a record serialised."""
    try:
        decoder = _DECODERS[record.kind]
    except KeyError:
        raise ValueError(
            f"unknown record kind {record.kind!r}; "
            f"known: {', '.join(_DECODERS)}"
        ) from None
    return decoder(record)
