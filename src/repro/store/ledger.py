"""The append-only, crash-safe JSONL run ledger.

A ledger is a directory::

    ledger/
      manifest.json      # format version + free-form metadata
      seg-000001.jsonl   # one RunRecord per line
      seg-000002.jsonl
      ...

Durability model (single writer at a time):

* **Atomic batch appends** (:meth:`RunLedger.append`) write a complete
  new segment to a temporary file, fsync it, and ``os.replace`` it into
  place — the segment is either fully present or absent.
* **Incremental checkpoint streams** (:meth:`RunLedger.writer`) append
  one line per record to a fresh segment, flushing and fsyncing as they
  go.  A writer killed mid-line leaves a truncated tail, which readers
  *tolerate* (the partial record is dropped); corruption anywhere else
  in a segment raises :class:`~repro.errors.LedgerCorruptError` rather
  than silently losing data.
* The manifest is written via the same write-temp-then-rename dance.

Damage beyond the tolerated truncated tail is never silently dropped,
but it need not be fatal either: ``RunLedger.open(root, salvage=True)``
loads every intact record *around* corrupt lines and reports each
problem (``salvage_report``), :func:`verify_ledger` scans read-only,
and :func:`salvage_ledger` repairs in place — corrupt segments move to
a ``quarantine/`` subdirectory and their recoverable records re-append
into a fresh segment, so a resumed campaign re-runs only the records
that were actually destroyed.  Both ledger write paths are fault
injection sites (``ledger.checkpoint``, ``ledger.append`` — see
:mod:`repro.faults`) so this machinery is exercised by chaos runs, not
just unit tests.

Records are keyed by their deterministic content key (see
:mod:`repro.store.records`).  Content keys capture everything that
determines a result, so duplicate keys with *identical* payloads merge
idempotently (re-running an experiment, re-ingesting a worker's partial
ledger, a reassigned lease coming back twice — all no-ops), while
duplicate keys with *conflicting* payloads raise
:class:`~repro.errors.LedgerConflictError` — disagreement under one
content key means corruption and is never silently overwritten.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable
from pathlib import Path
from typing import Callable, Iterator

from ..errors import LedgerConflictError, LedgerCorruptError, LedgerError
from ..faults.runtime import fault_at
from .records import RunRecord

#: On-disk format version, recorded in the manifest.
LEDGER_FORMAT = 1

MANIFEST_NAME = "manifest.json"
QUARANTINE_DIR = "quarantine"
_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".jsonl"

#: What the ``corrupt`` fault kinds write: bytes no JSON parser accepts,
#: so injected damage is always *detected* damage.
_CORRUPT_LINE = "\x00injected-corruption\x00\n"


def _fsync_dir(path: Path) -> None:
    """Flush directory metadata (the rename itself) to disk."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fsync
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp + fsync + rename)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


class LedgerWriter:
    """An incremental checkpoint stream into one fresh segment.

    Use via ``with ledger.writer() as w: w.write(record)``.  Every
    ``write`` lands one complete JSON line and fsyncs, so at any kill
    point the segment holds every fully written record plus at most one
    truncated tail line.  An exited writer that wrote nothing removes
    its empty segment.
    """

    def __init__(self, ledger: "RunLedger", path: Path):
        self._ledger = ledger
        self._path = path
        self._handle = open(path, "w", encoding="utf-8")
        self._written = 0

    def write(self, record: RunRecord) -> None:
        # Validate against the in-memory index *before* the line lands
        # on disk, so a conflicting record never becomes durable.
        if self._ledger._is_duplicate(record):
            return
        line = json.dumps(record.to_json()) + "\n"
        event = fault_at("ledger.checkpoint", token=record.key)
        if event is not None:
            if event.kind == "fsync-error":
                raise LedgerError(
                    f"injected fsync failure checkpointing {record.key!r}"
                )
            if event.kind == "truncate":
                # Half a line, no newline: the kill-mid-write shape.
                line = line[: max(1, len(line) // 2)]
            else:  # corrupt
                line = _CORRUPT_LINE
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._written += 1
            # The record is NOT absorbed: it never became durable.
            return
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._written += 1
        self._ledger._absorb(record)

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.close()
        if self._written == 0:
            # Nothing durable to keep; do not litter empty segments.
            try:
                self._path.unlink()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RunLedger:
    """Query and append interface over one ledger directory."""

    def __init__(
        self, root: Path | str, manifest: dict, salvage: bool = False
    ):
        self.root = Path(root)
        self.manifest = manifest
        self._records: dict[str, RunRecord] = {}
        #: Problems tolerated during a salvage-mode load, as
        #: ``{"segment", "line", "error"}`` dicts (empty when clean or
        #: when loading strictly).
        self.salvage_report: list[dict] = []

        def note(path: Path, lineno: int, error: str) -> None:
            self.salvage_report.append(
                {"segment": path.name, "line": lineno, "error": error}
            )

        for path in self._segment_paths():
            try:
                for record in _read_segment(
                    path, on_corrupt=note if salvage else None
                ):
                    # Re-reading an identical duplicate (overlapping
                    # checkpoints) is fine; disagreement under one
                    # content key is corruption and refuses to load
                    # (salvage mode keeps the first payload seen and
                    # reports the disagreement).
                    try:
                        if not self._is_duplicate(record):
                            self._absorb(record)
                    except LedgerConflictError as exc:
                        if not salvage:
                            raise
                        note(path, 0, str(exc))
            except LedgerCorruptError as exc:
                if not salvage:
                    raise
                note(path, 0, str(exc))

    # -- construction --------------------------------------------------
    @classmethod
    def create(cls, root: Path | str, meta: dict | None = None) -> "RunLedger":
        """Initialise a fresh ledger directory (must not already hold one)."""
        root = Path(root)
        if (root / MANIFEST_NAME).exists():
            raise LedgerError(f"ledger already exists at {root}")
        root.mkdir(parents=True, exist_ok=True)
        manifest = {"format": LEDGER_FORMAT, **(meta or {})}
        _atomic_write(
            root / MANIFEST_NAME, json.dumps(manifest, indent=2) + "\n"
        )
        return cls(root, manifest)

    @classmethod
    def open(cls, root: Path | str, salvage: bool = False) -> "RunLedger":
        """Open an existing ledger; :class:`LedgerError` when absent.

        ``salvage=True`` tolerates segment damage: intact records load,
        corrupt lines / unreadable segments / conflicting duplicates
        are skipped and reported on ``salvage_report`` instead of
        raising.  The manifest must still be readable — a ledger whose
        *identity* is gone is not salvageable by this path.
        """
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise LedgerError(
                f"no run ledger at {root} (missing {MANIFEST_NAME}); "
                "create one with --out or RunLedger.create"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise LedgerCorruptError(
                f"unreadable ledger manifest at {manifest_path}: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or "format" not in manifest:
            raise LedgerCorruptError(
                f"ledger manifest at {manifest_path} lacks a format field"
            )
        if manifest["format"] != LEDGER_FORMAT:
            raise LedgerError(
                f"ledger at {root} uses format {manifest['format']}; "
                f"this library reads format {LEDGER_FORMAT}"
            )
        return cls(root, manifest, salvage=salvage)

    @classmethod
    def open_or_create(
        cls, root: Path | str, meta: dict | None = None
    ) -> "RunLedger":
        """Open the ledger at ``root``, creating it when absent."""
        if (Path(root) / MANIFEST_NAME).exists():
            return cls.open(root)
        return cls.create(root, meta)

    # -- query API ------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> set[str]:
        return set(self._records)

    def get(self, key: str) -> RunRecord | None:
        return self._records.get(key)

    def records(self, kind: str | None = None, **filters) -> list[RunRecord]:
        """Records in insertion order, filtered by kind and payload
        fields (``records(kind="campaign", chip="K20")``)."""
        out = []
        for record in self._records.values():
            if kind is not None and record.kind != kind:
                continue
            if any(
                record.payload.get(field) != value
                for field, value in filters.items()
            ):
                continue
            out.append(record)
        return out

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self._records.values():
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    # -- append API -----------------------------------------------------
    def append(self, *records: RunRecord) -> None:
        """Atomically append ``records`` as one new segment.

        Records whose key is already present with an identical payload
        are skipped (idempotent merge); a conflicting payload raises
        :class:`~repro.errors.LedgerConflictError` before anything is
        written.
        """
        records = tuple(
            r for r in records if not self._is_duplicate(r)
        )
        if not records:
            return
        path = self._next_segment_path()
        lines = [json.dumps(r.to_json()) + "\n" for r in records]
        data = "".join(lines)
        event = fault_at("ledger.append", token=path.name)
        if event is not None:
            if event.kind == "fsync-error":
                raise LedgerError(
                    f"injected fsync failure appending segment {path.name}"
                )
            if event.kind == "truncate":
                data = data[: max(1, len(data) // 2)]
            else:  # corrupt: garbage mid-segment, always detectable
                mid = len(lines) // 2
                data = (
                    "".join(lines[:mid])
                    + _CORRUPT_LINE
                    + "".join(lines[mid:])
                )
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(self.root)
        for record in records:
            self._absorb(record)

    def writer(self) -> LedgerWriter:
        """An incremental per-record checkpoint stream (see module doc)."""
        return LedgerWriter(self, self._next_segment_path())

    def ingest(self, records: Iterable[RunRecord]) -> int:
        """Merge a partial ledger's records by content key.

        The distributed merge path: workers (or independent runs over
        separate ``--out`` directories) produce partial ledgers whose
        records this folds into one.  The merge is idempotent —
        already-present identical records are skipped — and refuses
        conflicting payloads with
        :class:`~repro.errors.LedgerConflictError`.  Returns the number
        of records actually written.
        """
        fresh = [r for r in records if not self._is_duplicate(r)]
        if fresh:
            self.append(*fresh)
        return len(fresh)

    # -- internals ------------------------------------------------------
    def _is_duplicate(self, record: RunRecord) -> bool:
        """True when ``record`` is already present verbatim; raises on
        a same-key different-payload conflict."""
        existing = self._records.get(record.key)
        if existing is None:
            return False
        if (
            existing.kind == record.kind
            and existing.payload == record.payload
        ):
            return True
        raise LedgerConflictError(
            record.key,
            detail=f"have {existing.payload!r}, got {record.payload!r}",
        )

    def _absorb(self, record: RunRecord) -> None:
        self._records[record.key] = record

    def _segment_paths(self) -> list[Path]:
        return sorted(
            p
            for p in self.root.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
            if p.is_file()
        )

    def _next_segment_path(self) -> Path:
        highest = 0
        for path in self._segment_paths():
            stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
            try:
                highest = max(highest, int(stem))
            except ValueError:
                continue
        return self.root / (
            f"{_SEGMENT_PREFIX}{highest + 1:06d}{_SEGMENT_SUFFIX}"
        )


def _read_segment(
    path: Path,
    on_corrupt: Callable[[Path, int, str], None] | None = None,
) -> Iterator[RunRecord]:
    """Parse one segment, tolerating only a truncated final line.

    With ``on_corrupt`` (salvage mode), mid-file damage is reported to
    the callback and the scan continues, yielding every line that still
    parses; without it any non-tail damage raises
    :class:`~repro.errors.LedgerCorruptError`.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LedgerCorruptError(
            f"unreadable ledger segment {path}: {exc}"
        ) from exc
    lines = text.split("\n")
    # A complete segment ends with a newline, leaving one empty trailer.
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines, start=1):
        try:
            obj = json.loads(line)
            record = RunRecord.from_json(obj)
        except (json.JSONDecodeError, ValueError) as exc:
            if lineno == len(lines) and not text.endswith("\n"):
                # Truncated tail from a killed writer: drop it.
                return
            if on_corrupt is not None:
                on_corrupt(path, lineno, str(exc))
                continue
            raise LedgerCorruptError(
                f"corrupt record at {path}:{lineno}: {exc}"
            ) from exc
        yield record


def verify_ledger(root: Path | str) -> list[dict]:
    """Read-only integrity scan: every problem a salvage-mode load
    would tolerate, as ``{"segment", "line", "error"}`` dicts (empty
    for a clean ledger).  Nothing on disk is touched."""
    return RunLedger.open(root, salvage=True).salvage_report


def salvage_ledger(
    root: Path | str,
    log: Callable[[str], None] | None = None,
) -> dict:
    """Repair a damaged ledger in place.

    Every segment with a problem moves to ``root/quarantine/`` (kept,
    never deleted — the damage may be evidence) and its recoverable
    records re-append into a fresh segment.  Records conflicting with
    the healthy remainder (or with each other) are dropped and
    reported, never merged.  Returns a summary::

        {"problems": [...],              # what verify found
         "quarantined_segments": [...],  # segment names moved
         "recovered": N,                 # records re-appended
         "dropped": [{"key", "error"}]}  # unrecoverable conflicts
    """
    root = Path(root)
    log = log or (lambda message: None)
    damaged = RunLedger.open(root, salvage=True)
    problems = damaged.salvage_report
    bad_names = sorted({problem["segment"] for problem in problems})
    if not bad_names:
        log(f"ledger at {root} is clean; nothing to salvage")
        return {
            "problems": [],
            "quarantined_segments": [],
            "recovered": 0,
            "dropped": [],
        }
    quarantine = root / QUARANTINE_DIR
    quarantine.mkdir(exist_ok=True)
    recovered: list[RunRecord] = []
    for name in bad_names:
        path = root / name
        good: list[RunRecord] = []
        try:
            good.extend(
                _read_segment(path, on_corrupt=lambda *args: None)
            )
        except LedgerCorruptError:
            pass  # unreadable file: nothing recoverable inside
        os.replace(path, quarantine / name)
        recovered.extend(good)
        log(
            f"quarantined segment {name} "
            f"({len(good)} recoverable record(s))"
        )
    _fsync_dir(root)
    # Strict re-open over the healthy remainder, then fold the
    # recovered records back in; first payload seen under a key wins,
    # disagreement is dropped and reported.
    clean = RunLedger.open(root)
    fresh: dict[str, RunRecord] = {}
    dropped: list[dict] = []
    for record in recovered:
        try:
            if clean._is_duplicate(record):
                continue
        except LedgerConflictError as exc:
            dropped.append({"key": record.key, "error": str(exc)})
            continue
        prior = fresh.get(record.key)
        if prior is not None:
            if (
                prior.kind == record.kind
                and prior.payload == record.payload
            ):
                continue
            dropped.append(
                {
                    "key": record.key,
                    "error": (
                        "recovered records disagree under this key"
                    ),
                }
            )
            continue
        fresh[record.key] = record
    if fresh:
        clean.append(*fresh.values())
    log(
        f"salvage complete: {len(bad_names)} segment(s) quarantined, "
        f"{len(fresh)} record(s) recovered, {len(dropped)} dropped"
    )
    return {
        "problems": problems,
        "quarantined_segments": bad_names,
        "recovered": len(fresh),
        "dropped": dropped,
    }
