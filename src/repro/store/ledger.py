"""The append-only, crash-safe JSONL run ledger.

A ledger is a directory::

    ledger/
      manifest.json      # format version + free-form metadata
      seg-000001.jsonl   # one RunRecord per line
      seg-000002.jsonl
      ...

Durability model (single writer at a time):

* **Atomic batch appends** (:meth:`RunLedger.append`) write a complete
  new segment to a temporary file, fsync it, and ``os.replace`` it into
  place — the segment is either fully present or absent.
* **Incremental checkpoint streams** (:meth:`RunLedger.writer`) append
  one line per record to a fresh segment, flushing and fsyncing as they
  go.  A writer killed mid-line leaves a truncated tail, which readers
  *tolerate* (the partial record is dropped); corruption anywhere else
  in a segment raises :class:`~repro.errors.LedgerCorruptError` rather
  than silently losing data.
* The manifest is written via the same write-temp-then-rename dance.

Records are keyed by their deterministic content key (see
:mod:`repro.store.records`).  Content keys capture everything that
determines a result, so duplicate keys with *identical* payloads merge
idempotently (re-running an experiment, re-ingesting a worker's partial
ledger, a reassigned lease coming back twice — all no-ops), while
duplicate keys with *conflicting* payloads raise
:class:`~repro.errors.LedgerConflictError` — disagreement under one
content key means corruption and is never silently overwritten.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable
from pathlib import Path
from typing import Iterator

from ..errors import LedgerConflictError, LedgerCorruptError, LedgerError
from .records import RunRecord

#: On-disk format version, recorded in the manifest.
LEDGER_FORMAT = 1

MANIFEST_NAME = "manifest.json"
_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".jsonl"


def _fsync_dir(path: Path) -> None:
    """Flush directory metadata (the rename itself) to disk."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fsync
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def _atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp + fsync + rename)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


class LedgerWriter:
    """An incremental checkpoint stream into one fresh segment.

    Use via ``with ledger.writer() as w: w.write(record)``.  Every
    ``write`` lands one complete JSON line and fsyncs, so at any kill
    point the segment holds every fully written record plus at most one
    truncated tail line.  An exited writer that wrote nothing removes
    its empty segment.
    """

    def __init__(self, ledger: "RunLedger", path: Path):
        self._ledger = ledger
        self._path = path
        self._handle = open(path, "w", encoding="utf-8")
        self._written = 0

    def write(self, record: RunRecord) -> None:
        # Validate against the in-memory index *before* the line lands
        # on disk, so a conflicting record never becomes durable.
        if self._ledger._is_duplicate(record):
            return
        self._handle.write(json.dumps(record.to_json()) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._written += 1
        self._ledger._absorb(record)

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.close()
        if self._written == 0:
            # Nothing durable to keep; do not litter empty segments.
            try:
                self._path.unlink()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RunLedger:
    """Query and append interface over one ledger directory."""

    def __init__(self, root: Path | str, manifest: dict):
        self.root = Path(root)
        self.manifest = manifest
        self._records: dict[str, RunRecord] = {}
        for path in self._segment_paths():
            for record in _read_segment(path):
                # Re-reading an identical duplicate (overlapping
                # checkpoints) is fine; disagreement under one content
                # key is corruption and refuses to load.
                if not self._is_duplicate(record):
                    self._absorb(record)

    # -- construction --------------------------------------------------
    @classmethod
    def create(cls, root: Path | str, meta: dict | None = None) -> "RunLedger":
        """Initialise a fresh ledger directory (must not already hold one)."""
        root = Path(root)
        if (root / MANIFEST_NAME).exists():
            raise LedgerError(f"ledger already exists at {root}")
        root.mkdir(parents=True, exist_ok=True)
        manifest = {"format": LEDGER_FORMAT, **(meta or {})}
        _atomic_write(
            root / MANIFEST_NAME, json.dumps(manifest, indent=2) + "\n"
        )
        return cls(root, manifest)

    @classmethod
    def open(cls, root: Path | str) -> "RunLedger":
        """Open an existing ledger; :class:`LedgerError` when absent."""
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise LedgerError(
                f"no run ledger at {root} (missing {MANIFEST_NAME}); "
                "create one with --out or RunLedger.create"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise LedgerCorruptError(
                f"unreadable ledger manifest at {manifest_path}: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or "format" not in manifest:
            raise LedgerCorruptError(
                f"ledger manifest at {manifest_path} lacks a format field"
            )
        if manifest["format"] != LEDGER_FORMAT:
            raise LedgerError(
                f"ledger at {root} uses format {manifest['format']}; "
                f"this library reads format {LEDGER_FORMAT}"
            )
        return cls(root, manifest)

    @classmethod
    def open_or_create(
        cls, root: Path | str, meta: dict | None = None
    ) -> "RunLedger":
        """Open the ledger at ``root``, creating it when absent."""
        if (Path(root) / MANIFEST_NAME).exists():
            return cls.open(root)
        return cls.create(root, meta)

    # -- query API ------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> set[str]:
        return set(self._records)

    def get(self, key: str) -> RunRecord | None:
        return self._records.get(key)

    def records(self, kind: str | None = None, **filters) -> list[RunRecord]:
        """Records in insertion order, filtered by kind and payload
        fields (``records(kind="campaign", chip="K20")``)."""
        out = []
        for record in self._records.values():
            if kind is not None and record.kind != kind:
                continue
            if any(
                record.payload.get(field) != value
                for field, value in filters.items()
            ):
                continue
            out.append(record)
        return out

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self._records.values():
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    # -- append API -----------------------------------------------------
    def append(self, *records: RunRecord) -> None:
        """Atomically append ``records`` as one new segment.

        Records whose key is already present with an identical payload
        are skipped (idempotent merge); a conflicting payload raises
        :class:`~repro.errors.LedgerConflictError` before anything is
        written.
        """
        records = tuple(
            r for r in records if not self._is_duplicate(r)
        )
        if not records:
            return
        path = self._next_segment_path()
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_json()) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(self.root)
        for record in records:
            self._absorb(record)

    def writer(self) -> LedgerWriter:
        """An incremental per-record checkpoint stream (see module doc)."""
        return LedgerWriter(self, self._next_segment_path())

    def ingest(self, records: Iterable[RunRecord]) -> int:
        """Merge a partial ledger's records by content key.

        The distributed merge path: workers (or independent runs over
        separate ``--out`` directories) produce partial ledgers whose
        records this folds into one.  The merge is idempotent —
        already-present identical records are skipped — and refuses
        conflicting payloads with
        :class:`~repro.errors.LedgerConflictError`.  Returns the number
        of records actually written.
        """
        fresh = [r for r in records if not self._is_duplicate(r)]
        if fresh:
            self.append(*fresh)
        return len(fresh)

    # -- internals ------------------------------------------------------
    def _is_duplicate(self, record: RunRecord) -> bool:
        """True when ``record`` is already present verbatim; raises on
        a same-key different-payload conflict."""
        existing = self._records.get(record.key)
        if existing is None:
            return False
        if (
            existing.kind == record.kind
            and existing.payload == record.payload
        ):
            return True
        raise LedgerConflictError(
            record.key,
            detail=f"have {existing.payload!r}, got {record.payload!r}",
        )

    def _absorb(self, record: RunRecord) -> None:
        self._records[record.key] = record

    def _segment_paths(self) -> list[Path]:
        return sorted(
            p
            for p in self.root.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
            if p.is_file()
        )

    def _next_segment_path(self) -> Path:
        highest = 0
        for path in self._segment_paths():
            stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
            try:
                highest = max(highest, int(stem))
            except ValueError:
                continue
        return self.root / (
            f"{_SEGMENT_PREFIX}{highest + 1:06d}{_SEGMENT_SUFFIX}"
        )


def _read_segment(path: Path) -> Iterator[RunRecord]:
    """Parse one segment, tolerating only a truncated final line."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LedgerCorruptError(
            f"unreadable ledger segment {path}: {exc}"
        ) from exc
    lines = text.split("\n")
    # A complete segment ends with a newline, leaving one empty trailer.
    if lines and lines[-1] == "":
        lines.pop()
    for lineno, line in enumerate(lines, start=1):
        try:
            obj = json.loads(line)
            record = RunRecord.from_json(obj)
        except (json.JSONDecodeError, ValueError) as exc:
            if lineno == len(lines) and not text.endswith("\n"):
                # Truncated tail from a killed writer: drop it.
                return
            raise LedgerCorruptError(
                f"corrupt record at {path}:{lineno}: {exc}"
            ) from exc
        yield record
