"""Resume helpers: read-through caching over ledgered work lists.

The experiment layers all share one shape: a list of independent work
items, each with a deterministic content key, fanned out with
:func:`repro.parallel.parallel_map`.  :func:`ledgered_map` overlays a
:class:`~repro.store.ledger.RunLedger` on that shape — already-ledgered
keys are decoded instead of re-run, missing keys run and checkpoint as
their results stream in — which, by the global-index seeding contract,
reproduces a cold run bit for bit.

The domain query wrappers at the bottom turn a ledger back into domain
objects for the reporting layer.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import ReproError, ResultHookError
from ..parallel import (
    ParallelConfig,
    WorkUnit,
    parallel_map,
    run_units,
    shared_pool,
)
from . import records as rec
from .ledger import RunLedger


def missing_ranges(
    covered: list[tuple[int, int]], n: int
) -> list[tuple[int, int]]:
    """Complement of sorted disjoint ``covered`` ranges within
    ``[0, n)`` — the work a resumed run range still owes."""
    out = []
    position = 0
    for start, stop in covered:
        if start > position:
            out.append((position, start))
        position = max(position, stop)
    if position < n:
        out.append((position, n))
    return out


def submit_units(
    units: Sequence[WorkUnit],
    config: ParallelConfig,
    ledger: RunLedger | None,
    submit: Callable | None = None,
) -> list[rec.RunRecord]:
    """Execute work units through any backend, with ledger read-through.

    The one shape every grid layer shares: already-ledgered keys are
    returned straight from the ledger (zero simulation), the rest go to
    ``submit(units, config, on_record)`` — the local pool by default,
    the distributed coordinator when the caller passes one (see
    :mod:`repro.dist`) — and every fresh record checkpoints into the
    ledger the moment it streams back.  Records return in unit order.
    """
    results: list[rec.RunRecord | None] = [None] * len(units)
    pending: list[WorkUnit] = []
    pending_indices: list[int] = []
    for i, unit in enumerate(units):
        record = ledger.get(unit.key) if ledger is not None else None
        if record is not None:
            results[i] = record
        else:
            pending.append(unit)
            pending_indices.append(i)
    if pending:
        if submit is None:
            def submit(batch, cfg, on_record):
                return run_units(
                    batch, cfg, on_record, pool=shared_pool(cfg)
                )
        if ledger is not None:
            with ledger.writer() as checkpoint:

                def on_record(j: int, record: rec.RunRecord) -> None:
                    try:
                        checkpoint.write(record)
                    except Exception as exc:
                        raise ResultHookError(
                            index=j, key=pending[j].key, detail=str(exc)
                        ) from exc

                fresh = submit(pending, config, on_record)
        else:
            fresh = submit(pending, config, None)
        _validate_backend_return(pending, fresh)
        for j, record in zip(pending_indices, fresh):
            results[j] = record
    return results


def _validate_backend_return(
    pending: Sequence[WorkUnit], fresh: Sequence
) -> None:
    """A submit backend promises one record per unit, in unit order,
    under the unit's content key.  A backend that silently drops or
    reorders would otherwise surface much later as misattributed
    results; fail here, at the contract boundary, with a typed error."""
    if len(fresh) != len(pending):
        raise ReproError(
            f"submit backend returned {len(fresh)} records for "
            f"{len(pending)} pending units; a backend must return one "
            "record per unit (quarantined units must be repaired or "
            "raised, never silently omitted)"
        )
    for unit, record in zip(pending, fresh):
        if record is None or record.key != unit.key:
            got = None if record is None else record.key
            raise ReproError(
                f"submit backend returned record key {got!r} for unit "
                f"{unit.key!r}; records must come back in unit order "
                "under matching content keys"
            )


def litmus_grid_counts(
    units: Sequence[WorkUnit],
    config: ParallelConfig,
    ledger: RunLedger | None,
    submit: Callable | None = None,
) -> list[int]:
    """:func:`submit_units` reduced to the tuning grids' weak counts."""
    return [
        rec.decode_litmus(record).weak
        for record in submit_units(units, config, ledger, submit)
    ]


def ledgered_map(
    fn: Callable,
    work: Sequence,
    keys: Sequence[str],
    config: ParallelConfig,
    ledger: RunLedger | None,
    encode: Callable[[str, object], rec.RunRecord],
    decode: Callable[[rec.RunRecord], object],
) -> list:
    """``parallel_map`` with per-item ledger caching and checkpointing.

    ``keys[i]`` is the content key of ``work[i]``.  Cached keys decode
    from the ledger (zero simulation); the rest run through
    ``parallel_map`` and each fresh result is written to the ledger the
    moment it streams back — so a killed run loses at most the work in
    flight, never completed items.  Without a ledger this is exactly
    ``parallel_map(fn, work, config)``.
    """
    if len(work) != len(keys):
        raise ValueError(
            f"work/keys length mismatch: {len(work)} != {len(keys)}"
        )
    if ledger is None:
        return parallel_map(fn, work, config)
    results: list = [None] * len(work)
    pending: list = []
    pending_indices: list[int] = []
    for i, key in enumerate(keys):
        record = ledger.get(key)
        if record is not None:
            results[i] = decode(record)
        else:
            pending.append(work[i])
            pending_indices.append(i)
    if pending:
        with ledger.writer() as checkpoint:

            def on_result(j: int, value: object) -> None:
                checkpoint.write(encode(keys[pending_indices[j]], value))

            fresh = parallel_map(fn, pending, config, on_result=on_result)
        for j, value in zip(pending_indices, fresh):
            results[j] = value
    return results


def cached_or_run(
    ledger: RunLedger | None,
    key: str,
    run: Callable[[], object],
    encode: Callable[[str, object], rec.RunRecord],
    decode: Callable[[rec.RunRecord], object],
):
    """One-item read-through cache for monolithic results (an insertion
    run, a cost measurement): decode when ledgered, otherwise run and
    atomically append."""
    if ledger is not None:
        record = ledger.get(key)
        if record is not None:
            return decode(record)
    result = run()
    if ledger is not None:
        ledger.append(encode(key, result))
    return result


# -- domain queries ----------------------------------------------------

def litmus_results(ledger: RunLedger, **filters) -> list:
    """Every ledgered :class:`LitmusResult` (payload-field filters)."""
    return [
        rec.decode_litmus(r) for r in ledger.records("litmus", **filters)
    ]


def campaign_cells(ledger: RunLedger, **filters) -> list:
    """Every ledgered :class:`CampaignCell` (payload-field filters)."""
    return [
        rec.decode_campaign_cell(r)
        for r in ledger.records("campaign", **filters)
    ]


def insertion_results(ledger: RunLedger, **filters) -> list:
    """Every ledgered :class:`InsertionResult`."""
    return [
        rec.decode_insertion(r)
        for r in ledger.records("insertion", **filters)
    ]


def cost_measurements(ledger: RunLedger, **filters) -> list:
    """Every ledgered :class:`CostMeasurement`."""
    return [
        rec.decode_cost(r) for r in ledger.records("cost", **filters)
    ]
