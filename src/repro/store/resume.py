"""Resume helpers: read-through caching over ledgered work lists.

The experiment layers all share one shape: a list of independent work
items, each with a deterministic content key, fanned out with
:func:`repro.parallel.parallel_map`.  :func:`ledgered_map` overlays a
:class:`~repro.store.ledger.RunLedger` on that shape — already-ledgered
keys are decoded instead of re-run, missing keys run and checkpoint as
their results stream in — which, by the global-index seeding contract,
reproduces a cold run bit for bit.

The domain query wrappers at the bottom turn a ledger back into domain
objects for the reporting layer.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..parallel import ParallelConfig, parallel_map
from . import records as rec
from .ledger import RunLedger


def ledgered_map(
    fn: Callable,
    work: Sequence,
    keys: Sequence[str],
    config: ParallelConfig,
    ledger: RunLedger | None,
    encode: Callable[[str, object], rec.RunRecord],
    decode: Callable[[rec.RunRecord], object],
) -> list:
    """``parallel_map`` with per-item ledger caching and checkpointing.

    ``keys[i]`` is the content key of ``work[i]``.  Cached keys decode
    from the ledger (zero simulation); the rest run through
    ``parallel_map`` and each fresh result is written to the ledger the
    moment it streams back — so a killed run loses at most the work in
    flight, never completed items.  Without a ledger this is exactly
    ``parallel_map(fn, work, config)``.
    """
    if len(work) != len(keys):
        raise ValueError(
            f"work/keys length mismatch: {len(work)} != {len(keys)}"
        )
    if ledger is None:
        return parallel_map(fn, work, config)
    results: list = [None] * len(work)
    pending: list = []
    pending_indices: list[int] = []
    for i, key in enumerate(keys):
        record = ledger.get(key)
        if record is not None:
            results[i] = decode(record)
        else:
            pending.append(work[i])
            pending_indices.append(i)
    if pending:
        with ledger.writer() as checkpoint:

            def on_result(j: int, value: object) -> None:
                checkpoint.write(encode(keys[pending_indices[j]], value))

            fresh = parallel_map(fn, pending, config, on_result=on_result)
        for j, value in zip(pending_indices, fresh):
            results[j] = value
    return results


def ledgered_litmus_counts(
    fn: Callable,
    work: Sequence,
    keys: Sequence[str],
    points: Sequence[tuple[str, int, tuple[int, ...]]],
    executions: int,
    config: ParallelConfig,
    ledger: RunLedger | None,
    chip: str,
    seed: int,
) -> list:
    """:func:`ledgered_map` specialised to the tuning grids.

    The tuning stages fan out workers that return bare weak counts;
    ``points[i] = (test name, distance, stressed locations)`` supplies
    the remaining coordinates so each count persists as a full
    ``litmus`` record and decodes back to its weak count on resume.
    """
    if ledger is None:
        return parallel_map(fn, work, config)
    from ..litmus.results import LitmusResult

    by_key = dict(zip(keys, points))

    def encode(key: str, weak: int) -> rec.RunRecord:
        test_name, distance, location = by_key[key]
        return rec.encode_litmus(
            key,
            LitmusResult(
                test=test_name, distance=distance, weak=weak,
                executions=executions, location=location,
            ),
            chip=chip, seed=seed,
        )

    def decode(record: rec.RunRecord) -> int:
        return rec.decode_litmus(record).weak

    return ledgered_map(fn, work, keys, config, ledger, encode, decode)


def cached_or_run(
    ledger: RunLedger | None,
    key: str,
    run: Callable[[], object],
    encode: Callable[[str, object], rec.RunRecord],
    decode: Callable[[rec.RunRecord], object],
):
    """One-item read-through cache for monolithic results (an insertion
    run, a cost measurement): decode when ledgered, otherwise run and
    atomically append."""
    if ledger is not None:
        record = ledger.get(key)
        if record is not None:
            return decode(record)
    result = run()
    if ledger is not None:
        ledger.append(encode(key, result))
    return result


# -- domain queries ----------------------------------------------------

def litmus_results(ledger: RunLedger, **filters) -> list:
    """Every ledgered :class:`LitmusResult` (payload-field filters)."""
    return [
        rec.decode_litmus(r) for r in ledger.records("litmus", **filters)
    ]


def campaign_cells(ledger: RunLedger, **filters) -> list:
    """Every ledgered :class:`CampaignCell` (payload-field filters)."""
    return [
        rec.decode_campaign_cell(r)
        for r in ledger.records("campaign", **filters)
    ]


def insertion_results(ledger: RunLedger, **filters) -> list:
    """Every ledgered :class:`InsertionResult`."""
    return [
        rec.decode_insertion(r)
        for r in ledger.records("insertion", **filters)
    ]


def cost_measurements(ledger: RunLedger, **filters) -> list:
    """Every ledgered :class:`CostMeasurement`."""
    return [
        rec.decode_cost(r) for r in ledger.records("cost", **filters)
    ]
