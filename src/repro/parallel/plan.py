"""The backend-neutral work-plan layer.

Every grid the experiment harness fans out — campaign run ranges,
tuning grid points, survey cells — reduces to the same currency: a
:class:`WorkUnit`, a fully self-describing, JSON-safe spec of one piece
of work whose result is exactly one ledger
:class:`~repro.store.records.RunRecord` under a deterministic content
key.  Because a unit carries *names and plain data* (chip short names,
test names, serialised stress specs, seeds) rather than live objects,
it can be executed anywhere — in-process, in a local worker pool, or on
a remote machine reached over the :mod:`repro.dist` wire — and the
global-index seeding contract guarantees the result is identical
wherever it runs.

Execution backends consume units through one shape::

    submit(units, config, on_record) -> list[RunRecord]   # unit order

:func:`run_units` is the local backend (a thin adapter over
:func:`~repro.parallel.executor.parallel_map`); the distributed
coordinator (:mod:`repro.dist.coordinator`) is another.  Executors for
each unit kind are registered lazily by the module that owns the domain
logic, so this layer stays import-cycle free and a fresh worker process
(or remote machine) materialises the right executor simply by decoding
the unit.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from ..errors import ReproError
from .executor import SERIAL, ParallelConfig, parallel_map


@dataclass(frozen=True)
class WorkUnit:
    """One location-independent piece of work.

    * ``kind`` — the ledger record kind the unit produces (also selects
      the executor, e.g. ``campaign-shard`` or ``litmus``);
    * ``key`` — the deterministic content key of the result;
    * ``spec`` — JSON-safe data fully describing the work (names,
      seeds, serialised stress specs — never live objects).
    """

    kind: str
    key: str
    spec: dict

    def to_json(self) -> dict[str, Any]:
        return {"kind": self.kind, "key": self.key, "spec": self.spec}

    @classmethod
    def from_json(cls, obj: object) -> "WorkUnit":
        if (
            not isinstance(obj, dict)
            or not isinstance(obj.get("kind"), str)
            or not isinstance(obj.get("key"), str)
            or not isinstance(obj.get("spec"), dict)
        ):
            raise ReproError(f"malformed work unit: {obj!r}")
        return cls(kind=obj["kind"], key=obj["key"], spec=obj["spec"])


#: kind -> module that registers the executor for that kind on import.
#: Kept as dotted names (not imports) so the plan layer depends on no
#: domain module and worker processes resolve executors on demand.
_EXECUTOR_MODULES = {
    "campaign-shard": "repro.testing.campaign",
    "litmus": "repro.litmus.units",
}

_EXECUTORS: dict[str, Callable[[WorkUnit], Any]] = {}


def register_executor(kind: str, fn: Callable[[WorkUnit], Any]) -> None:
    """Register the executor for one unit kind (idempotent)."""
    _EXECUTORS[kind] = fn


def execute_unit(unit: WorkUnit):
    """Run one unit, returning its :class:`RunRecord`.

    Executors resolve lazily: the first unit of a kind imports the
    owning domain module, which registers itself via
    :func:`register_executor`.  This is what lets a fresh worker
    process — local pool child or remote machine — execute any unit it
    is handed with no setup beyond having the library importable.

    Fault site ``unit.execute`` (token: the unit's content key, so a
    poison unit fails identically on *every* process that tries it):
    ``raise`` throws :class:`~repro.errors.FaultInjected`, ``hang``
    sleeps ``hang_s`` before executing (long enough to expire a
    lease), ``exit`` kills the process without cleanup (the worker
    crash path).
    """
    from ..faults.runtime import fault_at

    event = fault_at("unit.execute", token=unit.key)
    if event is not None:
        if event.kind == "exit":
            import os

            os._exit(int(event.param("exit_code", 41)))
        if event.kind == "hang":
            import time

            time.sleep(float(event.param("hang_s", 60.0)))
        else:
            from ..errors import FaultInjected

            raise FaultInjected("unit.execute", unit.key, event.kind)
    fn = _EXECUTORS.get(unit.kind)
    if fn is None:
        module = _EXECUTOR_MODULES.get(unit.kind)
        if module is not None:
            importlib.import_module(module)
            fn = _EXECUTORS.get(unit.kind)
        if fn is None:
            raise ReproError(
                f"no executor for work-unit kind {unit.kind!r}; "
                f"known kinds: {', '.join(sorted(_EXECUTOR_MODULES))}"
            )
    record = fn(unit)
    if record.key != unit.key:
        raise ReproError(
            f"unit executor for kind {unit.kind!r} returned record key "
            f"{record.key!r} for unit key {unit.key!r}"
        )
    return record


def run_units(
    units: Sequence[WorkUnit],
    config: ParallelConfig = SERIAL,
    on_record: Callable[[int, Any], None] | None = None,
    pool=None,
) -> list:
    """The local execution backend: units through the process pool.

    ``on_record(index, record)`` streams each completed record back in
    completion order (the checkpointing hook).  ``pool`` optionally
    reuses an existing :class:`~concurrent.futures.ProcessPoolExecutor`
    (see :func:`~repro.parallel.executor.shared_pool`) so successive
    grids pay the pool spawn cost once.
    """
    return parallel_map(
        execute_unit, list(units), config, on_result=on_record, pool=pool
    )
