"""Shard records and their reductions.

Workers return small frozen dataclasses covering a contiguous index
range; the merge functions validate that the shards tile the full range
exactly (no silent double counting or gaps) and reduce them to the
primitive statistics the domain modules fold into their existing
summary types (:class:`~repro.litmus.results.LitmusResult`,
:class:`~repro.testing.campaign.CampaignCell`).  This module stays free
of domain imports so every layer can depend on it without cycles.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..errors import ReproError


def _check_coverage(shards, n: int, kind: str) -> None:
    """Ensure sorted ``shards`` exactly tile ``range(n)``."""
    expected = 0
    for shard in shards:
        if shard.start != expected or shard.stop < shard.start:
            raise ReproError(
                f"{kind} shards do not tile range({n}): got "
                f"[{shard.start}, {shard.stop}) at offset {expected}"
            )
        expected = shard.stop
    if expected != n:
        raise ReproError(
            f"{kind} shards cover {expected} of {n} work items"
        )


@dataclass(frozen=True)
class LitmusShard:
    """Weak-behaviour count for executions ``[start, stop)``."""

    start: int
    stop: int
    weak: int


def merge_litmus_shards(
    shards: Iterable[LitmusShard], executions: int
) -> int:
    """Total weak count over all shards (validating full coverage)."""
    ordered = sorted(shards, key=lambda s: s.start)
    _check_coverage(ordered, executions, "litmus")
    return sum(s.weak for s in ordered)


@dataclass(frozen=True)
class CellShard:
    """Error statistics for campaign runs ``[start, stop)`` of one cell.

    ``cell`` identifies the (chip, app, environment) grid entry so a
    flattened campaign — every cell's shards interleaved in one work
    list — can be regrouped after the map.
    """

    cell: int
    start: int
    stop: int
    errors: int
    timeouts: int


def merge_cell_shards(
    shards: Iterable[CellShard], runs: int
) -> dict[int, tuple[int, int]]:
    """Reduce flattened campaign shards to per-cell ``(errors, timeouts)``.

    Each cell's shards must tile ``range(runs)`` exactly.
    """
    by_cell: dict[int, list[CellShard]] = {}
    for shard in shards:
        by_cell.setdefault(shard.cell, []).append(shard)
    merged: dict[int, tuple[int, int]] = {}
    for cell, cell_shards in by_cell.items():
        ordered = sorted(cell_shards, key=lambda s: s.start)
        _check_coverage(ordered, runs, f"campaign cell {cell}")
        merged[cell] = (
            sum(s.errors for s in ordered),
            sum(s.timeouts for s in ordered),
        )
    return merged


@dataclass(frozen=True)
class CheckShard:
    """Outcome of fence-check runs ``[start, stop)``.

    ``first_error`` is the lowest *global* run index in the shard whose
    execution was erroneous, or None when the whole shard passed.
    Workers may stop early past their first error — later runs of the
    shard cannot influence the merged verdict.
    """

    start: int
    stop: int
    first_error: int | None


def merge_check_shards(
    shards: Iterable[CheckShard], iterations: int
) -> int | None:
    """The first erroneous run index over the full budget, or None.

    This is exactly the run on which a serial early-exiting loop would
    have stopped, which is what lets the parallel check reproduce the
    serial seed stream (the check counter advances by the number of runs
    a serial execution would have performed).
    """
    ordered = sorted(shards, key=lambda s: s.start)
    _check_coverage(ordered, iterations, "check")
    firsts = [s.first_error for s in ordered if s.first_error is not None]
    return min(firsts) if firsts else None
