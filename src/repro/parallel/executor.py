"""The process-pool executor and work-sharding helpers.

``parallel_map`` is deliberately minimal: ordered results, chunked
submission, and a serial fast path that never touches multiprocessing.
Harness code stays correct-by-construction because per-item seeds are
derived from global indices (see the package docstring), so the only
job of this module is to move picklable work specs to workers and bring
shard records back.
"""

from __future__ import annotations

import atexit
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

from ..errors import ReproError, ResultHookError


@dataclass(frozen=True)
class ParallelConfig:
    """Worker-pool knobs shared by every parallel harness.

    * ``jobs`` — worker processes; ``1`` means serial in-process
      execution (the default everywhere), ``0`` means one per CPU.
    * ``chunks_per_job`` — target number of work batches per worker;
      more batches smooth load imbalance, fewer reduce dispatch
      overhead.  Chunking never affects results (the determinism
      contract), only wall-clock.
    """

    jobs: int = 1
    chunks_per_job: int = 4

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ReproError(
                f"jobs must be >= 0 (0 = one per CPU), got {self.jobs}"
            )
        if self.chunks_per_job < 1:
            raise ReproError(
                f"chunks_per_job must be >= 1, got {self.chunks_per_job}"
            )

    def resolve_jobs(self) -> int:
        """The concrete worker count (``0`` resolved to the CPU count)."""
        if self.jobs == 0:
            return os.cpu_count() or 1
        return self.jobs

    @property
    def serial(self) -> bool:
        """True when execution stays in-process."""
        return self.resolve_jobs() <= 1


#: The default configuration: everything runs in-process.
SERIAL = ParallelConfig(jobs=1)


def resolve_config(parallel: ParallelConfig | None, scale=None) -> ParallelConfig:
    """Effective configuration for a harness call.

    An explicit ``parallel`` argument wins; otherwise the ``jobs`` knob
    of the supplied :class:`~repro.scale.Scale` (when present) is used,
    falling back to serial execution.
    """
    if parallel is not None:
        return parallel
    jobs = getattr(scale, "jobs", 1) if scale is not None else 1
    return SERIAL if jobs == 1 else ParallelConfig(jobs=jobs)


def shard_ranges(
    n: int, config: ParallelConfig
) -> list[tuple[int, int]]:
    """Split ``range(n)`` into contiguous ``(start, stop)`` shards.

    Serial configurations get a single shard.  Parallel configurations
    get about ``chunks_per_job`` shards per worker (never more than
    ``n``), sized within one item of each other.  Shard boundaries are a
    pure function of ``(n, config)`` but, by the determinism contract,
    results must not depend on them anyway.
    """
    if n < 0:
        raise ReproError(f"cannot shard a negative range ({n})")
    if n == 0:
        return []
    if config.serial:
        return [(0, n)]
    n_shards = min(n, config.resolve_jobs() * config.chunks_per_job)
    base, extra = divmod(n, n_shards)
    ranges = []
    start = 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


#: Long-lived pools shared across grid submissions, keyed by worker
#: count.  A campaign or tuning pipeline issues many parallel maps in
#: sequence (one per grid, one per resumed run range); re-spawning a
#: process pool for each costs a measurable fraction of small cells, so
#: the grid layers reuse one pool per worker count instead.
_SHARED_POOLS: dict[int, ProcessPoolExecutor] = {}


def shared_pool(config: ParallelConfig) -> ProcessPoolExecutor | None:
    """A lazily created, cached pool for ``config`` (None when serial).

    The pool persists across calls (closed at interpreter exit or via
    :func:`close_shared_pools`); pass it to :func:`parallel_map`'s
    ``pool`` argument.  Results never depend on pool reuse — only the
    spawn overhead changes.
    """
    if config.serial:
        return None
    workers = config.resolve_jobs()
    pool = _SHARED_POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _SHARED_POOLS[workers] = pool
    return pool


def close_shared_pools() -> None:
    """Shut down every cached shared pool (tests; interpreter exit)."""
    pools = list(_SHARED_POOLS.values())
    _SHARED_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(close_shared_pools)


def _report(
    on_result: Callable[[int, object], None], index: int, result: object
) -> None:
    """Invoke the streaming hook, converting failures to a typed error.

    The hook is the ledger's checkpoint path; a bare exception from it
    would surface as an anonymous traceback mid-campaign.  Instead it
    aborts as :class:`~repro.errors.ResultHookError` carrying the work
    item's index (hooks that know their content key raise
    ``ResultHookError`` themselves and pass through untouched).
    """
    try:
        on_result(index, result)
    except ResultHookError:
        raise
    except Exception as exc:
        raise ResultHookError(index=index, detail=str(exc)) from exc


def parallel_map(
    fn: Callable,
    items: Iterable,
    config: ParallelConfig = SERIAL,
    on_result: Callable[[int, object], None] | None = None,
    pool: ProcessPoolExecutor | None = None,
) -> list:
    """Apply ``fn`` to every item, preserving input order.

    With a serial configuration (or at most one item) this is a plain
    in-process loop — no pool, no pickling.  Otherwise items are
    dispatched to a process pool in chunks; ``fn`` must be defined at
    module level and every item must be picklable (pass registry-backed
    specs, not live engines).

    ``on_result(index, result)`` is invoked in the parent process as
    each result becomes available — the hook the run ledger uses to
    checkpoint completed shards before the full map finishes.  Under a
    serial configuration the callback fires in input order; under a
    process pool it fires per completed *chunk* in completion order
    (never input order), so a slow early chunk cannot delay the
    checkpointing of finished later ones.  The callback cannot alter
    the returned results; an exception it raises aborts the map as a
    typed :class:`~repro.errors.ResultHookError` naming the work item
    (results already reported stay reported, which is exactly the
    at-least-this-much durability a checkpoint stream wants).

    ``pool`` optionally supplies an existing
    :class:`~concurrent.futures.ProcessPoolExecutor` to dispatch into
    (see :func:`shared_pool`); without it the call spawns and tears
    down its own pool, exactly as before.
    """
    work: Sequence = items if isinstance(items, Sequence) else list(items)
    if config.serial or len(work) <= 1:
        out = []
        for index, item in enumerate(work):
            result = fn(item)
            if on_result is not None:
                _report(on_result, index, result)
            out.append(result)
        return out
    workers = min(config.resolve_jobs(), len(work))
    chunksize = max(
        1, len(work) // (workers * config.chunks_per_job)
    )
    if pool is not None:
        return _pooled_map(fn, work, chunksize, on_result, pool)
    with ProcessPoolExecutor(max_workers=workers) as own_pool:
        return _pooled_map(fn, work, chunksize, on_result, own_pool)


def _pooled_map(
    fn: Callable,
    work: Sequence,
    chunksize: int,
    on_result: Callable[[int, object], None] | None,
    pool: ProcessPoolExecutor,
) -> list:
    """Dispatch chunks of ``work`` into ``pool`` (order-preserving)."""
    out: list = [None] * len(work)
    futures = {
        pool.submit(_apply_chunk, fn, work[start:start + chunksize]):
            start
        for start in range(0, len(work), chunksize)
    }
    for future in as_completed(futures):
        start = futures[future]
        for offset, result in enumerate(future.result()):
            if on_result is not None:
                _report(on_result, start + offset, result)
            out[start + offset] = result
    return out


def _apply_chunk(fn: Callable, chunk: Sequence) -> list:
    """Worker-side body of one :func:`parallel_map` chunk."""
    return [fn(item) for item in chunk]
