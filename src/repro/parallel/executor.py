"""The process-pool executor and work-sharding helpers.

``parallel_map`` is deliberately minimal: ordered results, chunked
submission, and a serial fast path that never touches multiprocessing.
Harness code stays correct-by-construction because per-item seeds are
derived from global indices (see the package docstring), so the only
job of this module is to move picklable work specs to workers and bring
shard records back.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

from ..errors import ReproError


@dataclass(frozen=True)
class ParallelConfig:
    """Worker-pool knobs shared by every parallel harness.

    * ``jobs`` — worker processes; ``1`` means serial in-process
      execution (the default everywhere), ``0`` means one per CPU.
    * ``chunks_per_job`` — target number of work batches per worker;
      more batches smooth load imbalance, fewer reduce dispatch
      overhead.  Chunking never affects results (the determinism
      contract), only wall-clock.
    """

    jobs: int = 1
    chunks_per_job: int = 4

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ReproError(
                f"jobs must be >= 0 (0 = one per CPU), got {self.jobs}"
            )
        if self.chunks_per_job < 1:
            raise ReproError(
                f"chunks_per_job must be >= 1, got {self.chunks_per_job}"
            )

    def resolve_jobs(self) -> int:
        """The concrete worker count (``0`` resolved to the CPU count)."""
        if self.jobs == 0:
            return os.cpu_count() or 1
        return self.jobs

    @property
    def serial(self) -> bool:
        """True when execution stays in-process."""
        return self.resolve_jobs() <= 1


#: The default configuration: everything runs in-process.
SERIAL = ParallelConfig(jobs=1)


def resolve_config(parallel: ParallelConfig | None, scale=None) -> ParallelConfig:
    """Effective configuration for a harness call.

    An explicit ``parallel`` argument wins; otherwise the ``jobs`` knob
    of the supplied :class:`~repro.scale.Scale` (when present) is used,
    falling back to serial execution.
    """
    if parallel is not None:
        return parallel
    jobs = getattr(scale, "jobs", 1) if scale is not None else 1
    return SERIAL if jobs == 1 else ParallelConfig(jobs=jobs)


def shard_ranges(
    n: int, config: ParallelConfig
) -> list[tuple[int, int]]:
    """Split ``range(n)`` into contiguous ``(start, stop)`` shards.

    Serial configurations get a single shard.  Parallel configurations
    get about ``chunks_per_job`` shards per worker (never more than
    ``n``), sized within one item of each other.  Shard boundaries are a
    pure function of ``(n, config)`` but, by the determinism contract,
    results must not depend on them anyway.
    """
    if n < 0:
        raise ReproError(f"cannot shard a negative range ({n})")
    if n == 0:
        return []
    if config.serial:
        return [(0, n)]
    n_shards = min(n, config.resolve_jobs() * config.chunks_per_job)
    base, extra = divmod(n, n_shards)
    ranges = []
    start = 0
    for i in range(n_shards):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def parallel_map(
    fn: Callable,
    items: Iterable,
    config: ParallelConfig = SERIAL,
    on_result: Callable[[int, object], None] | None = None,
) -> list:
    """Apply ``fn`` to every item, preserving input order.

    With a serial configuration (or at most one item) this is a plain
    in-process loop — no pool, no pickling.  Otherwise items are
    dispatched to a process pool in chunks; ``fn`` must be defined at
    module level and every item must be picklable (pass registry-backed
    specs, not live engines).

    ``on_result(index, result)`` is invoked in the parent process as
    each result becomes available — the hook the run ledger uses to
    checkpoint completed shards before the full map finishes.  Under a
    serial configuration the callback fires in input order; under a
    process pool it fires per completed *chunk* in completion order
    (never input order), so a slow early chunk cannot delay the
    checkpointing of finished later ones.  The callback cannot alter
    the returned results; an exception it raises aborts the map
    (results already reported stay reported, which is exactly the
    at-least-this-much durability a checkpoint stream wants).
    """
    work: Sequence = items if isinstance(items, Sequence) else list(items)
    if config.serial or len(work) <= 1:
        out = []
        for index, item in enumerate(work):
            result = fn(item)
            if on_result is not None:
                on_result(index, result)
            out.append(result)
        return out
    workers = min(config.resolve_jobs(), len(work))
    chunksize = max(
        1, len(work) // (workers * config.chunks_per_job)
    )
    out: list = [None] * len(work)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_apply_chunk, fn, work[start:start + chunksize]):
                start
            for start in range(0, len(work), chunksize)
        }
        for future in as_completed(futures):
            start = futures[future]
            for offset, result in enumerate(future.result()):
                if on_result is not None:
                    on_result(start + offset, result)
                out[start + offset] = result
    return out


def _apply_chunk(fn: Callable, chunk: Sequence) -> list:
    """Worker-side body of one :func:`parallel_map` chunk."""
    return [fn(item) for item in chunk]
