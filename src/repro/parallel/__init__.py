"""Process-pool execution of the embarrassingly parallel run loops.

The paper's numbers rest on brute scale — nearly half a billion litmus
executions and hour-long application campaigns — and every one of those
runs is independent.  This subsystem shards the four hot loops (litmus
execution batches, the tuning search grids, the campaign grid and
candidate fence-set checks) across worker processes while keeping the
statistics *bit-identical* to a serial run.

The determinism contract (see ``docs/ARCHITECTURE.md``):

* every unit of work seeds itself with :func:`repro.rng.derive_seed`
  from the experiment seed and the unit's *global* index or grid
  coordinates — never from shard-local state;
* shard boundaries therefore cannot influence any drawn random number,
  and merged results are independent of chunking and worker count;
* workers receive picklable *specs* (hardware profiles, litmus tests,
  stressing strategies — all plain frozen dataclasses) and construct
  live engines locally; engines and memory systems never cross process
  boundaries.
"""

from .executor import (
    SERIAL,
    ParallelConfig,
    close_shared_pools,
    parallel_map,
    resolve_config,
    shard_ranges,
    shared_pool,
)
from .plan import WorkUnit, execute_unit, register_executor, run_units
from .merge import (
    CellShard,
    CheckShard,
    LitmusShard,
    merge_cell_shards,
    merge_check_shards,
    merge_litmus_shards,
)

__all__ = [
    "ParallelConfig",
    "SERIAL",
    "parallel_map",
    "resolve_config",
    "shard_ranges",
    "shared_pool",
    "close_shared_pools",
    "WorkUnit",
    "execute_unit",
    "register_executor",
    "run_units",
    "LitmusShard",
    "CellShard",
    "CheckShard",
    "merge_litmus_shards",
    "merge_cell_shards",
    "merge_check_shards",
]
