"""Symmetry canonicalisation of litmus tests.

Two litmus tests are the *same* test if one can be obtained from the
other by permuting threads, renaming locations, renaming registers or
relabelling stored values — MP with threads swapped and ``x``/``y``
exchanged is still MP.  Synthesis enumerates raw programs and must not
emit such duplicates, so this module computes a canonical form: the
lexicographically least encoding over all thread permutations, with
locations renamed in first-appearance order, registers renumbered
``r1, r2, …`` in scan order, and stored values relabelled
``1, 2, …`` per location in first-appearance order (``0`` stays the
initial value).  Conjunction/disjunction operands of the condition are
sorted after renaming, so logically identical conditions written in a
different order also collapse.

The canonical form is itself a :class:`~repro.litmus.tests.LitmusTest`
(same name/description), which makes the key properties testable:
``canonicalize`` is idempotent, and invariant under thread permutation
and location renaming (hypothesis-checked in the test suite).
"""

from __future__ import annotations

from itertools import permutations

from ..litmus.ir import (
    And,
    I_FENCE,
    I_LOAD,
    I_RMW,
    I_STORE,
    LocEq,
    Or,
    RegEq,
)
from ..litmus.tests import LitmusTest

#: Canonical location alphabet, by first appearance in the canonical
#: thread order.  Synthesis and the registry stay far below this.
LOC_NAMES = ("x", "y", "z", "w", "v", "u", "t", "s")


def _rename_program(threads, order):
    """Rename the thread tuple permuted by ``order``.

    Returns ``(new_threads, loc_map, reg_map, val_maps)`` where
    ``val_maps[original_loc]`` maps stored values to canonical ones
    (``0`` always maps to ``0``).
    """
    loc_map: dict = {}
    reg_map: dict = {}
    val_maps: dict = {}

    def canon_loc(loc):
        if loc not in loc_map:
            loc_map[loc] = LOC_NAMES[len(loc_map)]
            val_maps[loc] = {0: 0}
        return loc_map[loc]

    def canon_val(loc, value):
        vmap = val_maps[loc]
        if value not in vmap:
            vmap[value] = max(vmap.values()) + 1
        return vmap[value]

    new_threads = []
    for tid in order:
        new_program = []
        for ins in threads[tid]:
            op = ins[0]
            if op == I_FENCE:
                new_program.append(ins)
            elif op == I_STORE:
                loc = canon_loc(ins[1])
                new_program.append((op, loc, canon_val(ins[1], ins[2])))
            elif op == I_LOAD:
                loc = canon_loc(ins[1])
                reg_map.setdefault(ins[2], f"r{len(reg_map) + 1}")
                new_program.append((op, loc, reg_map[ins[2]]))
            elif op == I_RMW:
                loc = canon_loc(ins[1])
                reg_map.setdefault(ins[2], f"r{len(reg_map) + 1}")
                new_program.append(
                    (op, loc, reg_map[ins[2]], canon_val(ins[1], ins[3]))
                )
            else:  # pragma: no cover - validate_test rejects these
                raise ValueError(f"unknown instruction {op!r}")
        new_threads.append(tuple(new_program))
    return tuple(new_threads), loc_map, reg_map, val_maps


def _reg_locs(threads) -> dict:
    """Map each register to the location its defining read touches."""
    out = {}
    for program in threads:
        for ins in program:
            if ins[0] in (I_LOAD, I_RMW):
                out[ins[2]] = ins[1]
    return out


def _extend_val_maps(cond, reg_locs, val_maps):
    """Give condition-only values canonical names.

    A condition may compare against a value the program never stores
    (e.g. a deliberately unsatisfiable clause).  Each such value gets
    the next canonical slot for its location, assigned in sorted
    numeric order — monotone, hence stable under re-canonicalisation.
    """
    extra: dict = {}

    def visit(c):
        if isinstance(c, RegEq):
            loc = reg_locs.get(c.reg)
            if loc is not None and c.value not in val_maps[loc]:
                extra.setdefault(loc, set()).add(c.value)
        elif isinstance(c, LocEq):
            if c.loc in val_maps and c.value not in val_maps[c.loc]:
                extra.setdefault(c.loc, set()).add(c.value)
        elif isinstance(c, (And, Or)):
            for term in c.terms:
                visit(term)

    visit(cond)
    for loc, values in extra.items():
        vmap = val_maps[loc]
        for v in sorted(values):
            vmap[v] = max(vmap.values()) + 1


def _cond_key(cond):
    if isinstance(cond, RegEq):
        return (0, len(cond.reg), cond.reg, cond.value)
    if isinstance(cond, LocEq):
        return (1, len(cond.loc), cond.loc, cond.value)
    if isinstance(cond, And):
        return (2, tuple(_cond_key(t) for t in cond.terms))
    return (3, tuple(_cond_key(t) for t in cond.terms))


def _rename_cond(cond, loc_map, reg_map, reg_locs, val_maps):
    if isinstance(cond, RegEq):
        loc = reg_locs[cond.reg]
        return RegEq(reg_map[cond.reg], val_maps[loc][cond.value])
    if isinstance(cond, LocEq):
        return LocEq(loc_map[cond.loc], val_maps[cond.loc][cond.value])
    terms = sorted(
        (_rename_cond(t, loc_map, reg_map, reg_locs, val_maps)
         for t in cond.terms),
        key=_cond_key,
    )
    return And(*terms) if isinstance(cond, And) else Or(*terms)


def _program_encoding(threads):
    return tuple(tuple(thread) for thread in threads)


def _candidates(threads, forbidden):
    """Yield ``(encoding, new_threads, new_forbidden)`` per thread
    permutation; the canonical form is the minimum encoding."""
    reg_locs = _reg_locs(threads)
    for order in permutations(range(len(threads))):
        new_threads, loc_map, reg_map, val_maps = _rename_program(
            threads, order
        )
        if forbidden is None:
            yield (_program_encoding(new_threads), new_threads, None)
            continue
        _extend_val_maps(forbidden, reg_locs, val_maps)
        new_forbidden = _rename_cond(
            forbidden, loc_map, reg_map, reg_locs, val_maps
        )
        encoding = (_program_encoding(new_threads), _cond_key(new_forbidden))
        yield (encoding, new_threads, new_forbidden)


def canonicalize(test: LitmusTest) -> LitmusTest:
    """Canonical representative of ``test``'s symmetry class.

    Idempotent, and invariant (as declared content) under thread
    permutation, location renaming, register renaming and store-value
    relabelling.  Name and description are preserved.
    """
    best = min(_candidates(test.threads, test.forbidden),
               key=lambda cand: cand[0])
    return LitmusTest(
        name=test.name,
        description=test.description,
        threads=best[1],
        forbidden=best[2],
    )


def canonical_key(test: LitmusTest) -> tuple:
    """Hashable identity of ``test``'s symmetry class (program and
    condition)."""
    return min(cand[0] for cand in _candidates(test.threads, test.forbidden))


def canonical_program_key(threads) -> tuple:
    """Hashable identity of a bare thread tuple's symmetry class,
    ignoring any condition — used to deduplicate synthesis candidates
    before a condition has been derived."""
    return min(cand[0] for cand in _candidates(tuple(threads), None))
