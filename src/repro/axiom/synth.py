"""Bounded litmus-test synthesis from the axiomatic model.

The registry's sixteen tests were written by hand from the literature.
This module derives such tests mechanically: enumerate every bounded
program over ``st``/``ld``/``rmw``/``fence`` for a fixed thread count,
prune the shapes that cannot distinguish memory models, deduplicate by
symmetry canonicalisation (:mod:`repro.axiom.canon`), and keep exactly
the programs for which the axiomatic model admits a weak-allowed,
SC-unreachable final state.  For each survivor the forbidden condition
is derived from that state and greedily minimised while it stays
SC-unreachable, yielding a ready-to-register
:class:`~repro.litmus.tests.LitmusTest`.

Everything is static — no simulation.  The synthesized set is then fed
to the backend soundness gate and the cross-chip survey by the
``gpu-wmm synth`` subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations_with_replacement, product

from ..litmus.ir import (
    And,
    I_FENCE,
    I_LOAD,
    I_RMW,
    I_STORE,
    LocEq,
    RegEq,
    compile_condition,
    format_condition,
)
from ..litmus.tests import ALL_TESTS, LitmusTest
from .canon import (
    LOC_NAMES,
    _cond_key,
    canonical_key,
    canonical_program_key,
    canonicalize,
)
from .model import _enumerate


@dataclass(frozen=True)
class SynthConfig:
    """Bounds for the enumeration.

    ``threads`` is the exact thread count; ``max_ops`` bounds the
    memory operations per thread (fences do not count against it);
    ``locations``/``values`` size the alphabets.  The defaults span a
    few thousand candidate pairs and run in seconds; three-thread
    spaces need tighter bounds.
    """

    threads: int = 2
    max_ops: int = 2
    locations: int = 2
    values: int = 1
    rmw: bool = True
    fences: bool = True
    limit: int = 0          # 0 = emit every deduplicated test

    def __post_init__(self):
        if not 2 <= self.threads <= 3:
            raise ValueError("synthesis supports 2 or 3 threads")
        if not 1 <= self.max_ops <= 3:
            raise ValueError("max_ops must be 1..3")
        if not 1 <= self.locations <= len(LOC_NAMES):
            raise ValueError(f"locations must be 1..{len(LOC_NAMES)}")
        if not 1 <= self.values <= 3:
            raise ValueError("values must be 1..3")


@dataclass(frozen=True)
class Synthesized:
    """One emitted test: always weak-allowed ∧ SC-unreachable by
    construction; ``matches`` names the registry test it is a symmetry
    variant of, if any."""

    test: LitmusTest
    matches: str | None

    @property
    def novel(self) -> bool:
        return self.matches is None


@dataclass(frozen=True)
class SynthReport:
    config: SynthConfig
    programs_enumerated: int
    programs_pruned: int
    programs_deduped: int
    distinguishing: int
    tests: tuple = field(default_factory=tuple)

    @property
    def novel(self) -> tuple:
        return tuple(s for s in self.tests if s.novel)


def _mem_ops(cfg: SynthConfig):
    """Memory-operation alphabet; register slots filled in later."""
    ops = []
    for loc in LOC_NAMES[:cfg.locations]:
        for v in range(1, cfg.values + 1):
            ops.append((I_STORE, loc, v))
            if cfg.rmw:
                ops.append((I_RMW, loc, None, v))
        ops.append((I_LOAD, loc, None))
    return ops


def _thread_programs(cfg: SynthConfig):
    """Every thread program up to the bounds, as instruction tuples
    with ``None`` register placeholders.  Fences appear only strictly
    between memory operations — leading/trailing fences order nothing."""
    ops = _mem_ops(cfg)
    programs = []
    for length in range(1, cfg.max_ops + 1):
        for combo in product(ops, repeat=length):
            if not cfg.fences or length == 1:
                programs.append(combo)
                continue
            for gaps in product((False, True), repeat=length - 1):
                program = [combo[0]]
                for fenced, ins in zip(gaps, combo[1:]):
                    if fenced:
                        program.append((I_FENCE,))
                    program.append(ins)
                programs.append(tuple(program))
    return programs


def _assign_registers(threads):
    """Replace ``None`` register placeholders with globally unique
    ``r1, r2, …`` in scan order."""
    counter = 0
    out = []
    for program in threads:
        new_program = []
        for ins in program:
            if ins[0] == I_LOAD:
                counter += 1
                new_program.append((I_LOAD, ins[1], f"r{counter}"))
            elif ins[0] == I_RMW:
                counter += 1
                new_program.append((I_RMW, ins[1], f"r{counter}", ins[3]))
            else:
                new_program.append(ins)
        out.append(tuple(new_program))
    return tuple(out)


def _communicating(threads) -> bool:
    """Prune shapes that cannot distinguish memory models: every
    location must be touched by ≥ 2 threads, and something must be
    observable (a read, or a location with ≥ 2 writes)."""
    touched: dict = {}
    writes: dict = {}
    has_read = False
    for tid, program in enumerate(threads):
        for ins in program:
            if ins[0] == I_FENCE:
                continue
            touched.setdefault(ins[1], set()).add(tid)
            if ins[0] in (I_STORE, I_RMW):
                writes[ins[1]] = writes.get(ins[1], 0) + 1
            if ins[0] in (I_LOAD, I_RMW):
                has_read = True
    if not touched:
        return False
    if any(len(tids) < 2 for tids in touched.values()):
        return False
    return has_read or any(n >= 2 for n in writes.values())


def _derive_condition(threads, weak_only, sc_states):
    """Condition for the 'best' weak-only state: the full conjunction
    of its register/memory equalities, greedily minimised while no SC
    state satisfies it.  Every weak-only state is scored and the
    shortest (then lexicographically least) condition wins."""
    sc_envs = [(dict(regs), dict(mem)) for regs, mem in sc_states]

    def sc_reachable(cond) -> bool:
        pred = compile_condition(cond)
        return any(pred(regs, mem) for regs, mem in sc_envs)

    best = None
    for regs, mem in sorted(weak_only):
        terms = [RegEq(r, v) for r, v in regs]
        terms += [LocEq(loc, v) for loc, v in mem]
        # Drop terms one at a time as long as the remainder still
        # excludes every SC state.
        for term in list(terms):
            if len(terms) == 1:
                break
            trial = [t for t in terms if t is not term]
            if not sc_reachable(And(*trial) if len(trial) > 1 else trial[0]):
                terms = trial
        cond = And(*terms) if len(terms) > 1 else terms[0]
        key = (len(terms), _cond_key(cond))
        if best is None or key < best[0]:
            best = (key, cond)
    return best[1]


def synthesize(cfg: SynthConfig = SynthConfig()) -> SynthReport:
    """Run the bounded enumeration and return every deduplicated test
    whose forbidden outcome is weak-allowed ∧ SC-unreachable."""
    registry_keys = {canonical_key(t): t.name for t in ALL_TESTS}

    singles = _thread_programs(cfg)
    enumerated = 0
    pruned = 0
    survivors = {}
    for combo in combinations_with_replacement(singles, cfg.threads):
        enumerated += 1
        threads = _assign_registers(combo)
        if not _communicating(threads):
            continue
        pruned += 1
        key = canonical_program_key(threads)
        if key in survivors:
            continue
        survivors[key] = canonicalize(
            LitmusTest(
                name="synth",
                description="synthesis candidate",
                threads=threads,
                # Placeholder until the real condition is derived; a
                # thread program never starts with a fence, so the
                # first instruction always names a location.
                forbidden=LocEq(threads[0][0][1], 0),
            )
        ).threads

    emitted = []
    distinguishing = 0
    for key in sorted(survivors):
        threads = survivors[key]
        _, modes = _enumerate(threads)
        weak_only = frozenset(modes["program"]) - frozenset(modes["full"])
        if not weak_only:
            continue
        distinguishing += 1
        cond = _derive_condition(threads, weak_only, modes["full"])
        test = LitmusTest(
            name=f"SYN-{len(emitted) + 1}",
            description=(
                f"synthesized ({cfg.threads}T, <={cfg.max_ops} ops): "
                f"forbid {format_condition(cond)}"
            ),
            threads=threads,
            forbidden=cond,
        )
        emitted.append(Synthesized(
            test=test,
            matches=registry_keys.get(canonical_key(test)),
        ))
        if cfg.limit and len(emitted) >= cfg.limit:
            break

    return SynthReport(
        config=cfg,
        programs_enumerated=enumerated,
        programs_pruned=pruned,
        programs_deduped=len(survivors),
        distinguishing=distinguishing,
        tests=tuple(emitted),
    )
