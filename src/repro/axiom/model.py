"""Herd-style axiomatic model over litmus IR programs.

A *candidate execution* of a litmus test is a choice of

* ``rf`` (reads-from): for every read event, the write event (or the
  implicit initial write of ``0``) it reads its value from, and
* ``co`` (coherence): for every location, a total order over the writes
  to it, starting at the initial write.

From those two relations the model derives ``fr`` (from-reads:
``rf⁻¹ ; co``), and together with program order ``po`` and the
fence-induced order ``fo`` it applies three declarative axioms:

* **coherence** (uniproc / SC-per-location):
  ``acyclic(po_loc ∪ rf ∪ co ∪ fr)``;
* **atomicity**: a successful ``rmw`` event reads from the write that
  immediately precedes it in ``co`` — no foreign write intervenes;
* **fenced happens-before**: ``acyclic(fo ∪ rf ∪ co ∪ fr)`` where
  ``fo`` relates two memory events of a thread iff a fence instruction
  sits between them in program order.

An execution surviving all three is *weak-allowed*.  Replacing ``fo``
with the full per-thread program order turns the last axiom into
Shasha–Snir's criterion ``acyclic(po ∪ com)``, which holds exactly for
the SC-reachable executions — so the same enumeration also yields the
*SC-allowed* set, and the brute-force interleaver in
:mod:`repro.litmus.sc` becomes an independent cross-check rather than
the only oracle.

No simulation happens here: fences are not events, stress patterns and
timing do not exist, and every classification comes with a symbolic
witness (the ``rf``/``co`` choice) that can be printed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import permutations, product
from math import factorial
from typing import NamedTuple

from ..litmus.ir import I_FENCE, I_LOAD, I_RMW, I_STORE, evaluate
from ..litmus.tests import LitmusTest

#: Fence modes accepted by :func:`axiom_outcomes`.  ``program`` keeps
#: the fences the program actually contains, ``full`` inserts one
#: between every program-ordered pair of memory events (≡ SC), and
#: ``none`` drops all fences (the weakest model expressible here).
FENCE_MODES = ("program", "full", "none")

VERDICT_SC = "sc"
VERDICT_WEAK = "weak"
VERDICT_FORBIDDEN = "forbidden"

#: Safety valve for the symbolic enumeration: candidate executions are
#: ``Π |rf options| × Π |writes(loc)|!`` before pruning, and synthesis
#: drives this function in a loop.
MAX_CANDIDATES = 4_000_000


class Event(NamedTuple):
    """One memory event.  ``kind`` is ``"W"`` (store), ``"R"`` (load)
    or ``"U"`` (rmw: a single event with both read and write roles).
    Initial writes use ``tid == -1``."""

    eid: int
    tid: int
    idx: int
    kind: str
    loc: str
    value: int
    reg: str


class _Universe(NamedTuple):
    events: tuple
    read_eids: tuple
    rf_options: tuple          # per read: candidate source write eids
    write_perms: tuple         # per written loc: program write eids
    written_locs: tuple
    value_of: dict
    loc_of: dict
    po_pairs: tuple
    po_loc_pairs: tuple
    fence_pairs: tuple
    labels: dict
    n_candidates: int


def _label(ev: Event) -> str:
    if ev.tid < 0:
        return f"init {ev.loc}=0"
    if ev.kind == "W":
        return f"T{ev.tid}.{ev.idx} st {ev.loc}={ev.value}"
    if ev.kind == "R":
        return f"T{ev.tid}.{ev.idx} ld {ev.loc}->{ev.reg}"
    return f"T{ev.tid}.{ev.idx} rmw {ev.loc}->{ev.reg},={ev.value}"


def _build_universe(threads) -> _Universe:
    events = []
    by_thread = []          # per thread: list of (instr_index, eid)
    fence_at = []           # per thread: set of instruction indices
    for tid, program in enumerate(threads):
        mine = []
        fences = set()
        for idx, ins in enumerate(program):
            op = ins[0]
            if op == I_FENCE:
                fences.add(idx)
                continue
            eid = len(events)
            if op == I_STORE:
                events.append(Event(eid, tid, idx, "W", ins[1], ins[2], ""))
            elif op == I_LOAD:
                events.append(Event(eid, tid, idx, "R", ins[1], 0, ins[2]))
            elif op == I_RMW:
                events.append(Event(eid, tid, idx, "U", ins[1], ins[3], ins[2]))
            else:  # pragma: no cover - validate_test rejects these
                raise ValueError(f"unknown instruction {op!r}")
            mine.append((idx, eid))
        by_thread.append(mine)
        fence_at.append(fences)

    locations = []
    for ev in events:
        if ev.loc not in locations:
            locations.append(ev.loc)

    init_eid = {}
    for loc in locations:
        eid = len(events)
        events.append(Event(eid, -1, -1, "W", loc, 0, ""))
        init_eid[loc] = eid

    value_of = {ev.eid: ev.value for ev in events if ev.kind in ("W", "U")}
    loc_of = {ev.eid: ev.loc for ev in events}
    labels = {ev.eid: _label(ev) for ev in events}

    writes_by_loc = {loc: [] for loc in locations}
    for ev in events:
        if ev.tid >= 0 and ev.kind in ("W", "U"):
            writes_by_loc[ev.loc].append(ev.eid)
    written_locs = tuple(loc for loc in locations if writes_by_loc[loc])

    read_eids = tuple(ev.eid for ev in events if ev.kind in ("R", "U"))
    rf_options = []
    for eid in read_eids:
        loc = loc_of[eid]
        opts = [init_eid[loc]]
        opts += [w for w in writes_by_loc[loc] if w != eid]
        rf_options.append(tuple(opts))
    rf_options = tuple(rf_options)

    po_pairs = []
    po_loc_pairs = []
    fence_pairs = []
    for tid, mine in enumerate(by_thread):
        fences = fence_at[tid]
        for i, (idx_a, a) in enumerate(mine):
            for idx_b, b in mine[i + 1:]:
                po_pairs.append((a, b))
                if loc_of[a] == loc_of[b]:
                    po_loc_pairs.append((a, b))
                if any(idx_a < f < idx_b for f in fences):
                    fence_pairs.append((a, b))

    n_candidates = 1
    for opts in rf_options:
        n_candidates *= len(opts)
    for loc in written_locs:
        n_candidates *= factorial(len(writes_by_loc[loc]))

    return _Universe(
        events=tuple(events),
        read_eids=read_eids,
        rf_options=rf_options,
        write_perms=tuple(tuple(writes_by_loc[loc]) for loc in written_locs),
        written_locs=written_locs,
        value_of=value_of,
        loc_of=loc_of,
        po_pairs=tuple(po_pairs),
        po_loc_pairs=tuple(po_loc_pairs),
        fence_pairs=tuple(fence_pairs),
        labels=labels,
        n_candidates=n_candidates,
    )


def _acyclic(n_events, edges) -> bool:
    indeg = [0] * n_events
    adj = [[] for _ in range(n_events)]
    for a, b in edges:
        adj[a].append(b)
        indeg[b] += 1
    stack = [v for v in range(n_events) if indeg[v] == 0]
    seen = 0
    while stack:
        v = stack.pop()
        seen += 1
        for w in adj[v]:
            indeg[w] -= 1
            if indeg[w] == 0:
                stack.append(w)
    return seen == n_events


@lru_cache(maxsize=4096)
def _enumerate(threads):
    """Enumerate axiom-consistent executions of ``threads``.

    Returns ``(universe, {mode: {state: (rf, co)}})`` mapping each
    fence mode to its allowed final states, each with one witness
    (the first ``rf``/``co`` choice that produced it).  A final state
    uses the same key shape as :func:`repro.litmus.sc.sc_outcomes`:
    ``(sorted register items, sorted memory items over written locs)``.
    """
    u = _build_universe(threads)
    if u.n_candidates > MAX_CANDIDATES:
        raise ValueError(
            f"litmus program has {u.n_candidates} candidate executions "
            f"(limit {MAX_CANDIDATES}); tighten the synthesis bounds"
        )
    n = len(u.events)
    modes = {mode: {} for mode in FENCE_MODES}
    fo_of = {"none": (), "program": u.fence_pairs, "full": u.po_pairs}

    co_choices = [
        tuple(permutations(writes)) if len(writes) > 1 else (writes,)
        for writes in u.write_perms
    ]
    init_of = {}
    for ev in u.events:
        if ev.tid < 0:
            init_of[ev.loc] = ev.eid

    for rf_sel in product(*u.rf_options):
        rf = dict(zip(u.read_eids, rf_sel))
        for co_sel in product(*co_choices):
            co = {
                loc: (init_of[loc],) + order
                for loc, order in zip(u.written_locs, co_sel)
            }
            # Locations that are only read still have a (trivial)
            # coherence order: just the initial write.
            co_pos = {}
            for loc, order in co.items():
                for pos, w in enumerate(order):
                    co_pos[w] = pos

            # Atomicity: an rmw reads from its immediate co-predecessor.
            atomic = True
            for eid in u.read_eids:
                ev = u.events[eid]
                if ev.kind != "U":
                    continue
                if co_pos[eid] != co_pos[rf[eid]] + 1:
                    atomic = False
                    break
            if not atomic:
                continue

            com = [(w, r) for r, w in rf.items() if w != r]
            for loc, order in co.items():
                for i in range(len(order) - 1):
                    com.append((order[i], order[i + 1]))
            for r, w in rf.items():
                order = co.get(u.loc_of[r])
                if order is None:
                    continue
                for w2 in order[co_pos[w] + 1:]:
                    if w2 != r:
                        com.append((r, w2))          # fr edge

            if not _acyclic(n, list(u.po_loc_pairs) + com):
                continue

            regs = tuple(sorted(
                (u.events[r].reg, u.value_of[rf[r]]) for r in u.read_eids
            ))
            mem = tuple(sorted(
                (loc, u.value_of[co[loc][-1]]) for loc in u.written_locs
            ))
            state = (regs, mem)

            for mode, fo in fo_of.items():
                if state in modes[mode]:
                    continue
                if _acyclic(n, com + list(fo)):
                    witness = (
                        tuple((u.labels[r], u.labels[rf[r]])
                              for r in u.read_eids),
                        tuple((loc, tuple(u.labels[w] for w in co[loc]))
                              for loc in u.written_locs),
                    )
                    modes[mode][state] = witness
    return u, modes


def _as_test(test_or_threads):
    if isinstance(test_or_threads, LitmusTest):
        return test_or_threads.threads
    return tuple(test_or_threads)


def axiom_outcomes(test, fences: str = "program") -> frozenset:
    """Final states the axiomatic model allows for ``test``.

    ``fences`` selects the fence order composed into happens-before;
    see :data:`FENCE_MODES`.  With ``fences="full"`` the result is the
    SC-reachable set (Shasha–Snir), i.e. it must equal
    :func:`repro.litmus.sc.sc_outcomes`.
    """
    if fences not in FENCE_MODES:
        raise ValueError(f"unknown fence mode {fences!r}")
    _, modes = _enumerate(_as_test(test))
    return frozenset(modes[fences])


def written_locations(test) -> tuple:
    """Locations with at least one program write, in first-use order
    (the locations whose final value the model — and ``sc.py`` —
    tracks)."""
    u, _ = _enumerate(_as_test(test))
    return u.written_locs


@dataclass(frozen=True)
class Witness:
    """One axiom-consistent execution: the reads-from choice and the
    per-location coherence order that realise an allowed state."""

    rf: tuple
    co: tuple

    def format(self) -> str:
        parts = [f"[{r}] <- [{w}]" for r, w in self.rf]
        for loc, chain in self.co:
            if len(chain) > 1:
                parts.append(f"co({loc}): " + " ; ".join(chain))
        return " | ".join(parts) if parts else "(empty)"


@dataclass(frozen=True)
class OutcomeVerdict:
    """Classification of one conceivable final state."""

    regs: tuple
    final: tuple
    verdict: str
    witness: Witness | None

    @property
    def state(self):
        return (self.regs, self.final)

    def format_state(self) -> str:
        parts = [f"{r}={v}" for r, v in self.regs]
        parts += [f"[{loc}]={v}" for loc, v in self.final]
        return " ".join(parts) if parts else "(empty)"


@dataclass(frozen=True)
class AxiomReport:
    """Full verdict table for one litmus test."""

    test: LitmusTest
    outcomes: tuple
    condition: str          # verdict for the test's forbidden predicate
    sc_agrees: bool         # full-fence set == litmus.sc enumeration

    @property
    def sc_states(self) -> frozenset:
        return frozenset(o.state for o in self.outcomes
                         if o.verdict == VERDICT_SC)

    @property
    def weak_states(self) -> frozenset:
        """All allowed states (SC ⊆ weak)."""
        return frozenset(o.state for o in self.outcomes
                         if o.verdict != VERDICT_FORBIDDEN)

    @property
    def forbidden_states(self) -> frozenset:
        return frozenset(o.state for o in self.outcomes
                         if o.verdict == VERDICT_FORBIDDEN)

    def verdict_of(self, regs: dict, final: dict) -> str:
        """Classify an observed outcome (e.g. from a backend run).

        ``final`` may mention extra locations; it is projected onto the
        model's written locations first.  States outside the allowed
        sets — including states outside the conceivable-value table —
        are forbidden.
        """
        state = observation_key(self.test, regs, final)
        if state in self.sc_states:
            return VERDICT_SC
        if state in self.weak_states:
            return VERDICT_WEAK
        return VERDICT_FORBIDDEN


def observation_key(test, regs: dict, final: dict):
    """Normalise an observed ``(regs, final)`` pair into the model's
    state-key shape, projecting ``final`` onto written locations."""
    written = written_locations(test)
    return (
        tuple(sorted(regs.items())),
        tuple(sorted((loc, final.get(loc, 0)) for loc in written)),
    )


def _conceivable_states(u):
    """The full value table: every register bound to 0 or any value
    written to its location, every written location ending at any of
    its written values.  All allowed states fall inside it."""
    write_vals = {loc: [] for loc in u.written_locs}
    for ev in u.events:
        if ev.tid >= 0 and ev.kind in ("W", "U"):
            if ev.value not in write_vals[ev.loc]:
                write_vals[ev.loc].append(ev.value)

    reg_axes = []
    for eid in u.read_eids:
        ev = u.events[eid]
        domain = [0]
        for v in write_vals.get(ev.loc, ()):
            if v not in domain:
                domain.append(v)
        reg_axes.append((ev.reg, tuple(sorted(domain))))
    loc_axes = [(loc, tuple(sorted(write_vals[loc]))) for loc in u.written_locs]

    for reg_vals in product(*(vals for _, vals in reg_axes)):
        regs = tuple(sorted(zip((r for r, _ in reg_axes), reg_vals)))
        for loc_vals in product(*(vals for _, vals in loc_axes)):
            mem = tuple(sorted(zip((l2 for l2, _ in loc_axes), loc_vals)))
            yield (regs, mem)


def condition_verdict(test: LitmusTest) -> str:
    """How the test's *forbidden* predicate relates to the model:

    * ``"weak"`` — satisfiable in a weak-allowed execution but in no
      SC execution (a genuine relaxed-memory observable);
    * ``"forbidden"`` — satisfiable in no allowed execution at all
      (the test is a negative check: it must stay silent everywhere);
    * ``"sc-reachable"`` — satisfiable already under SC (the test
      would be vacuous as a weak-memory litmus).
    """
    _, modes = _enumerate(test.threads)
    weak = modes["program"]
    sc = modes["full"]
    for regs, mem in sc:
        if evaluate(test.forbidden, dict(regs), dict(mem)):
            return "sc-reachable"
    for regs, mem in weak:
        if evaluate(test.forbidden, dict(regs), dict(mem)):
            return VERDICT_WEAK
    return VERDICT_FORBIDDEN


def classify(test: LitmusTest) -> AxiomReport:
    """Build the full verdict table for ``test``: every conceivable
    final state classified SC / weak / forbidden, with a witness
    execution attached to each allowed state."""
    from ..litmus.sc import sc_outcomes

    u, modes = _enumerate(test.threads)
    weak = modes["program"]
    sc = modes["full"]

    outcomes = []
    for state in _conceivable_states(u):
        regs, mem = state
        if state in sc:
            verdict, witness = VERDICT_SC, Witness(*sc[state])
        elif state in weak:
            verdict, witness = VERDICT_WEAK, Witness(*weak[state])
        else:
            verdict, witness = VERDICT_FORBIDDEN, None
        outcomes.append(OutcomeVerdict(regs, mem, verdict, witness))

    return AxiomReport(
        test=test,
        outcomes=tuple(outcomes),
        condition=condition_verdict(test),
        sc_agrees=frozenset(sc) == frozenset(sc_outcomes(test)),
    )
