"""Axiomatic weak-memory oracle and litmus-test synthesis.

The execution backends (:mod:`repro.litmus.runner`,
:mod:`repro.litmus.compile`, :mod:`repro.litmus.vector`) *sample* weak
behaviours from a simulated memory system; this package instead
*declares* which behaviours exist.  :mod:`repro.axiom.model` is a
herd-style static analysis over litmus IR programs: it enumerates
candidate executions symbolically (reads-from ``rf``, coherence ``co``,
derived from-reads ``fr``, program order ``po`` and fence-induced
order), applies a small declarative axiom set, and classifies every
final state of a test as SC-allowed, weak-allowed or forbidden — with a
witness execution for every allowed state.

Three consumers sit on top:

* the simulator-soundness gate (:mod:`repro.testing.soundness`), which
  asserts that no backend ever produces an axiomatically forbidden
  outcome at fixed seeds;
* bounded litmus-test synthesis (:mod:`repro.axiom.synth`), which
  enumerates two/three-thread programs over ``st``/``ld``/``rmw``/
  ``fence``, deduplicates them by symmetry canonicalisation
  (:mod:`repro.axiom.canon`) and keeps exactly the programs with a
  weak-allowed, SC-unreachable outcome;
* the ``gpu-wmm axiom`` / ``gpu-wmm synth`` CLI subcommands
  (rendered by :mod:`repro.reporting.axiom`).
"""

from .model import (
    FENCE_MODES,
    VERDICT_FORBIDDEN,
    VERDICT_SC,
    VERDICT_WEAK,
    AxiomReport,
    OutcomeVerdict,
    Witness,
    axiom_outcomes,
    classify,
    condition_verdict,
    written_locations,
)
from .canon import canonical_key, canonical_program_key, canonicalize
from .synth import SynthConfig, SynthReport, Synthesized, synthesize

__all__ = [
    "FENCE_MODES",
    "VERDICT_SC",
    "VERDICT_WEAK",
    "VERDICT_FORBIDDEN",
    "Witness",
    "OutcomeVerdict",
    "AxiomReport",
    "axiom_outcomes",
    "classify",
    "condition_verdict",
    "written_locations",
    "canonicalize",
    "canonical_key",
    "canonical_program_key",
    "SynthConfig",
    "SynthReport",
    "Synthesized",
    "synthesize",
]
