"""Lease bookkeeping for the distributed coordinator.

The coordinator partitions a campaign's work units into *leases*: a
lease is a batch of unit indices granted to one worker together with a
deadline.  The worker heartbeats to extend the deadline while it
computes; when results come back the lease settles; when the deadline
passes (worker hung) or the connection drops (worker died, e.g.
``kill -9``) the lease's unfinished units return to the pending queue
and the next requesting worker picks them up.

Lease *size* is adaptive by default.  The table keeps a per-worker
EWMA of unit service time, fed by :meth:`LeaseTable.observe` from
result timings, and sizes each grant so one lease takes roughly
``target_lease_s`` of compute — big batches early (amortising the
request/grant round trip), shrinking toward the tail (a grant never
takes more than its fair share of what is left, so one straggler
cannot hold the last units hostage).  A worker with no history gets a
one-unit probe lease; a fleet-wide mean covers fresh workers once any
peer has reported.  The lease deadline scales with the granted size —
a 100-unit lease legitimately takes ~100x longer than a probe, and
must not expire mid-burn.  Passing an integer ``units_per_lease``
disables all of this and restores the fixed-size behaviour exactly.

Every failure a unit survives — an explicit worker-reported execution
failure, a lost connection, an expired deadline — spends one charge of
its *attempt budget*.  A unit that exhausts the budget is **poison**:
instead of crash-looping the fleet forever it is parked in the
quarantine list, reported at merge time, and the campaign completes
around it (``done`` counts quarantined units as resolved).  Voluntary
abandonment (a draining worker returning unexecuted units, or a
pipelined worker ``release``-ing an unstarted prefetched lease) costs
nothing — it is not the unit's fault.

Nothing here touches sockets or time directly — ``now`` is injected so
tests can drive expiry deterministically — and nothing here knows what
a unit *is* beyond its index.  Correctness of reassignment (the same
unit possibly executing twice) is carried entirely by content keys: the
merge is idempotent, so at-least-once delivery is enough.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..errors import DistError

#: Default per-unit attempt budget before quarantine.
MAX_ATTEMPTS = 3

#: Default compute duration one adaptive lease aims for.  Long enough
#: that the grant round trip is noise, short enough that losing a lease
#: (worker death) forfeits only a few seconds of work.
DEFAULT_TARGET_LEASE_S = 2.0

#: EWMA smoothing for per-worker unit service time: heavy enough to
#: converge within a few leases, light enough to ride out one outlier.
EWMA_ALPHA = 0.4

#: Hard ceiling on one adaptive grant, whatever the estimate says.
MAX_LEASE_UNITS = 256

#: Tail shrink: an adaptive grant never exceeds ceil(pending / this),
#: so near the end leases shrink and stragglers cannot monopolise the
#: last units.
TAIL_FACTOR = 2


@dataclass
class Lease:
    """One grant: which units, to whom, until when."""

    lease_id: int
    worker: str
    indices: tuple[int, ...]
    deadline: float
    #: When the grant was made (the table's injected clock) — the
    #: coordinator-side fallback for timing v2 workers that do not
    #: report ``elapsed_s``.
    granted_at: float = 0.0


@dataclass
class Settlement:
    """What one lease settlement did, for logging and merge decisions."""

    completed: tuple[int, ...] = ()
    repended: tuple[int, ...] = ()
    quarantined: tuple[int, ...] = ()
    abandoned: tuple[int, ...] = ()


@dataclass
class LeaseTable:
    """Pending/active/completed/quarantined bookkeeping over
    ``n_units`` units.

    * ``pending`` — unit indices nobody holds (deque; *reassigned*
      units go to the front so a recovering campaign finishes
      stragglers first, while *failed* units go to the back so healthy
      work drains before a flaky unit is retried);
    * ``active`` — granted leases by id;
    * ``completed`` — unit indices whose results have merged;
    * ``quarantined`` — unit index -> reason, for units that exhausted
      ``max_attempts`` (never granted again; counted as resolved).

    ``units_per_lease=None`` (the default) enables adaptive sizing
    against ``target_lease_s``; an integer fixes every grant to that
    size and ignores the controller entirely.
    """

    n_units: int
    timeout: float = 60.0
    units_per_lease: int | None = None
    max_attempts: int = MAX_ATTEMPTS
    target_lease_s: float = DEFAULT_TARGET_LEASE_S
    now: Callable[[], float] = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.now is None:
            import time

            self.now = time.monotonic
        if self.timeout <= 0:
            raise DistError(f"lease timeout must be > 0, got {self.timeout}")
        if self.units_per_lease is not None and self.units_per_lease < 1:
            raise DistError(
                f"units_per_lease must be >= 1, got {self.units_per_lease}"
            )
        if (
            not math.isfinite(self.target_lease_s)
            or self.target_lease_s <= 0
        ):
            raise DistError(
                f"target_lease_s must be a finite positive number, got "
                f"{self.target_lease_s}"
            )
        if self.max_attempts < 1:
            raise DistError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        self.pending: deque[int] = deque(range(self.n_units))
        self.active: dict[int, Lease] = {}
        self.completed: set[int] = set()
        self.quarantined: dict[int, str] = {}
        #: index -> number of attempt-budget charges spent.
        self.attempts: dict[int, int] = {}
        #: index -> distinct workers that charged it (for the report).
        self.failed_workers: dict[int, set[str]] = {}
        #: worker ident -> EWMA of seconds per unit (adaptive sizing).
        self.service_ewma: dict[str, float] = {}
        self._next_id = 1

    # -- adaptive sizing ------------------------------------------------
    def observe(self, worker: str, n_units: int, elapsed_s: float) -> None:
        """Feed one lease's timing into the worker's service-time EWMA.

        ``elapsed_s`` may arrive over the network (a v3 worker reports
        its own execution time); junk — non-finite, negative, or a
        zero-unit report — is ignored rather than poisoning the
        estimate.
        """
        if n_units < 1:
            return
        try:
            elapsed = float(elapsed_s)
        except (TypeError, ValueError):
            return
        if not math.isfinite(elapsed) or elapsed < 0:
            return
        per_unit = elapsed / n_units
        previous = self.service_ewma.get(worker)
        if previous is None:
            self.service_ewma[worker] = per_unit
        else:
            self.service_ewma[worker] = (
                EWMA_ALPHA * per_unit + (1.0 - EWMA_ALPHA) * previous
            )

    def estimate(self, worker: str) -> float | None:
        """Seconds-per-unit estimate for ``worker``: its own EWMA, else
        the fleet mean, else None (no peer has reported yet)."""
        own = self.service_ewma.get(worker)
        if own is not None:
            return own
        if self.service_ewma:
            return sum(self.service_ewma.values()) / len(self.service_ewma)
        return None

    def _adaptive_size(self, worker: str) -> tuple[int, float]:
        """Grant size and per-unit time estimate for one adaptive
        lease.  No history anywhere -> a one-unit probe (its timing
        seeds the EWMA); otherwise ``target_lease_s`` worth of units,
        capped by :data:`MAX_LEASE_UNITS` and the tail-shrink share of
        what is pending."""
        per_unit = self.estimate(worker)
        if per_unit is None:
            return 1, 0.0
        if per_unit <= 0:
            size = MAX_LEASE_UNITS
        else:
            size = int(self.target_lease_s / per_unit)
        tail_cap = max(1, math.ceil(len(self.pending) / TAIL_FACTOR))
        return max(1, min(size, MAX_LEASE_UNITS, tail_cap)), per_unit

    # -- grants ---------------------------------------------------------
    def grant(self, worker: str) -> Lease | None:
        """Lease a batch of pending units to ``worker``.

        Returns None when nothing is pending (the worker should wait:
        active leases may yet expire and re-pend their units).  Batch
        size is ``units_per_lease`` when fixed, controller-chosen when
        adaptive; the adaptive deadline stretches by the predicted
        execution time so a big lease is not punished for being big.
        """
        if not self.pending:
            return None
        if self.units_per_lease is not None:
            size = self.units_per_lease
            slack = 0.0
        else:
            size, per_unit = self._adaptive_size(worker)
            slack = per_unit * size
        indices = []
        while self.pending and len(indices) < size:
            indices.append(self.pending.popleft())
        now = self.now()
        lease = Lease(
            lease_id=self._next_id,
            worker=worker,
            indices=tuple(indices),
            deadline=now + self.timeout + slack,
            granted_at=now,
        )
        self._next_id += 1
        self.active[lease.lease_id] = lease
        return lease

    def heartbeat(self, lease_id: int) -> bool:
        """Extend a lease's deadline; False when the lease is no longer
        held (expired and reassigned — the worker should drop it)."""
        lease = self.active.get(lease_id)
        if lease is None:
            return False
        lease.deadline = self.now() + self.timeout
        return True

    def settle(
        self,
        lease_id: int,
        completed: set[int] | None = None,
        failed: dict[int, str] | None = None,
    ) -> Settlement | None:
        """Resolve a lease from its worker's result report.

        ``completed`` are indices whose records merged; ``failed`` maps
        indices the worker *tried and could not execute* to an error
        description (each charges the unit's attempt budget); any other
        lease index was abandoned without an attempt (a draining
        worker, or a pipelined worker releasing an unstarted prefetch)
        and re-pends for free.  Settling an unknown lease returns None —
        the lease expired, was reassigned, and its duplicate results
        merge idempotently by content key, so the late worker is simply
        thanked and ignored.
        """
        lease = self.active.pop(lease_id, None)
        if lease is None:
            return None
        completed = completed or set()
        failed = failed or {}
        done, repended, parked, abandoned = [], [], [], []
        for index in lease.indices:
            if index in self.completed or index in self.quarantined:
                continue
            if index in completed:
                self.completed.add(index)
                done.append(index)
            elif index in failed:
                if self._charge(index, lease.worker, failed[index]):
                    parked.append(index)
                else:
                    # Failed units go to the back: drain healthy work
                    # before retrying a flaky unit.
                    self.pending.append(index)
                    repended.append(index)
            else:
                abandoned.append(index)
        for index in reversed(abandoned):
            self.pending.appendleft(index)
        return Settlement(
            completed=tuple(done),
            repended=tuple(repended),
            quarantined=tuple(parked),
            abandoned=tuple(abandoned),
        )

    def complete(self, lease_id: int) -> tuple[int, ...]:
        """Mark a whole lease's units done; returns the indices
        completed (the no-failure fast path over :meth:`settle`)."""
        lease = self.active.get(lease_id)
        if lease is None:
            return ()
        settlement = self.settle(lease_id, completed=set(lease.indices))
        return settlement.completed if settlement else ()

    # -- failure paths --------------------------------------------------
    def _charge(self, index: int, worker: str, reason: str) -> bool:
        """Spend one attempt-budget charge; True when the unit just
        crossed into quarantine."""
        spent = self.attempts.get(index, 0) + 1
        self.attempts[index] = spent
        self.failed_workers.setdefault(index, set()).add(worker)
        if spent >= self.max_attempts:
            workers = ", ".join(sorted(self.failed_workers[index]))
            self.quarantined[index] = (
                f"{spent} failed attempts across worker(s) [{workers}]; "
                f"last: {reason}"
            )
            return True
        return False

    def expire(self) -> list[Lease]:
        """Re-pend every lease whose deadline has passed (hung worker).

        The boundary is inclusive: a lease expiring exactly *at* the
        injected clock's ``now`` is expired (integer test clocks step
        right onto deadlines).
        """
        now = self.now()
        expired = [
            lease for lease in self.active.values() if lease.deadline <= now
        ]
        for lease in expired:
            self._reassign(lease, "lease deadline expired")
        return expired

    def release_worker(self, worker: str) -> list[Lease]:
        """Re-pend every lease held by ``worker`` (connection dropped)."""
        dropped = [
            lease for lease in self.active.values() if lease.worker == worker
        ]
        for lease in dropped:
            self._reassign(lease, "worker connection lost")
        return dropped

    def _reassign(self, lease: Lease, reason: str) -> None:
        """A lost lease charges each unfinished unit's attempt budget —
        a unit that keeps taking workers down with it (a poison unit
        whose executor exits the process) must still hit quarantine."""
        del self.active[lease.lease_id]
        for index in reversed(lease.indices):
            if index in self.completed or index in self.quarantined:
                continue
            if not self._charge(index, lease.worker, reason):
                self.pending.appendleft(index)

    # -- queries --------------------------------------------------------
    def next_deadline(self) -> float | None:
        """The soonest active deadline (None when no lease is active)."""
        if not self.active:
            return None
        return min(lease.deadline for lease in self.active.values())

    @property
    def done(self) -> bool:
        return (
            len(self.completed) + len(self.quarantined) == self.n_units
        )
