"""Lease bookkeeping for the distributed coordinator.

The coordinator partitions a campaign's work units into *leases*: a
lease is a batch of unit indices granted to one worker together with a
deadline.  The worker heartbeats to extend the deadline while it
computes; when results come back the lease completes; when the deadline
passes (worker hung) or the connection drops (worker died, e.g.
``kill -9``) the lease's unfinished units return to the pending queue
and the next requesting worker picks them up.

Nothing here touches sockets or time directly — ``now`` is injected so
tests can drive expiry deterministically — and nothing here knows what
a unit *is* beyond its index.  Correctness of reassignment (the same
unit possibly executing twice) is carried entirely by content keys: the
merge is idempotent, so at-least-once delivery is enough.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from ..errors import DistError


@dataclass
class Lease:
    """One grant: which units, to whom, until when."""

    lease_id: int
    worker: str
    indices: tuple[int, ...]
    deadline: float


@dataclass
class LeaseTable:
    """Pending/active/completed bookkeeping over ``n_units`` units.

    * ``pending`` — unit indices nobody holds (deque; reassigned units
      go to the *front* so a recovering campaign finishes stragglers
      first);
    * ``active`` — granted leases by id;
    * ``completed`` — unit indices whose results have merged.
    """

    n_units: int
    timeout: float = 60.0
    units_per_lease: int = 1
    now: Callable[[], float] = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.now is None:
            import time

            self.now = time.monotonic
        if self.timeout <= 0:
            raise DistError(f"lease timeout must be > 0, got {self.timeout}")
        if self.units_per_lease < 1:
            raise DistError(
                f"units_per_lease must be >= 1, got {self.units_per_lease}"
            )
        self.pending: deque[int] = deque(range(self.n_units))
        self.active: dict[int, Lease] = {}
        self.completed: set[int] = set()
        self._next_id = 1

    # -- grants ---------------------------------------------------------
    def grant(self, worker: str) -> Lease | None:
        """Lease up to ``units_per_lease`` pending units to ``worker``.

        Returns None when nothing is pending (the worker should wait:
        active leases may yet expire and re-pend their units).
        """
        if not self.pending:
            return None
        indices = []
        while self.pending and len(indices) < self.units_per_lease:
            indices.append(self.pending.popleft())
        lease = Lease(
            lease_id=self._next_id,
            worker=worker,
            indices=tuple(indices),
            deadline=self.now() + self.timeout,
        )
        self._next_id += 1
        self.active[lease.lease_id] = lease
        return lease

    def heartbeat(self, lease_id: int) -> bool:
        """Extend a lease's deadline; False when the lease is no longer
        held (expired and reassigned — the worker should drop it)."""
        lease = self.active.get(lease_id)
        if lease is None:
            return False
        lease.deadline = self.now() + self.timeout
        return True

    def complete(self, lease_id: int) -> tuple[int, ...]:
        """Mark a lease's units done; returns the indices completed.

        Completing an unknown lease returns ``()`` — the lease expired,
        was reassigned, and its duplicate results merge idempotently by
        content key, so the late worker is simply thanked and ignored.
        """
        lease = self.active.pop(lease_id, None)
        if lease is None:
            return ()
        self.completed.update(lease.indices)
        return lease.indices

    # -- failure paths --------------------------------------------------
    def expire(self) -> list[Lease]:
        """Re-pend every lease whose deadline has passed (hung worker)."""
        now = self.now()
        expired = [
            lease for lease in self.active.values() if lease.deadline < now
        ]
        for lease in expired:
            self._reassign(lease)
        return expired

    def release_worker(self, worker: str) -> list[Lease]:
        """Re-pend every lease held by ``worker`` (connection dropped)."""
        dropped = [
            lease for lease in self.active.values() if lease.worker == worker
        ]
        for lease in dropped:
            self._reassign(lease)
        return dropped

    def _reassign(self, lease: Lease) -> None:
        del self.active[lease.lease_id]
        for index in reversed(lease.indices):
            if index not in self.completed:
                self.pending.appendleft(index)

    # -- queries --------------------------------------------------------
    def next_deadline(self) -> float | None:
        """The soonest active deadline (None when no lease is active)."""
        if not self.active:
            return None
        return min(lease.deadline for lease in self.active.values())

    @property
    def done(self) -> bool:
        return len(self.completed) == self.n_units
