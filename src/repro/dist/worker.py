"""The socket worker: lease, execute, stream, prefetch — and survive.

``run_worker`` connects to a coordinator, executes whatever work units
it is leased (through the same executor registry the local pool uses,
so any machine with the library importable can serve any unit kind),
and streams the records back.  Against a v3 coordinator the loop is
*pipelined*: as soon as a lease's units begin executing the worker
requests the next lease, so the grant's network latency overlaps
compute instead of serialising with it — one prefetched lease at most,
heartbeats covering both held leases, and an explicit ``release``
handing an unstarted prefetch back on drain.  Each completed unit
ships immediately as a ``result-part`` frame (cutting peak frame size
and tail latency); the final ``result`` frame carries only failures
and the lease's ``elapsed_s``, which feeds the coordinator's adaptive
lease sizing.  Against a v2 coordinator every one of these features
gates off and the worker behaves exactly as before: one blocking lease
at a time, one result frame at lease end, raw frames.

One heartbeat round-trip happens per completed unit: the coordinator
acknowledges with ``beat`` and ``held=False`` means the lease expired
and was reassigned, in which case the worker **discards its in-flight
work** — the reassignment already owns those units, and reporting
stale results would only burn bandwidth on duplicates the merge drops
anyway.

Failure handling is explicit at every layer:

* a unit whose executor raises is reported in the result's ``failed``
  list (charging its coordinator-side attempt budget) instead of
  killing the worker — one poison unit costs one attempt, not a fleet
  member;
* a lost connection (coordinator crash, injected reset, garbage on the
  wire) triggers reconnect with exponential backoff and deterministic
  jitter, re-hello, and resumed leasing; results that were in flight
  when the connection died are resent after the handshake and merge
  idempotently.  ``reconnect_timeout`` bounds the total outage ridden
  out (0 disables reconnection: any loss is immediately fatal, the
  pre-v2 behaviour);
* ``drain_check`` (wired to SIGTERM by the CLI) requests a graceful
  exit: the worker stops starting units, reports what it finished,
  releases its prefetched lease and leaves the rest of the current
  lease unreported — the coordinator re-pends those *without* charging
  their budgets — and says ``bye``.

Fault sites here: ``worker.heartbeat`` (kind ``drop``) loses a beat on
the floor, and ``worker.prefetch`` can ``skip`` the pipelined request
(falling back to the blocking path) or ``delay`` it.
"""

from __future__ import annotations

import math
import socket
import time
from typing import Callable

from ..errors import ProtocolError, WorkerExitError
from ..faults.runtime import fault_at
from ..parallel.executor import SERIAL, ParallelConfig
from ..parallel.plan import WorkUnit, execute_unit, run_units
from ..rng import derive_seed
from .protocol import (
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    FrameDecoder,
    WireStats,
    recv_message,
    send_message,
)

#: Blocking-socket timeout; also the hang detector for a coordinator
#: that stops responding entirely.
SOCKET_TIMEOUT_S = 60.0

#: Ceiling on a server-supplied ``wait`` retry interval.  The value
#: arrives over the network; a corrupted or hostile frame must not be
#: able to park a worker for an hour (or forever, via ``inf``/``nan``).
RETRY_MAX_S = 5.0

#: Reconnect backoff: base * 2**attempt, capped, then jittered.
BACKOFF_BASE_S = 0.1
BACKOFF_CAP_S = 5.0

_CONNECT_RETRY_S = 0.1

#: Default total outage a worker rides out before giving up.
RECONNECT_TIMEOUT_S = 30.0


class _ConnectionLost(Exception):
    """Internal: the coordinator connection died mid-session.  The
    outer loop decides whether that means reconnect or fatal exit."""


def clamp_retry_s(value: object) -> float:
    """Validate a server-supplied ``retry_s`` (satellite of the fault
    plane: every network-supplied number gets bounds).  Non-numeric or
    non-finite values raise :class:`~repro.errors.ProtocolError`;
    finite values clamp into ``[0, RETRY_MAX_S]``."""
    try:
        retry = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"non-numeric retry_s {value!r} in wait message"
        ) from exc
    if not math.isfinite(retry):
        raise ProtocolError(
            f"non-finite retry_s {retry!r} in wait message"
        )
    return min(max(retry, 0.0), RETRY_MAX_S)


def backoff_delay(name: str, attempt: int) -> float:
    """Reconnect pause before ``attempt`` (0-based): exponential in the
    attempt, capped, with deterministic jitter derived from the worker
    name — a fleet sharing one dead coordinator fans out instead of
    thundering back in lockstep, yet every run of the same worker
    produces the same schedule (the chaos determinism contract)."""
    base = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2 ** attempt))
    jitter = derive_seed(0, "worker-backoff", name, attempt) / float(2 ** 64)
    return base * (0.5 + 0.5 * jitter)


def _connect_retry(
    host: str, port: int, connect_timeout: float
) -> socket.socket:
    """Dial the coordinator, retrying refused connections until
    ``connect_timeout`` elapses (workers routinely start before the
    coordinator has bound)."""
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            return socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise WorkerExitError(
                    f"could not reach coordinator at {host}:{port} "
                    f"within {connect_timeout:g}s: {exc}"
                ) from exc
            time.sleep(_CONNECT_RETRY_S)


class _WorkerState:
    """What survives a reconnect: progress count and unconfirmed
    result messages awaiting resend."""

    def __init__(self) -> None:
        self.executed = 0
        self.resend: list[dict] = []


class WorkerStats:
    """Observable counters one ``run_worker`` call accumulates across
    reconnects — what the protocol benchmark measures.

    ``blocking_grants`` counts request round-trips the worker had to
    *wait* for (idle on the wire); ``prefetched_grants`` counts grants
    whose request was pipelined behind execution.  ``wire`` carries the
    raw-vs-compressed byte accounting for every frame either way.
    """

    def __init__(self) -> None:
        self.executed = 0
        self.blocking_grants = 0
        self.prefetched_grants = 0
        self.wait_sleeps = 0
        self.parts_sent = 0
        self.leases_served = 0
        self.wire = WireStats()


def run_worker(
    host: str,
    port: int,
    name: str = "worker",
    jobs: int = 1,
    max_units: int | None = None,
    delay: float = 0.0,
    connect_timeout: float = 10.0,
    reconnect_timeout: float = RECONNECT_TIMEOUT_S,
    drain_check: Callable[[], bool] | None = None,
    log: Callable[[str], None] | None = None,
    protocol: int = PROTOCOL_VERSION,
    pipeline: bool = True,
    compress: bool = True,
    stats: WorkerStats | None = None,
) -> int:
    """Serve one coordinator until it says ``done``; returns the number
    of units this worker executed.

    * ``jobs`` — process-pool width for executing each lease's units
      (1 = in the worker process itself);
    * ``max_units`` — leave voluntarily (``bye``) after this many units,
      for exercising worker churn;
    * ``delay`` — sleep this long before each lease's execution, for
      simulating stragglers in tests;
    * ``connect_timeout`` — how long to keep retrying the initial
      connect;
    * ``reconnect_timeout`` — total mid-campaign outage to ride out via
      backoff-and-reconnect before giving up (0 = fail immediately on
      any loss);
    * ``drain_check`` — polled between units; True requests a graceful
      drain (finish nothing new, release the leases, say ``bye``);
    * ``protocol`` — highest protocol version to offer in ``hello``
      (lowering it to 2 reproduces the synchronous v2 worker exactly);
    * ``pipeline`` / ``compress`` — opt out of lease prefetching or
      frame compression even when v3 is negotiated;
    * ``stats`` — a :class:`WorkerStats` to fill with grant/wire
      counters (benchmarks and tests).

    A connection irrecoverably lost before ``done`` raises
    :class:`~repro.errors.WorkerExitError` — the coordinator crashed or
    fenced this worker off; either way the worker cannot know the
    campaign finished.
    """
    log = log or (lambda message: None)
    config = SERIAL if jobs <= 1 else ParallelConfig(jobs=jobs)
    state = _WorkerState()
    stats = stats if stats is not None else WorkerStats()
    first = True
    outage_start: float | None = None
    attempt = 0
    try:
        while True:
            try:
                if first:
                    sock = _connect_retry(host, port, connect_timeout)
                    first = False
                else:
                    try:
                        sock = socket.create_connection(
                            (host, port), timeout=SOCKET_TIMEOUT_S
                        )
                    except OSError as exc:
                        raise _ConnectionLost(
                            f"reconnect refused: {exc}"
                        ) from exc

                def connected() -> None:
                    nonlocal outage_start, attempt
                    if outage_start is not None:
                        log(
                            f"{name}: reconnected after {attempt} "
                            "attempt(s)"
                        )
                    outage_start = None
                    attempt = 0

                session = _Session(
                    sock,
                    name=name,
                    config=config,
                    state=state,
                    max_units=max_units,
                    delay=delay,
                    drain_check=drain_check,
                    connected=connected,
                    log=log,
                    protocol=protocol,
                    pipeline=pipeline,
                    compress=compress,
                    stats=stats,
                )
                return session.run()
            except _ConnectionLost as exc:
                if reconnect_timeout <= 0:
                    raise WorkerExitError(
                        f"{name}: coordinator vanished mid-campaign "
                        f"(connection closed without done): {exc}"
                    ) from exc
                now = time.monotonic()
                if outage_start is None:
                    outage_start = now
                if now - outage_start >= reconnect_timeout:
                    raise WorkerExitError(
                        f"{name}: coordinator unreachable for "
                        f"{reconnect_timeout:g}s ({attempt} reconnect "
                        f"attempt(s)): {exc}"
                    ) from exc
                pause = backoff_delay(name, attempt)
                attempt += 1
                log(
                    f"{name}: connection lost ({exc}); reconnect attempt "
                    f"{attempt} in {pause:.2f}s"
                )
                time.sleep(pause)
    finally:
        stats.executed = state.executed


class _Session:
    """One connection's lifetime: handshake, resend, pipelined lease
    loop.

    The session owns the three pieces of v3 state the synchronous loop
    never needed:

    * ``prefetch`` — a granted-but-unstarted ``lease`` message,
      buffered while the current lease executes (at most one);
    * ``prefetch_pending`` — a ``request`` is on the wire and its reply
      has not been read yet (it will be routed off the socket by
      whichever read sees it first);
    * ``done_seen`` — a ``done`` arrived out-of-band (broadcast, or in
      place of a grant): the campaign is complete, nothing further may
      be sent.

    :meth:`run` raises :class:`_ConnectionLost` on any socket-level
    failure so the caller can reconnect, and
    :class:`~repro.errors.WorkerExitError` on deliberate refusal.
    """

    def __init__(
        self,
        sock: socket.socket,
        name: str = "worker",
        config: ParallelConfig = SERIAL,
        state: _WorkerState | None = None,
        max_units: int | None = None,
        delay: float = 0.0,
        drain_check: Callable[[], bool] | None = None,
        connected: Callable[[], None] | None = None,
        log: Callable[[str], None] | None = None,
        protocol: int = PROTOCOL_VERSION,
        pipeline: bool = True,
        compress: bool = True,
        stats: WorkerStats | None = None,
    ) -> None:
        self.sock = sock
        self.name = name
        self.config = config
        self.state = state if state is not None else _WorkerState()
        self.max_units = max_units
        self.delay = delay
        self.drain_check = drain_check
        self.connected = connected or (lambda: None)
        self.log = log or (lambda message: None)
        self.protocol = protocol
        self.pipeline = pipeline
        self.compress_wanted = compress
        self.stats = stats if stats is not None else WorkerStats()
        self.decoder = FrameDecoder(stats=self.stats.wire)
        self.negotiated = MIN_PROTOCOL_VERSION
        self.send_compress = False
        self.prefetch: dict | None = None
        self.prefetch_pending = False
        self.done_seen = False

    # -- wire helpers ---------------------------------------------------
    @property
    def v3(self) -> bool:
        return self.negotiated >= 3

    def _send(self, message: dict) -> None:
        send_message(
            self.sock,
            message,
            compress=self.send_compress,
            stats=self.stats.wire,
        )

    def _recv(self) -> dict:
        reply = recv_message(self.sock, self.decoder)
        if reply is None:
            raise _ConnectionLost("connection closed by coordinator")
        return reply

    # -- lifecycle ------------------------------------------------------
    def run(self) -> int:
        try:
            self.sock.settimeout(SOCKET_TIMEOUT_S)
            self._handshake()
            self._resend_stash()
            return self._lease_loop()
        except (WorkerExitError, _ConnectionLost):
            raise
        except ProtocolError as exc:
            # Garbage on the wire (real or injected): this connection
            # is unusable, but a fresh one may be fine.
            raise _ConnectionLost(f"protocol failure: {exc}") from exc
        except OSError as exc:
            raise _ConnectionLost(str(exc)) from exc
        finally:
            self.sock.close()

    def _handshake(self) -> None:
        self._send(
            {
                "type": "hello",
                "worker": self.name,
                "protocol": self.protocol,
                "compress": bool(self.compress_wanted),
            }
        )
        welcome = recv_message(self.sock, self.decoder)
        if welcome is None:
            raise _ConnectionLost(
                "coordinator closed the connection during handshake"
            )
        if welcome["type"] == "error":
            raise WorkerExitError(
                f"coordinator refused {self.name}: "
                f"{welcome.get('message')}"
            )
        if welcome["type"] != "welcome":
            raise ProtocolError(
                f"expected welcome, got {welcome['type']!r}"
            )
        negotiated = welcome.get("protocol", MIN_PROTOCOL_VERSION)
        if (
            not isinstance(negotiated, int)
            or isinstance(negotiated, bool)
            or not MIN_PROTOCOL_VERSION <= negotiated <= self.protocol
        ):
            raise ProtocolError(
                f"coordinator negotiated unusable protocol "
                f"{negotiated!r} (offered {self.protocol})"
            )
        self.negotiated = negotiated
        self.send_compress = (
            self.v3
            and bool(self.compress_wanted)
            and bool(welcome.get("compress"))
        )
        self.connected()
        self.log(
            f"{self.name}: connected to coordinator (protocol "
            f"v{self.negotiated}, compression "
            f"{'on' if self.send_compress else 'off'}, "
            f"{welcome.get('units_total')} units in plan)"
        )

    def _resend_stash(self) -> None:
        while self.state.resend:
            # Unconfirmed results from before a reconnect: the merge is
            # idempotent, so resending can only fill holes, never harm.
            message = self.state.resend[0]
            self.log(
                f"{self.name}: resending result for lease "
                f"{message.get('lease')} after reconnect"
            )
            self._send(message)
            self.state.resend.pop(0)

    def _lease_loop(self) -> int:
        while True:
            if self.drain_check is not None and self.drain_check():
                return self._retire(
                    f"draining on request; executed "
                    f"{self.state.executed} units"
                )
            if (
                self.max_units is not None
                and self.state.executed >= self.max_units
            ):
                return self._retire(
                    f"leaving after {self.state.executed} units "
                    "(--max-units)"
                )
            grant = self._obtain_grant()
            kind = grant["type"]
            if kind == "done":
                self.log(
                    f"{self.name}: campaign complete; executed "
                    f"{self.state.executed} units"
                )
                return self.state.executed
            if kind == "wait":
                self.stats.wait_sleeps += 1
                time.sleep(clamp_retry_s(grant.get("retry_s", 0.5)))
                continue
            if kind != "lease":
                raise ProtocolError(f"unexpected message {kind!r}")
            self.state.executed += self._serve_lease(grant)
            if self.done_seen:
                self.log(
                    f"{self.name}: campaign complete; executed "
                    f"{self.state.executed} units"
                )
                return self.state.executed

    def _retire(self, reason: str) -> int:
        """Graceful exit: flush the outstanding prefetch (releasing an
        unstarted grant so the coordinator re-pends it immediately and
        without charge) and say ``bye``."""
        if self.prefetch_pending:
            self.prefetch_pending = False
            reply = self._await_grant()
            if reply["type"] == "lease":
                self.prefetch = reply
            elif reply["type"] == "done":
                self.done_seen = True
        if self.prefetch is not None:
            if self.v3 and not self.done_seen:
                self._send(
                    {"type": "release", "lease": self.prefetch["lease"]}
                )
                self.log(
                    f"{self.name}: released unstarted prefetched lease "
                    f"{self.prefetch['lease']}"
                )
            self.prefetch = None
        if not self.done_seen:
            self._send({"type": "bye"})
        self.log(f"{self.name}: {reason}")
        return self.state.executed

    # -- grants ---------------------------------------------------------
    def _obtain_grant(self) -> dict:
        """The next lease/wait/done, consuming the pipelined request
        when one is outstanding instead of paying a fresh round trip."""
        if self.prefetch is not None:
            grant = self.prefetch
            self.prefetch = None
            self.stats.prefetched_grants += 1
            return grant
        if self.prefetch_pending:
            # The request went out while the last lease executed; only
            # the reply read blocks here.
            self.prefetch_pending = False
            self.stats.prefetched_grants += 1
            return self._await_grant()
        self._send({"type": "request"})
        self.stats.blocking_grants += 1
        return self._await_grant()

    def _await_grant(self) -> dict:
        while True:
            reply = self._recv()
            kind = reply["type"]
            if kind in ("lease", "wait", "done"):
                return reply
            if kind == "beat":
                continue  # stale ack from an already-settled lease
            if kind == "error":
                raise WorkerExitError(
                    f"coordinator error: {reply.get('message')}"
                )
            raise ProtocolError(
                f"unexpected message {kind!r} while awaiting a lease"
            )

    def _maybe_prefetch(self, lease_id: int) -> None:
        """Pipeline the next request behind the current lease's
        execution (v3 only; at most one outstanding).

        Fault site ``worker.prefetch``: ``skip`` falls back to the
        blocking request path for this lease, ``delay`` stalls the
        request send."""
        if not (self.pipeline and self.v3):
            return
        if self.prefetch is not None or self.prefetch_pending:
            return
        event = fault_at("worker.prefetch", token=lease_id)
        if event is not None:
            if event.kind == "skip":
                self.log(
                    f"{self.name}: prefetch after lease {lease_id} "
                    "skipped (injected)"
                )
                return
            if event.kind == "delay":
                time.sleep(float(event.param("delay_s", 0.05)))
        self._send({"type": "request"})
        self.prefetch_pending = True

    # -- heartbeats -----------------------------------------------------
    def _heartbeat(self, lease_id: int) -> bool:
        """One heartbeat round-trip; False means this lease is gone (or
        the campaign finished) and in-flight work for it must be
        discarded.

        Fault site ``worker.heartbeat`` (kind ``drop``) loses the beat
        entirely — the worker believes the lease is alive while the
        coordinator watches it expire, which is exactly the split-brain
        the ``held=False`` discard protocol exists for.
        """
        event = fault_at("worker.heartbeat", token=lease_id)
        if event is not None and event.kind == "drop":
            self.log(
                f"{self.name}: heartbeat for lease {lease_id} dropped "
                "(injected)"
            )
            return True
        self._send({"type": "heartbeat", "lease": lease_id})
        return self._await_beat(lease_id)

    def _await_beat(self, lease_id: int) -> bool:
        """Read until the ack for ``lease_id`` arrives, routing
        whatever else the coordinator interleaved: the pipelined grant
        reply is buffered, a ``done`` broadcast ends the campaign
        (returned as lease-lost so in-flight work stops)."""
        while True:
            reply = self._recv()
            kind = reply["type"]
            if kind == "beat":
                if reply.get("lease", lease_id) == lease_id:
                    return bool(reply.get("held", True))
                continue  # ack for the other held lease, already acted on
            if kind == "done":
                self.done_seen = True
                return False
            if kind in ("lease", "wait") and self.prefetch_pending:
                self._route_prefetch_reply(reply)
                continue
            if kind == "error":
                raise WorkerExitError(
                    f"coordinator error: {reply.get('message')}"
                )
            raise ProtocolError(
                f"unexpected message {kind!r} while awaiting heartbeat "
                "ack"
            )

    def _route_prefetch_reply(self, reply: dict) -> None:
        self.prefetch_pending = False
        if reply["type"] == "lease":
            self.prefetch = reply
        # ``wait``: nothing pending coordinator-side right now; the
        # lease loop will issue a fresh (blocking) request when the
        # current lease finishes.

    def _beat_both(self, lease_id: int) -> bool:
        """Heartbeat the executing lease and, when granted, the
        buffered prefetched lease; False means the *current* lease is
        gone.  A prefetched grant that expired is silently dropped —
        its units were already reassigned."""
        if not self._heartbeat(lease_id):
            return False
        if self.prefetch is not None and not self.done_seen:
            prefetched_id = self.prefetch.get("lease", -1)
            if not self._heartbeat(prefetched_id):
                if not self.done_seen:
                    self.log(
                        f"{self.name}: prefetched lease "
                        f"{prefetched_id} lost while buffered; "
                        "discarding the grant"
                    )
                self.prefetch = None
        return True

    # -- lease execution ------------------------------------------------
    def _serve_lease(self, message: dict) -> int:
        lease_id = message["lease"]
        units = [WorkUnit.from_json(obj) for obj in message["units"]]
        started = time.monotonic()
        self._maybe_prefetch(lease_id)
        if self.delay > 0:
            time.sleep(self.delay)
        records: list = []
        failed: list[dict] = []
        streamed = 0
        if not self.config.serial and len(units) > 1:
            pooled = self._execute_pooled(lease_id, units)
            if pooled is None:
                return 0  # lease lost mid-map; work discarded
            records, failed, streamed = pooled
        else:
            for position, unit in enumerate(units):
                if self.drain_check is not None and self.drain_check():
                    self.log(
                        f"{self.name}: draining; releasing "
                        f"{len(units) - position} unexecuted unit(s) of "
                        f"lease {lease_id}"
                    )
                    break
                record = None
                try:
                    record = execute_unit(unit)
                except Exception as exc:
                    failed.append(
                        {
                            "key": unit.key,
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    )
                    self.log(f"{self.name}: unit {unit.key!r} failed: {exc}")
                if record is not None:
                    if self.v3:
                        self._send(
                            {
                                "type": "result-part",
                                "lease": lease_id,
                                "records": [record.to_json()],
                            }
                        )
                        self.stats.parts_sent += 1
                        streamed += 1
                    else:
                        records.append(record)
                if not self._beat_both(lease_id):
                    if self.done_seen:
                        # Campaign complete: everything this lease
                        # streamed already merged; the rest completed
                        # elsewhere.
                        return streamed
                    self.log(
                        f"{self.name}: lease {lease_id} no longer held; "
                        f"discarding {len(records)} in-flight record(s) "
                        f"and {len(failed)} failure report(s)"
                    )
                    return streamed
        result = {
            "type": "result",
            "lease": lease_id,
            "records": [record.to_json() for record in records],
            "failed": failed,
            "elapsed_s": time.monotonic() - started,
        }
        try:
            self._send(result)
        except OSError as exc:
            # The coordinator will re-pend this lease on EOF; stash the
            # result so the reconnect resends it (idempotent merge).
            self.state.resend.append(result)
            raise _ConnectionLost(
                f"connection lost sending result for lease {lease_id}: "
                f"{exc}"
            ) from exc
        self.stats.leases_served += 1
        self.log(
            f"{self.name}: lease {lease_id} done "
            f"({streamed + len(records)} records, {len(failed)} failed)"
        )
        return streamed + len(records)

    def _execute_pooled(
        self, lease_id: int, units: list[WorkUnit]
    ) -> tuple[list, list[dict], int] | None:
        """Execute a lease through the process pool (``jobs > 1``).

        Each completed chunk streams a ``result-part`` (v3) and a
        heartbeat; the acks are drained afterwards (the socket buffers
        them).  A pool failure cannot name the culprit unit, so the
        lease falls back to per-unit in-process execution to attribute
        it.  Returns None when the lease was lost (acks said
        ``held=False``) — the caller discards everything.
        """
        beats_sent = 0
        streamed = 0

        def beat(_index: int, record) -> None:
            nonlocal beats_sent, streamed
            if self.v3 and record is not None:
                self._send(
                    {
                        "type": "result-part",
                        "lease": lease_id,
                        "records": [record.to_json()],
                    }
                )
                self.stats.parts_sent += 1
                streamed += 1
            event = fault_at("worker.heartbeat", token=lease_id)
            if event is not None and event.kind == "drop":
                self.log(
                    f"{self.name}: heartbeat for lease {lease_id} "
                    "dropped (injected)"
                )
                return
            self._send({"type": "heartbeat", "lease": lease_id})
            beats_sent += 1

        from ..errors import ResultHookError

        failed: list[dict] = []
        try:
            records = run_units(units, self.config, on_record=beat)
            if self.v3:
                # Everything healthy already streamed as parts; the
                # final result only needs the failures (and timing).
                records = []
        except ResultHookError as exc:
            # The beat hook is the only on_record here, so a hook
            # failure is a send failure: the connection is gone.
            raise _ConnectionLost(str(exc)) from exc
        except OSError as exc:
            raise _ConnectionLost(str(exc)) from exc
        except Exception as exc:
            self.log(
                f"{self.name}: pooled lease {lease_id} failed ({exc}); "
                "re-running per unit to attribute"
            )
            records = []
            for unit in units:
                try:
                    records.append(execute_unit(unit))
                except Exception as unit_exc:
                    failed.append(
                        {
                            "key": unit.key,
                            "error": (
                                f"{type(unit_exc).__name__}: {unit_exc}"
                            ),
                        }
                    )
        held = True
        for _ in range(beats_sent):
            if not self._await_beat(lease_id):
                held = False
                break  # later acks drain as stale beats, if ever read
        if not held:
            if self.done_seen:
                return None
            self.log(
                f"{self.name}: lease {lease_id} no longer held; "
                f"discarding {len(units)} pooled unit result(s)"
            )
            return None
        return records, failed, streamed
