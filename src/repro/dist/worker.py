"""The socket worker: lease, execute, report, repeat.

``run_worker`` connects to a coordinator, executes whatever work units
it is leased (through the same executor registry the local pool uses,
so any machine with the library importable can serve any unit kind),
and streams the records back.  One heartbeat goes out per completed
unit, so a multi-unit lease stays alive as long as the worker makes
progress; a lease held through a hang simply expires coordinator-side
and its units are re-run elsewhere — the content-key merge absorbs the
duplicate.

The loop is deliberately synchronous: one outstanding lease, blocking
sends and receives.  Throughput scaling comes from running *more
workers* (and ``jobs`` inside each), not from pipelining the protocol.
"""

from __future__ import annotations

import socket
import time
from typing import Callable

from ..errors import ProtocolError, WorkerExitError
from ..parallel.executor import SERIAL, ParallelConfig
from ..parallel.plan import WorkUnit, run_units
from .protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    recv_message,
    send_message,
)

#: Blocking-socket timeout; also the hang detector for a coordinator
#: that stops responding entirely.
SOCKET_TIMEOUT_S = 60.0

_CONNECT_RETRY_S = 0.1


def _connect_retry(
    host: str, port: int, connect_timeout: float
) -> socket.socket:
    """Dial the coordinator, retrying refused connections until
    ``connect_timeout`` elapses (workers routinely start before the
    coordinator has bound)."""
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            return socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise WorkerExitError(
                    f"could not reach coordinator at {host}:{port} "
                    f"within {connect_timeout:g}s: {exc}"
                ) from exc
            time.sleep(_CONNECT_RETRY_S)


def run_worker(
    host: str,
    port: int,
    name: str = "worker",
    jobs: int = 1,
    max_units: int | None = None,
    delay: float = 0.0,
    connect_timeout: float = 10.0,
    log: Callable[[str], None] | None = None,
) -> int:
    """Serve one coordinator until it says ``done``; returns the number
    of units this worker executed.

    * ``jobs`` — process-pool width for executing each lease's units
      (1 = in the worker process itself);
    * ``max_units`` — leave voluntarily (``bye``) after this many units,
      for exercising worker churn;
    * ``delay`` — sleep this long before each lease's execution, for
      simulating stragglers in tests;
    * ``connect_timeout`` — how long to keep retrying the initial
      connect.

    A connection lost before ``done`` raises
    :class:`~repro.errors.WorkerExitError` — the coordinator crashed or
    fenced this worker off; either way the worker cannot know the
    campaign finished.
    """
    log = log or (lambda message: None)
    config = SERIAL if jobs <= 1 else ParallelConfig(jobs=jobs)
    sock = _connect_retry(host, port, connect_timeout)
    executed = 0
    try:
        sock.settimeout(SOCKET_TIMEOUT_S)
        decoder = FrameDecoder()
        send_message(
            sock,
            {"type": "hello", "worker": name, "protocol": PROTOCOL_VERSION},
        )
        welcome = recv_message(sock, decoder)
        if welcome is None:
            raise WorkerExitError(
                "coordinator closed the connection during handshake"
            )
        if welcome["type"] == "error":
            raise WorkerExitError(
                f"coordinator refused {name}: {welcome.get('message')}"
            )
        if welcome["type"] != "welcome":
            raise ProtocolError(
                f"expected welcome, got {welcome['type']!r}"
            )
        log(
            f"{name}: connected to {host}:{port} "
            f"({welcome.get('units_total')} units in plan)"
        )
        while True:
            if max_units is not None and executed >= max_units:
                send_message(sock, {"type": "bye"})
                log(f"{name}: leaving after {executed} units (--max-units)")
                return executed
            send_message(sock, {"type": "request"})
            message = recv_message(sock, decoder)
            if message is None:
                raise WorkerExitError(
                    f"{name}: coordinator vanished mid-campaign "
                    f"(connection closed without done)"
                )
            kind = message["type"]
            if kind == "done":
                log(f"{name}: campaign complete; executed {executed} units")
                return executed
            if kind == "wait":
                time.sleep(float(message.get("retry_s", 0.5)))
                continue
            if kind == "error":
                raise WorkerExitError(
                    f"coordinator error: {message.get('message')}"
                )
            if kind != "lease":
                raise ProtocolError(f"unexpected message {kind!r}")
            executed += _serve_lease(sock, message, config, delay, log, name)
    finally:
        sock.close()


def _serve_lease(
    sock: socket.socket,
    message: dict,
    config: ParallelConfig,
    delay: float,
    log: Callable[[str], None],
    name: str,
) -> int:
    lease_id = message["lease"]
    units = [WorkUnit.from_json(obj) for obj in message["units"]]
    if delay > 0:
        time.sleep(delay)

    def beat(_index: int, _record) -> None:
        # One heartbeat per completed unit keeps a multi-unit lease
        # alive exactly as long as the worker is making progress.
        send_message(sock, {"type": "heartbeat", "lease": lease_id})

    records = run_units(units, config, on_record=beat)
    send_message(
        sock,
        {
            "type": "result",
            "lease": lease_id,
            "records": [record.to_json() for record in records],
        },
    )
    log(f"{name}: lease {lease_id} done ({len(units)} units)")
    return len(units)
