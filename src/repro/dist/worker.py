"""The socket worker: lease, execute, report, repeat — and survive.

``run_worker`` connects to a coordinator, executes whatever work units
it is leased (through the same executor registry the local pool uses,
so any machine with the library importable can serve any unit kind),
and streams the records back.  One heartbeat round-trip happens per
completed unit: the coordinator acknowledges with ``beat`` and
``held=False`` means the lease expired and was reassigned, in which
case the worker **discards its in-flight work** — the reassignment
already owns those units, and reporting stale results would only burn
bandwidth on duplicates the merge drops anyway.

Failure handling is explicit at every layer:

* a unit whose executor raises is reported in the result's ``failed``
  list (charging its coordinator-side attempt budget) instead of
  killing the worker — one poison unit costs one attempt, not a fleet
  member;
* a lost connection (coordinator crash, injected reset, garbage on the
  wire) triggers reconnect with exponential backoff and deterministic
  jitter, re-hello, and resumed leasing; results that were in flight
  when the connection died are resent after the handshake and merge
  idempotently.  ``reconnect_timeout`` bounds the total outage ridden
  out (0 disables reconnection: any loss is immediately fatal, the
  pre-v2 behaviour);
* ``drain_check`` (wired to SIGTERM by the CLI) requests a graceful
  exit: the worker stops starting units, reports what it finished,
  leaves the rest of the lease unreported — the coordinator re-pends
  those *without* charging their budgets — and says ``bye``.

The loop is deliberately synchronous: one outstanding lease, blocking
sends and receives.  Throughput scaling comes from running *more
workers* (and ``jobs`` inside each), not from pipelining the protocol.
"""

from __future__ import annotations

import math
import socket
import time
from typing import Callable

from ..errors import ProtocolError, WorkerExitError
from ..parallel.executor import SERIAL, ParallelConfig
from ..parallel.plan import WorkUnit, execute_unit, run_units
from ..rng import derive_seed
from .protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    recv_message,
    send_message,
)

#: Blocking-socket timeout; also the hang detector for a coordinator
#: that stops responding entirely.
SOCKET_TIMEOUT_S = 60.0

#: Ceiling on a server-supplied ``wait`` retry interval.  The value
#: arrives over the network; a corrupted or hostile frame must not be
#: able to park a worker for an hour (or forever, via ``inf``/``nan``).
RETRY_MAX_S = 5.0

#: Reconnect backoff: base * 2**attempt, capped, then jittered.
BACKOFF_BASE_S = 0.1
BACKOFF_CAP_S = 5.0

_CONNECT_RETRY_S = 0.1

#: Default total outage a worker rides out before giving up.
RECONNECT_TIMEOUT_S = 30.0


class _ConnectionLost(Exception):
    """Internal: the coordinator connection died mid-session.  The
    outer loop decides whether that means reconnect or fatal exit."""


def clamp_retry_s(value: object) -> float:
    """Validate a server-supplied ``retry_s`` (satellite of the fault
    plane: every network-supplied number gets bounds).  Non-numeric or
    non-finite values raise :class:`~repro.errors.ProtocolError`;
    finite values clamp into ``[0, RETRY_MAX_S]``."""
    try:
        retry = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"non-numeric retry_s {value!r} in wait message"
        ) from exc
    if not math.isfinite(retry):
        raise ProtocolError(
            f"non-finite retry_s {retry!r} in wait message"
        )
    return min(max(retry, 0.0), RETRY_MAX_S)


def backoff_delay(name: str, attempt: int) -> float:
    """Reconnect pause before ``attempt`` (0-based): exponential in the
    attempt, capped, with deterministic jitter derived from the worker
    name — a fleet sharing one dead coordinator fans out instead of
    thundering back in lockstep, yet every run of the same worker
    produces the same schedule (the chaos determinism contract)."""
    base = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2 ** attempt))
    jitter = derive_seed(0, "worker-backoff", name, attempt) / float(2 ** 64)
    return base * (0.5 + 0.5 * jitter)


def _connect_retry(
    host: str, port: int, connect_timeout: float
) -> socket.socket:
    """Dial the coordinator, retrying refused connections until
    ``connect_timeout`` elapses (workers routinely start before the
    coordinator has bound)."""
    deadline = time.monotonic() + connect_timeout
    while True:
        try:
            return socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise WorkerExitError(
                    f"could not reach coordinator at {host}:{port} "
                    f"within {connect_timeout:g}s: {exc}"
                ) from exc
            time.sleep(_CONNECT_RETRY_S)


class _WorkerState:
    """What survives a reconnect: progress count and unconfirmed
    result messages awaiting resend."""

    def __init__(self) -> None:
        self.executed = 0
        self.resend: list[dict] = []


def run_worker(
    host: str,
    port: int,
    name: str = "worker",
    jobs: int = 1,
    max_units: int | None = None,
    delay: float = 0.0,
    connect_timeout: float = 10.0,
    reconnect_timeout: float = RECONNECT_TIMEOUT_S,
    drain_check: Callable[[], bool] | None = None,
    log: Callable[[str], None] | None = None,
) -> int:
    """Serve one coordinator until it says ``done``; returns the number
    of units this worker executed.

    * ``jobs`` — process-pool width for executing each lease's units
      (1 = in the worker process itself);
    * ``max_units`` — leave voluntarily (``bye``) after this many units,
      for exercising worker churn;
    * ``delay`` — sleep this long before each lease's execution, for
      simulating stragglers in tests;
    * ``connect_timeout`` — how long to keep retrying the initial
      connect;
    * ``reconnect_timeout`` — total mid-campaign outage to ride out via
      backoff-and-reconnect before giving up (0 = fail immediately on
      any loss);
    * ``drain_check`` — polled between units; True requests a graceful
      drain (finish nothing new, release the lease, say ``bye``).

    A connection irrecoverably lost before ``done`` raises
    :class:`~repro.errors.WorkerExitError` — the coordinator crashed or
    fenced this worker off; either way the worker cannot know the
    campaign finished.
    """
    log = log or (lambda message: None)
    config = SERIAL if jobs <= 1 else ParallelConfig(jobs=jobs)
    state = _WorkerState()
    first = True
    outage_start: float | None = None
    attempt = 0
    while True:
        try:
            if first:
                sock = _connect_retry(host, port, connect_timeout)
                first = False
            else:
                try:
                    sock = socket.create_connection(
                        (host, port), timeout=SOCKET_TIMEOUT_S
                    )
                except OSError as exc:
                    raise _ConnectionLost(
                        f"reconnect refused: {exc}"
                    ) from exc

            def connected() -> None:
                nonlocal outage_start, attempt
                if outage_start is not None:
                    log(f"{name}: reconnected after {attempt} attempt(s)")
                outage_start = None
                attempt = 0

            return _session(
                sock, name, config, state, max_units, delay,
                drain_check, connected, log,
            )
        except _ConnectionLost as exc:
            if reconnect_timeout <= 0:
                raise WorkerExitError(
                    f"{name}: coordinator vanished mid-campaign "
                    f"(connection closed without done): {exc}"
                ) from exc
            now = time.monotonic()
            if outage_start is None:
                outage_start = now
            if now - outage_start >= reconnect_timeout:
                raise WorkerExitError(
                    f"{name}: coordinator unreachable for "
                    f"{reconnect_timeout:g}s ({attempt} reconnect "
                    f"attempt(s)): {exc}"
                ) from exc
            pause = backoff_delay(name, attempt)
            attempt += 1
            log(
                f"{name}: connection lost ({exc}); reconnect attempt "
                f"{attempt} in {pause:.2f}s"
            )
            time.sleep(pause)


def _session(
    sock: socket.socket,
    name: str,
    config: ParallelConfig,
    state: _WorkerState,
    max_units: int | None,
    delay: float,
    drain_check: Callable[[], bool] | None,
    connected: Callable[[], None],
    log: Callable[[str], None],
) -> int:
    """One connection's lifetime: handshake, resend, lease loop.

    Raises :class:`_ConnectionLost` on any socket-level failure so the
    caller can reconnect; raises
    :class:`~repro.errors.WorkerExitError` on deliberate refusal.
    """
    try:
        sock.settimeout(SOCKET_TIMEOUT_S)
        decoder = FrameDecoder()
        send_message(
            sock,
            {"type": "hello", "worker": name, "protocol": PROTOCOL_VERSION},
        )
        welcome = recv_message(sock, decoder)
        if welcome is None:
            raise _ConnectionLost(
                "coordinator closed the connection during handshake"
            )
        if welcome["type"] == "error":
            raise WorkerExitError(
                f"coordinator refused {name}: {welcome.get('message')}"
            )
        if welcome["type"] != "welcome":
            raise ProtocolError(
                f"expected welcome, got {welcome['type']!r}"
            )
        connected()
        log(
            f"{name}: connected to coordinator "
            f"({welcome.get('units_total')} units in plan)"
        )
        while state.resend:
            # Unconfirmed results from before a reconnect: the merge is
            # idempotent, so resending can only fill holes, never harm.
            message = state.resend[0]
            log(
                f"{name}: resending result for lease "
                f"{message.get('lease')} after reconnect"
            )
            send_message(sock, message)
            state.resend.pop(0)
        while True:
            if drain_check is not None and drain_check():
                send_message(sock, {"type": "bye"})
                log(
                    f"{name}: draining on request; executed "
                    f"{state.executed} units"
                )
                return state.executed
            if max_units is not None and state.executed >= max_units:
                send_message(sock, {"type": "bye"})
                log(
                    f"{name}: leaving after {state.executed} units "
                    "(--max-units)"
                )
                return state.executed
            send_message(sock, {"type": "request"})
            message = recv_message(sock, decoder)
            if message is None:
                raise _ConnectionLost(
                    "connection closed while awaiting a lease"
                )
            kind = message["type"]
            if kind == "done":
                log(
                    f"{name}: campaign complete; executed "
                    f"{state.executed} units"
                )
                return state.executed
            if kind == "wait":
                time.sleep(clamp_retry_s(message.get("retry_s", 0.5)))
                continue
            if kind == "error":
                raise WorkerExitError(
                    f"coordinator error: {message.get('message')}"
                )
            if kind != "lease":
                raise ProtocolError(f"unexpected message {kind!r}")
            state.executed += _serve_lease(
                sock, decoder, message, config, state, delay,
                drain_check, log, name,
            )
    except (WorkerExitError, _ConnectionLost):
        raise
    except ProtocolError as exc:
        # Garbage on the wire (real or injected): this connection is
        # unusable, but a fresh one may be fine.
        raise _ConnectionLost(f"protocol failure: {exc}") from exc
    except OSError as exc:
        raise _ConnectionLost(str(exc)) from exc
    finally:
        sock.close()


def _heartbeat(
    sock: socket.socket,
    decoder: FrameDecoder,
    lease_id: int,
    log: Callable[[str], None],
    name: str,
) -> bool:
    """One heartbeat round-trip; False means this lease is gone (or the
    campaign finished) and in-flight work for it must be discarded.

    Fault site ``worker.heartbeat`` (kind ``drop``) loses the beat
    entirely — the worker believes the lease is alive while the
    coordinator watches it expire, which is exactly the split-brain the
    ``held=False`` discard protocol exists for.
    """
    from ..faults.runtime import fault_at

    event = fault_at("worker.heartbeat", token=lease_id)
    if event is not None and event.kind == "drop":
        log(f"{name}: heartbeat for lease {lease_id} dropped (injected)")
        return True
    send_message(sock, {"type": "heartbeat", "lease": lease_id})
    while True:
        reply = recv_message(sock, decoder)
        if reply is None:
            raise _ConnectionLost(
                "connection closed while awaiting heartbeat ack"
            )
        kind = reply["type"]
        if kind == "beat":
            return bool(reply.get("held", True))
        if kind == "done":
            # The campaign finished while we computed (our units were
            # completed elsewhere).  Queue the broadcast for the lease
            # loop and treat the lease as gone.
            decoder.pending.insert(0, reply)
            return False
        if kind == "error":
            raise WorkerExitError(
                f"coordinator error: {reply.get('message')}"
            )
        raise ProtocolError(
            f"unexpected message {kind!r} while awaiting heartbeat ack"
        )


def _serve_lease(
    sock: socket.socket,
    decoder: FrameDecoder,
    message: dict,
    config: ParallelConfig,
    state: _WorkerState,
    delay: float,
    drain_check: Callable[[], bool] | None,
    log: Callable[[str], None],
    name: str,
) -> int:
    lease_id = message["lease"]
    units = [WorkUnit.from_json(obj) for obj in message["units"]]
    if delay > 0:
        time.sleep(delay)
    records: list = []
    failed: list[dict] = []
    if not config.serial and len(units) > 1:
        pooled = _execute_pooled(
            sock, decoder, lease_id, units, config, log, name
        )
        if pooled is None:
            return 0  # lease lost mid-map; work discarded
        records, failed = pooled
    else:
        for position, unit in enumerate(units):
            if drain_check is not None and drain_check():
                log(
                    f"{name}: draining; releasing "
                    f"{len(units) - position} unexecuted unit(s) of "
                    f"lease {lease_id}"
                )
                break
            try:
                records.append(execute_unit(unit))
            except Exception as exc:
                failed.append(
                    {
                        "key": unit.key,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
                log(f"{name}: unit {unit.key!r} failed: {exc}")
            if not _heartbeat(sock, decoder, lease_id, log, name):
                log(
                    f"{name}: lease {lease_id} no longer held; "
                    f"discarding {len(records)} in-flight record(s) "
                    f"and {len(failed)} failure report(s)"
                )
                return 0
    result = {
        "type": "result",
        "lease": lease_id,
        "records": [record.to_json() for record in records],
        "failed": failed,
    }
    try:
        send_message(sock, result)
    except OSError as exc:
        # The coordinator will re-pend this lease on EOF; stash the
        # result so the reconnect resends it (idempotent merge).
        state.resend.append(result)
        raise _ConnectionLost(
            f"connection lost sending result for lease {lease_id}: {exc}"
        ) from exc
    log(
        f"{name}: lease {lease_id} done ({len(records)} records, "
        f"{len(failed)} failed)"
    )
    return len(records)


def _execute_pooled(
    sock: socket.socket,
    decoder: FrameDecoder,
    lease_id: int,
    units: list[WorkUnit],
    config: ParallelConfig,
    log: Callable[[str], None],
    name: str,
) -> tuple[list, list[dict]] | None:
    """Execute a lease through the process pool (``jobs > 1``).

    Heartbeats stream out as chunks complete; their acks are drained
    afterwards (the socket buffers them).  A pool failure cannot name
    the culprit unit, so the lease falls back to per-unit in-process
    execution to attribute it.  Returns None when the lease was lost
    (acks said ``held=False``) — the caller discards everything.
    """
    beats_sent = 0

    def beat(_index: int, _record) -> None:
        nonlocal beats_sent
        send_message(sock, {"type": "heartbeat", "lease": lease_id})
        beats_sent += 1

    from ..errors import ResultHookError

    failed: list[dict] = []
    try:
        records = run_units(units, config, on_record=beat)
    except ResultHookError as exc:
        # The beat hook is the only on_record here, so a hook failure
        # is a send failure: the connection is gone.
        raise _ConnectionLost(str(exc)) from exc
    except OSError as exc:
        raise _ConnectionLost(str(exc)) from exc
    except Exception as exc:
        log(
            f"{name}: pooled lease {lease_id} failed ({exc}); "
            "re-running per unit to attribute"
        )
        records = []
        for unit in units:
            try:
                records.append(execute_unit(unit))
            except Exception as unit_exc:
                failed.append(
                    {
                        "key": unit.key,
                        "error": (
                            f"{type(unit_exc).__name__}: {unit_exc}"
                        ),
                    }
                )
    held = True
    for _ in range(beats_sent):
        reply = recv_message(sock, decoder)
        if reply is None:
            raise _ConnectionLost(
                "connection closed while draining heartbeat acks"
            )
        kind = reply["type"]
        if kind == "beat":
            held = held and bool(reply.get("held", True))
        elif kind == "done":
            decoder.pending.insert(0, reply)
            held = False
        elif kind == "error":
            raise WorkerExitError(
                f"coordinator error: {reply.get('message')}"
            )
        else:
            raise ProtocolError(
                f"unexpected message {kind!r} draining heartbeat acks"
            )
    if not held:
        log(
            f"{name}: lease {lease_id} no longer held; discarding "
            f"{len(units)} pooled unit result(s)"
        )
        return None
    return records, failed
