"""The campaign coordinator: leases out units, merges results exactly.

One coordinator serves one plan (a sequence of
:class:`~repro.parallel.plan.WorkUnit`).  Workers connect over TCP
(:mod:`repro.dist.protocol`), request leases, and stream back one
:class:`~repro.store.records.RunRecord` per unit.  The coordinator is a
single-threaded ``selectors`` event loop — no locks, no threads — and
every failure mode reduces to the same move: a lease whose worker
vanished (EOF) or hung (deadline passed) re-pends its units for the
next requester.

The merge is by content key and idempotent: a reassigned lease coming
back twice folds to one record when payloads agree and raises
:class:`~repro.errors.LedgerConflictError` when they disagree (which,
under the determinism contract, can only mean corruption).  Coverage is
validated exactly — :meth:`Coordinator.serve` returns records for *all*
units in unit order or raises :class:`~repro.errors.DistError` — so a
distributed campaign is provably the same bytes as a serial one.
"""

from __future__ import annotations

import selectors
import socket
from typing import Callable, Sequence

from ..errors import DistError, LedgerConflictError, ProtocolError
from ..parallel.plan import WorkUnit
from ..store.records import RunRecord
from .leases import LeaseTable
from .protocol import PROTOCOL_VERSION, FrameDecoder, send_message

#: How long an idle worker is told to wait before re-requesting work.
WAIT_RETRY_S = 0.5

#: Ceiling on one select() sleep, so expiry and stop checks stay timely.
_POLL_CAP_S = 1.0


class _Client:
    """Per-connection state: decoder buffer plus the worker identity."""

    def __init__(self, sock: socket.socket, ident: str):
        self.sock = sock
        self.decoder = FrameDecoder()
        #: Unique per-connection identity (two workers may share a
        #: ``--name``; leases must not).
        self.ident = ident
        self.helloed = False


class Coordinator:
    """Serve one work plan to any number of socket workers.

    Parameters mirror the lease model: ``lease_timeout`` is how long a
    silent worker holds its units, ``units_per_lease`` trades dispatch
    round-trips against reassignment granularity.  ``on_record(index,
    record)`` streams each *fresh* merged record back in completion
    order — the same checkpointing hook the local pool backend uses, so
    :func:`~repro.store.resume.submit_units` works unchanged on top.

    ``stop_check`` (also assignable after construction) is polled every
    loop iteration and returns a reason string to abort — the
    self-spawning local backend uses it to fail fast when every worker
    subprocess has died rather than wait forever for a connect.
    """

    def __init__(
        self,
        units: Sequence[WorkUnit],
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 60.0,
        units_per_lease: int = 1,
        on_record: Callable[[int, RunRecord], None] | None = None,
        stop_check: Callable[[], str | None] | None = None,
        log: Callable[[str], None] | None = None,
    ):
        self.units = list(units)
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.on_record = on_record
        self.stop_check = stop_check
        self.log = log or (lambda message: None)
        self._table = LeaseTable(
            n_units=len(self.units),
            timeout=lease_timeout,
            units_per_lease=units_per_lease,
        )
        self._key_to_index = {
            unit.key: i for i, unit in enumerate(self.units)
        }
        if len(self._key_to_index) != len(self.units):
            raise DistError(
                "work plan has duplicate content keys; every unit must "
                "be uniquely keyed for the merge to be exact"
            )
        self._records: dict[int, RunRecord] = {}
        self._listener: socket.socket | None = None
        self._conn_count = 0

    # -- lifecycle ------------------------------------------------------
    def bind(self) -> tuple[str, int]:
        """Bind the listening socket; returns ``(host, port)`` with the
        OS-assigned port resolved (``port=0`` requests an ephemeral
        one).  Idempotent."""
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(16)
            self._listener = listener
            self.port = listener.getsockname()[1]
        return self.host, self.port

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def serve(self) -> list[RunRecord]:
        """Run the event loop to completion; records in unit order.

        Returns only when every unit's record has merged; a coverage
        hole (impossible unless the loop is aborted) or an exhausted
        worker fleet raises :class:`~repro.errors.DistError`.
        """
        self.bind()
        assert self._listener is not None
        selector = selectors.DefaultSelector()
        selector.register(self._listener, selectors.EVENT_READ, None)
        clients: dict[socket.socket, _Client] = {}
        self.log(
            f"coordinator serving {len(self.units)} units "
            f"on {self.host}:{self.port}"
        )
        try:
            while not self._table.done:
                if self.stop_check is not None:
                    reason = self.stop_check()
                    if reason:
                        raise DistError(f"coordination aborted: {reason}")
                for key, _ in selector.select(self._poll_timeout()):
                    if key.data is None:
                        self._accept(selector, clients)
                    else:
                        self._service(key.data, selector, clients)
                for lease in self._table.expire():
                    self.log(
                        f"lease {lease.lease_id} ({lease.worker}) "
                        f"expired; re-pending units {list(lease.indices)}"
                    )
            for client in clients.values():
                try:
                    send_message(client.sock, {"type": "done"})
                except OSError:  # pragma: no cover - racing disconnect
                    pass
        finally:
            for sock in list(clients):
                sock.close()
            selector.close()
            self._listener.close()
            self._listener = None
        return self._merged()

    # -- event handling -------------------------------------------------
    def _poll_timeout(self) -> float:
        deadline = self._table.next_deadline()
        if deadline is None:
            return _POLL_CAP_S
        return min(_POLL_CAP_S, max(0.0, deadline - self._table.now()))

    def _accept(
        self,
        selector: selectors.BaseSelector,
        clients: dict[socket.socket, _Client],
    ) -> None:
        assert self._listener is not None
        sock, addr = self._listener.accept()
        self._conn_count += 1
        client = _Client(sock, ident=f"conn-{self._conn_count}")
        clients[sock] = client
        selector.register(sock, selectors.EVENT_READ, client)
        self.log(f"worker connected from {addr[0]}:{addr[1]}")

    def _drop(
        self,
        client: _Client,
        selector: selectors.BaseSelector,
        clients: dict[socket.socket, _Client],
    ) -> None:
        """Close a connection and immediately re-pend its leases — the
        ``kill -9`` path (the OS closes the dead worker's sockets, so
        EOF arrives long before any lease deadline would)."""
        released = self._table.release_worker(client.ident)
        for lease in released:
            self.log(
                f"worker {client.ident} gone; re-pending lease "
                f"{lease.lease_id} units {list(lease.indices)}"
            )
        selector.unregister(client.sock)
        del clients[client.sock]
        client.sock.close()

    def _service(
        self,
        client: _Client,
        selector: selectors.BaseSelector,
        clients: dict[socket.socket, _Client],
    ) -> None:
        try:
            data = client.sock.recv(65536)
        except (ConnectionResetError, OSError):
            data = b""
        if not data:
            self._drop(client, selector, clients)
            return
        try:
            messages = client.decoder.feed(data)
        except ProtocolError as exc:
            self.log(f"protocol error from {client.ident}: {exc}")
            try:
                send_message(
                    client.sock, {"type": "error", "message": str(exc)}
                )
            except OSError:
                pass
            self._drop(client, selector, clients)
            return
        for message in messages:
            self._handle(client, message, selector, clients)
            if client.sock not in clients:
                break  # connection was dropped mid-batch

    def _handle(
        self,
        client: _Client,
        message: dict,
        selector: selectors.BaseSelector,
        clients: dict[socket.socket, _Client],
    ) -> None:
        kind = message["type"]
        if kind == "hello":
            if message.get("protocol") != PROTOCOL_VERSION:
                send_message(
                    client.sock,
                    {
                        "type": "error",
                        "message": (
                            f"protocol {message.get('protocol')!r} != "
                            f"coordinator protocol {PROTOCOL_VERSION}"
                        ),
                    },
                )
                self._drop(client, selector, clients)
                return
            name = message.get("worker") or "worker"
            client.ident = f"{name}#{client.ident}"
            client.helloed = True
            send_message(
                client.sock,
                {
                    "type": "welcome",
                    "protocol": PROTOCOL_VERSION,
                    "units_total": len(self.units),
                },
            )
        elif not client.helloed:
            send_message(
                client.sock,
                {"type": "error", "message": "first message must be hello"},
            )
            self._drop(client, selector, clients)
        elif kind == "request":
            lease = self._table.grant(client.ident)
            if lease is not None:
                send_message(
                    client.sock,
                    {
                        "type": "lease",
                        "lease": lease.lease_id,
                        "deadline_s": self.lease_timeout,
                        "units": [
                            self.units[i].to_json() for i in lease.indices
                        ],
                    },
                )
            elif self._table.done:
                send_message(client.sock, {"type": "done"})
            else:
                send_message(
                    client.sock, {"type": "wait", "retry_s": WAIT_RETRY_S}
                )
        elif kind == "heartbeat":
            # A heartbeat for an expired (reassigned) lease is simply
            # ignored; the late result will merge idempotently.
            self._table.heartbeat(message.get("lease", -1))
        elif kind == "result":
            self._merge_result(client, message)
        elif kind == "bye":
            self._drop(client, selector, clients)
        else:
            send_message(
                client.sock,
                {"type": "error", "message": f"unknown message {kind!r}"},
            )
            self._drop(client, selector, clients)

    def _merge_result(self, client: _Client, message: dict) -> None:
        records = [
            RunRecord.from_json(obj) for obj in message.get("records", [])
        ]
        for record in records:
            index = self._key_to_index.get(record.key)
            if index is None:
                raise DistError(
                    f"worker {client.ident} returned record for unknown "
                    f"content key {record.key!r}; plan/worker mismatch"
                )
            existing = self._records.get(index)
            if existing is None:
                self._records[index] = record
                if self.on_record is not None:
                    self.on_record(index, record)
            elif (
                existing.kind != record.kind
                or existing.payload != record.payload
            ):
                raise LedgerConflictError(
                    record.key,
                    detail=(
                        f"worker {client.ident} disagrees with a "
                        "previously merged record"
                    ),
                )
            # identical duplicate (reassigned lease raced its original
            # holder): idempotent, drop silently.
        completed = self._table.complete(message.get("lease", -1))
        if completed:
            self.log(
                f"{len(self._table.completed)}/{len(self.units)} units "
                f"complete ({client.ident})"
            )

    # -- merge ----------------------------------------------------------
    def _merged(self) -> list[RunRecord]:
        missing = [
            self.units[i].key
            for i in range(len(self.units))
            if i not in self._records
        ]
        if missing:
            raise DistError(
                f"coverage hole after coordination: {len(missing)} of "
                f"{len(self.units)} units never produced a record "
                f"(first missing key: {missing[0]!r})"
            )
        return [self._records[i] for i in range(len(self.units))]
