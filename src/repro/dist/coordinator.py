"""The campaign coordinator: leases out units, merges results exactly.

One coordinator serves one plan (a sequence of
:class:`~repro.parallel.plan.WorkUnit`).  Workers connect over TCP
(:mod:`repro.dist.protocol`), request leases, and stream back one
:class:`~repro.store.records.RunRecord` per unit.  The coordinator is a
single-threaded ``selectors`` event loop — no locks, no threads — and
every failure mode reduces to the same two moves: a lease whose worker
vanished (EOF) or hung (deadline passed) re-pends its units for the
next requester, and every such loss — like every worker-reported
execution failure — charges the unit's attempt budget.  A unit that
exhausts the budget is *quarantined* (see
:class:`~repro.dist.leases.LeaseTable`): the campaign completes around
it and :meth:`Coordinator.serve` raises
:class:`~repro.errors.QuarantineError` carrying both the parked keys
and every healthy record, so one poison unit can neither crash-loop
the fleet nor silently punch a hole in the merge.

Protocol v3 peers negotiate pipelining, frame compression, incremental
``result-part`` streaming and adaptive lease sizing in the handshake;
v2 peers are served exactly as before (one blocking lease at a time,
raw frames, one result at lease end).  The two generations can share a
campaign: the merge only ever sees keyed records.

The merge is by content key and idempotent: a reassigned lease coming
back twice folds to one record when payloads agree and raises
:class:`~repro.errors.LedgerConflictError` when they disagree (which,
under the determinism contract, can only mean corruption).  Coverage is
validated exactly — :meth:`Coordinator.serve` returns records for *all*
units in unit order, or raises a typed error distinguishing
"incomplete" (:class:`~repro.errors.DistError`, a bug) from
"quarantined" (poison units, reported) — so a distributed campaign is
provably the same bytes as a serial one.

Fault site ``coordinator.merge`` (kind ``restart``) simulates a
coordinator crash immediately after a result merges: every client is
dropped, the listener rebinds on the same port, and the lease table is
rebuilt from merged records exactly as a real restart resumes from the
run ledger.  Workers ride it out via reconnect-with-backoff.  Records
that arrived in ``result-part`` frames before the crash survive it,
exactly as ledger-checkpointed records would.
"""

from __future__ import annotations

import selectors
import socket
from collections import deque
from typing import Callable, Sequence

from ..errors import (
    DistError,
    LedgerConflictError,
    ProtocolError,
    QuarantineError,
)
from ..faults.runtime import fault_at
from ..parallel.plan import WorkUnit
from ..store.records import RunRecord
from .leases import DEFAULT_TARGET_LEASE_S, MAX_ATTEMPTS, LeaseTable
from .protocol import (
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    FrameDecoder,
    WireStats,
    send_message,
)

#: Idle-worker retry when no lease deadline bounds the wait (cannot
#: happen while work is outstanding, kept as a defensive fallback).
WAIT_RETRY_S = 0.5

#: Bounds on the adaptive ``wait`` retry: never tell a worker to come
#: back sooner than the floor (hammering an empty queue) or later than
#: the ceiling (sleeping past a re-pend it could have picked up).
WAIT_RETRY_MIN_S = 0.05
WAIT_RETRY_MAX_S = 2.0

#: Ceiling on one select() sleep, so expiry and stop checks stay timely.
_POLL_CAP_S = 1.0


class _Client:
    """Per-connection state: decoder buffer plus the worker identity
    and what the handshake negotiated for this connection."""

    def __init__(
        self,
        sock: socket.socket,
        ident: str,
        stats: WireStats | None = None,
    ):
        self.sock = sock
        self.decoder = FrameDecoder(stats=stats)
        #: Unique per-connection identity (two workers may share a
        #: ``--name``; leases must not).
        self.ident = ident
        self.helloed = False
        #: Negotiated protocol version (set at ``hello``; v3 gates
        #: ``result-part``/``release`` handling).
        self.protocol = MIN_PROTOCOL_VERSION
        #: Whether frames *to* this worker may be compressed.
        self.compress = False
        #: Units this connection has completed (progress UI).
        self.units_done = 0


class Coordinator:
    """Serve one work plan to any number of socket workers.

    Parameters mirror the lease model: ``lease_timeout`` is how long a
    silent worker holds its units, ``units_per_lease`` fixes the batch
    size (None, the default, enables the adaptive controller targeting
    ``lease_target_s`` of compute per lease), ``max_attempts`` is the
    per-unit failure budget before quarantine, ``compress`` offers
    frame compression to v3 workers.  ``on_record(index, record)``
    streams each *fresh* merged record back in completion order — the
    same checkpointing hook the local pool backend uses, so
    :func:`~repro.store.resume.submit_units` works unchanged on top.

    ``stop_check`` (also assignable after construction) is polled every
    loop iteration and returns a reason string to abort — the
    self-spawning local backend uses it to fail fast when every worker
    subprocess has died rather than wait forever for a connect.
    """

    def __init__(
        self,
        units: Sequence[WorkUnit],
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 60.0,
        units_per_lease: int | None = None,
        max_attempts: int = MAX_ATTEMPTS,
        lease_target_s: float = DEFAULT_TARGET_LEASE_S,
        compress: bool = True,
        on_record: Callable[[int, RunRecord], None] | None = None,
        stop_check: Callable[[], str | None] | None = None,
        log: Callable[[str], None] | None = None,
    ):
        self.units = list(units)
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.units_per_lease = units_per_lease
        self.max_attempts = max_attempts
        self.lease_target_s = lease_target_s
        self.compress = compress
        self.on_record = on_record
        self.stop_check = stop_check
        self.log = log or (lambda message: None)
        #: Raw-vs-wire byte accounting across every connection.
        self.wire = WireStats()
        self._table = self._fresh_table()
        self._key_to_index = {
            unit.key: i for i, unit in enumerate(self.units)
        }
        if len(self._key_to_index) != len(self.units):
            raise DistError(
                "work plan has duplicate content keys; every unit must "
                "be uniquely keyed for the merge to be exact"
            )
        self._records: dict[int, RunRecord] = {}
        #: lease id -> indices already merged via ``result-part``.
        self._partial: dict[int, set[int]] = {}
        self._listener: socket.socket | None = None
        self._conn_count = 0
        self._restart_requested = False
        self._started: float | None = None

    def _fresh_table(self) -> LeaseTable:
        return LeaseTable(
            n_units=len(self.units),
            timeout=self.lease_timeout,
            units_per_lease=self.units_per_lease,
            max_attempts=self.max_attempts,
            target_lease_s=self.lease_target_s,
        )

    # -- lifecycle ------------------------------------------------------
    def bind(self) -> tuple[str, int]:
        """Bind the listening socket; returns ``(host, port)`` with the
        OS-assigned port resolved (``port=0`` requests an ephemeral
        one).  Idempotent."""
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(16)
            self._listener = listener
            self.port = listener.getsockname()[1]
        return self.host, self.port

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def serve(self) -> list[RunRecord]:
        """Run the event loop to completion; records in unit order.

        Returns only when every unit's record has merged.  Units parked
        in quarantine raise :class:`~repro.errors.QuarantineError`
        (carrying all healthy records); a coverage hole without
        quarantine (impossible unless the loop is aborted) raises
        :class:`~repro.errors.DistError`.
        """
        self.bind()
        assert self._listener is not None
        selector = selectors.DefaultSelector()
        selector.register(self._listener, selectors.EVENT_READ, None)
        clients: dict[socket.socket, _Client] = {}
        if self._started is None:
            self._started = self._table.now()
        self.log(
            f"coordinator serving {len(self.units)} units "
            f"on {self.host}:{self.port}"
        )
        try:
            while not self._table.done:
                if self.stop_check is not None:
                    reason = self.stop_check()
                    if reason:
                        raise DistError(f"coordination aborted: {reason}")
                for key, _ in selector.select(self._poll_timeout()):
                    if key.data is None:
                        self._accept(selector, clients)
                    else:
                        self._service(key.data, selector, clients)
                    if self._restart_requested:
                        break
                if self._restart_requested:
                    self._restart(selector, clients)
                for lease in self._table.expire():
                    self.log(
                        f"lease {lease.lease_id} ({lease.worker}) "
                        f"expired; re-pending units {list(lease.indices)}"
                    )
                    self._partial.pop(lease.lease_id, None)
                    self._note_quarantines(lease.indices)
            for client in clients.values():
                try:
                    self._send(client, {"type": "done"})
                except OSError:  # pragma: no cover - racing disconnect
                    pass
            self.log(f"wire totals: {self.wire.summary()}")
        finally:
            for sock in list(clients):
                sock.close()
            selector.close()
            self._listener.close()
            self._listener = None
        return self._merged()

    def _restart(
        self,
        selector: selectors.BaseSelector,
        clients: dict[socket.socket, _Client],
    ) -> None:
        """Simulate a coordinator crash+restart in-process: sever every
        connection, rebind the same port, and rebuild lease state from
        merged records — exactly what a real restart recovers from the
        run ledger.  In-flight leases and attempt counts are lost, as
        they would be; records that already merged (including via
        ``result-part``) survive."""
        self._restart_requested = False
        self.log(
            f"injected coordinator restart: dropping {len(clients)} "
            f"connection(s), rebinding {self.host}:{self.port}"
        )
        for sock, client in list(clients.items()):
            selector.unregister(sock)
            sock.close()
        clients.clear()
        assert self._listener is not None
        selector.unregister(self._listener)
        self._listener.close()
        self._listener = None
        self.bind()  # self.port is already resolved: same address
        selector.register(self._listener, selectors.EVENT_READ, None)
        self._table = self._fresh_table()
        self._partial.clear()
        merged = set(self._records)
        self._table.pending = deque(
            i for i in range(len(self.units)) if i not in merged
        )
        self._table.completed = set(merged)

    # -- event handling -------------------------------------------------
    def _poll_timeout(self) -> float:
        deadline = self._table.next_deadline()
        if deadline is None:
            return _POLL_CAP_S
        return min(_POLL_CAP_S, max(0.0, deadline - self._table.now()))

    def _send(self, client: _Client, message: dict) -> None:
        send_message(
            client.sock,
            message,
            compress=client.compress,
            stats=self.wire,
        )

    def _accept(
        self,
        selector: selectors.BaseSelector,
        clients: dict[socket.socket, _Client],
    ) -> None:
        assert self._listener is not None
        sock, addr = self._listener.accept()
        self._conn_count += 1
        client = _Client(
            sock, ident=f"conn-{self._conn_count}", stats=self.wire
        )
        clients[sock] = client
        selector.register(sock, selectors.EVENT_READ, client)
        self.log(f"worker connected from {addr[0]}:{addr[1]}")

    def _drop(
        self,
        client: _Client,
        selector: selectors.BaseSelector,
        clients: dict[socket.socket, _Client],
    ) -> None:
        """Close a connection and immediately re-pend its leases — the
        ``kill -9`` path (the OS closes the dead worker's sockets, so
        EOF arrives long before any lease deadline would)."""
        released = self._table.release_worker(client.ident)
        for lease in released:
            self.log(
                f"worker {client.ident} gone; re-pending lease "
                f"{lease.lease_id} units {list(lease.indices)}"
            )
            self._partial.pop(lease.lease_id, None)
            self._note_quarantines(lease.indices)
        selector.unregister(client.sock)
        del clients[client.sock]
        client.sock.close()

    def _note_quarantines(self, indices: tuple[int, ...]) -> None:
        """Log any of ``indices`` that the last charge just parked."""
        for index in indices:
            reason = self._table.quarantined.get(index)
            if reason is not None and index not in self._records:
                self.log(
                    f"unit {self.units[index].key!r} quarantined: {reason}"
                )

    def _service(
        self,
        client: _Client,
        selector: selectors.BaseSelector,
        clients: dict[socket.socket, _Client],
    ) -> None:
        try:
            data = client.sock.recv(65536)
        except (ConnectionResetError, OSError):
            data = b""
        if not data:
            self._drop(client, selector, clients)
            return
        try:
            messages = client.decoder.feed(data)
        except ProtocolError as exc:
            self.log(f"protocol error from {client.ident}: {exc}")
            try:
                self._send(client, {"type": "error", "message": str(exc)})
            except OSError:
                pass
            self._drop(client, selector, clients)
            return
        for message in messages:
            self._handle(client, message, selector, clients)
            if client.sock not in clients or self._restart_requested:
                break  # connection dropped (or restarting) mid-batch

    def _handle(
        self,
        client: _Client,
        message: dict,
        selector: selectors.BaseSelector,
        clients: dict[socket.socket, _Client],
    ) -> None:
        kind = message["type"]
        if kind == "hello":
            requested = message.get("protocol")
            if requested not in range(
                MIN_PROTOCOL_VERSION, PROTOCOL_VERSION + 1
            ):
                self._send(
                    client,
                    {
                        "type": "error",
                        "message": (
                            f"protocol {requested!r} not in coordinator "
                            f"range {MIN_PROTOCOL_VERSION}.."
                            f"{PROTOCOL_VERSION}"
                        ),
                    },
                )
                self._drop(client, selector, clients)
                return
            name = message.get("worker") or "worker"
            client.ident = f"{name}#{client.ident}"
            client.helloed = True
            client.protocol = min(PROTOCOL_VERSION, requested)
            client.compress = (
                self.compress
                and client.protocol >= 3
                and bool(message.get("compress"))
            )
            self._send(
                client,
                {
                    "type": "welcome",
                    "protocol": client.protocol,
                    "compress": client.compress,
                    "units_total": len(self.units),
                },
            )
            self.log(
                f"{client.ident}: protocol v{client.protocol}, "
                f"compression {'on' if client.compress else 'off'}"
            )
        elif not client.helloed:
            self._send(
                client,
                {"type": "error", "message": "first message must be hello"},
            )
            self._drop(client, selector, clients)
        elif kind == "request":
            lease = self._table.grant(client.ident)
            if lease is not None:
                self._send(
                    client,
                    {
                        "type": "lease",
                        "lease": lease.lease_id,
                        "deadline_s": lease.deadline - lease.granted_at,
                        "units": [
                            self.units[i].to_json() for i in lease.indices
                        ],
                    },
                )
                if len(lease.indices) > 1:
                    estimate = self._table.estimate(client.ident)
                    self.log(
                        f"lease {lease.lease_id}: "
                        f"{len(lease.indices)} unit(s) -> {client.ident}"
                        + (
                            f" (est {estimate * 1e3:.1f} ms/unit)"
                            if estimate
                            else ""
                        )
                    )
            elif self._table.done:
                self._send(client, {"type": "done"})
            else:
                self._send(
                    client,
                    {"type": "wait", "retry_s": self._wait_retry_s()},
                )
        elif kind == "heartbeat":
            lease_id = message.get("lease", -1)
            held = self._table.heartbeat(lease_id)
            if not held:
                self.log(
                    f"heartbeat from {client.ident} for lost lease "
                    f"{lease_id}; telling worker to discard it"
                )
            self._send(
                client,
                {"type": "beat", "lease": lease_id, "held": held},
            )
        elif kind == "result-part" and client.protocol >= 3:
            self._merge_part(client, message)
        elif kind == "result":
            self._merge_result(client, message)
        elif kind == "release" and client.protocol >= 3:
            self._release_lease(client, message)
        elif kind == "bye":
            self._drop(client, selector, clients)
        else:
            self._send(
                client,
                {"type": "error", "message": f"unknown message {kind!r}"},
            )
            self._drop(client, selector, clients)

    def _wait_retry_s(self) -> float:
        """Adaptive idle-worker retry: sleep until the soonest active
        deadline could re-pend units, bounded so a corrupted clock can
        neither hammer the coordinator nor park the worker."""
        deadline = self._table.next_deadline()
        if deadline is None:
            return WAIT_RETRY_S
        pause = deadline - self._table.now()
        return min(max(pause, WAIT_RETRY_MIN_S), WAIT_RETRY_MAX_S)

    def _merge_records(self, client: _Client, message: dict) -> set[int]:
        """Fold a frame's records into the merge; returns the unit
        indices the frame covered (fresh or duplicate)."""
        records = [
            RunRecord.from_json(obj) for obj in message.get("records", [])
        ]
        covered: set[int] = set()
        for record in records:
            index = self._key_to_index.get(record.key)
            if index is None:
                raise DistError(
                    f"worker {client.ident} returned record for unknown "
                    f"content key {record.key!r}; plan/worker mismatch"
                )
            covered.add(index)
            existing = self._records.get(index)
            if existing is None:
                self._records[index] = record
                if self.on_record is not None:
                    self.on_record(index, record)
            elif (
                existing.kind != record.kind
                or existing.payload != record.payload
            ):
                raise LedgerConflictError(
                    record.key,
                    detail=(
                        f"worker {client.ident} disagrees with a "
                        "previously merged record"
                    ),
                )
            # identical duplicate (reassigned lease raced its original
            # holder): idempotent, drop silently.
        if covered and fault_at("coordinator.merge") is not None:
            self._restart_requested = True
        return covered

    def _merge_part(self, client: _Client, message: dict) -> None:
        """Incremental ``result-part``: merge now, settle later.  The
        lease stays active (its heartbeats carry liveness); a part for
        a lease this coordinator no longer holds merges idempotently
        and is otherwise ignored."""
        lease_id = message.get("lease", -1)
        covered = self._merge_records(client, message)
        if lease_id in self._table.active:
            self._partial.setdefault(lease_id, set()).update(covered)
            self._table.heartbeat(lease_id)

    def _release_lease(self, client: _Client, message: dict) -> None:
        """A pipelined worker handing back an unstarted prefetched
        lease (drain/bye): every unit re-pends immediately and for free
        — voluntary return is not a failure."""
        lease_id = message.get("lease", -1)
        settlement = self._table.settle(lease_id)
        self._partial.pop(lease_id, None)
        if settlement is not None and settlement.abandoned:
            self.log(
                f"{client.ident} released unstarted lease {lease_id}; "
                f"re-pending {len(settlement.abandoned)} unit(s) "
                "without charge"
            )

    def _merge_result(self, client: _Client, message: dict) -> None:
        lease_id = message.get("lease", -1)
        completed = self._merge_records(client, message)
        completed |= self._partial.pop(lease_id, set())
        failed: dict[int, str] = {}
        for entry in message.get("failed", []):
            index = self._key_to_index.get(entry.get("key"))
            if index is None:
                raise DistError(
                    f"worker {client.ident} reported failure for unknown "
                    f"content key {entry.get('key')!r}; plan/worker "
                    "mismatch"
                )
            failed[index] = str(entry.get("error") or "unspecified failure")
        lease = self._table.active.get(lease_id)
        processed = len(completed) + len(failed)
        if lease is not None and processed:
            elapsed = message.get("elapsed_s")
            if elapsed is None:
                # v2 worker: time the lease from the coordinator side
                # (includes grant latency — a pessimistic but safe
                # estimate).
                elapsed = self._table.now() - lease.granted_at
            self._table.observe(client.ident, processed, elapsed)
        settlement = self._table.settle(
            lease_id, completed=completed, failed=failed
        )
        if settlement is not None:
            for index in settlement.repended:
                self.log(
                    f"unit {self.units[index].key!r} failed on "
                    f"{client.ident} (attempt "
                    f"{self._table.attempts[index]}/"
                    f"{self._table.max_attempts}): {failed[index]}; "
                    "re-pended"
                )
            for index in settlement.quarantined:
                self.log(
                    f"unit {self.units[index].key!r} quarantined: "
                    f"{self._table.quarantined[index]}"
                )
            if settlement.abandoned:
                self.log(
                    f"{client.ident} abandoned "
                    f"{len(settlement.abandoned)} unit(s) (drain); "
                    "re-pended without charge"
                )
            if settlement.completed:
                client.units_done += len(settlement.completed)
                self._log_progress(client)

    def _log_progress(self, client: _Client) -> None:
        """One settlement's progress line: completion, per-worker
        share, fleet throughput, ETA and wire bytes — the ``--dist``
        progress UI."""
        done = len(self._table.completed)
        total = len(self.units)
        line = (
            f"{done}/{total} units complete "
            f"({client.ident}: {client.units_done} units)"
        )
        elapsed = (
            self._table.now() - self._started
            if self._started is not None
            else 0.0
        )
        if elapsed > 0 and done:
            rate = done / elapsed
            remaining = total - done - len(self._table.quarantined)
            line += (
                f"; {rate:.1f} units/s, ETA {remaining / rate:.0f}s, "
                f"wire {self.wire.summary()}"
            )
        self.log(line)

    # -- merge ----------------------------------------------------------
    def _merged(self) -> list[RunRecord]:
        # A quarantined unit whose record later arrived anyway (a slow
        # duplicate beat the budget) is healthy after all.
        quarantined = {
            self.units[index].key: reason
            for index, reason in sorted(self._table.quarantined.items())
            if index not in self._records
        }
        if quarantined:
            healthy = [
                self._records[i]
                for i in range(len(self.units))
                if i in self._records
            ]
            raise QuarantineError(quarantined, records=healthy)
        missing = [
            self.units[i].key
            for i in range(len(self.units))
            if i not in self._records
        ]
        if missing:
            raise DistError(
                f"coverage hole after coordination: {len(missing)} of "
                f"{len(self.units)} units never produced a record "
                f"(first missing key: {missing[0]!r})"
            )
        return [self._records[i] for i in range(len(self.units))]
