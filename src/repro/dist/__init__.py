"""Scale-out execution: lease-based coordination over TCP workers.

The distributed layer moves :class:`~repro.parallel.plan.WorkUnit`
plans across machines without moving any correctness responsibility:
results are keyed and seeded identically wherever they run, so the
coordinator's content-key merge is provably byte-identical to a
single-machine run.  See ``docs/ARCHITECTURE.md`` ("Distributed
campaigns") for the frame format, the lease lifecycle, and the merge
invariants.
"""

from .coordinator import Coordinator
from .leases import MAX_ATTEMPTS, Lease, LeaseTable, Settlement
from .protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    recv_message,
    send_message,
)
from .submit import DistributedSubmit, worker_command
from .worker import backoff_delay, clamp_retry_s, run_worker

__all__ = [
    "Coordinator",
    "DistributedSubmit",
    "FrameDecoder",
    "Lease",
    "LeaseTable",
    "MAX_ATTEMPTS",
    "MAX_FRAME",
    "PROTOCOL_VERSION",
    "Settlement",
    "backoff_delay",
    "clamp_retry_s",
    "encode_frame",
    "recv_message",
    "run_worker",
    "send_message",
    "worker_command",
]
