"""Scale-out execution: lease-based coordination over TCP workers.

The distributed layer moves :class:`~repro.parallel.plan.WorkUnit`
plans across machines without moving any correctness responsibility:
results are keyed and seeded identically wherever they run, so the
coordinator's content-key merge is provably byte-identical to a
single-machine run.  Protocol v3 adds lease pipelining, adaptive lease
sizing, incremental result streaming and frame compression — all
negotiated per connection, with v2 peers served unchanged.  See
``docs/ARCHITECTURE.md`` ("Distributed campaigns") for the frame
format, the lease lifecycle, and the merge invariants.
"""

from .coordinator import (
    WAIT_RETRY_MAX_S,
    WAIT_RETRY_MIN_S,
    Coordinator,
)
from .leases import (
    DEFAULT_TARGET_LEASE_S,
    MAX_ATTEMPTS,
    MAX_LEASE_UNITS,
    Lease,
    LeaseTable,
    Settlement,
)
from .protocol import (
    COMPRESS_FLAG,
    COMPRESS_MIN,
    MAX_FRAME,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    FrameDecoder,
    WireStats,
    encode_frame,
    recv_message,
    send_message,
)
from .submit import DistributedSubmit, worker_command
from .worker import (
    WorkerStats,
    backoff_delay,
    clamp_retry_s,
    run_worker,
)

__all__ = [
    "COMPRESS_FLAG",
    "COMPRESS_MIN",
    "Coordinator",
    "DEFAULT_TARGET_LEASE_S",
    "DistributedSubmit",
    "FrameDecoder",
    "Lease",
    "LeaseTable",
    "MAX_ATTEMPTS",
    "MAX_FRAME",
    "MAX_LEASE_UNITS",
    "MIN_PROTOCOL_VERSION",
    "PROTOCOL_VERSION",
    "Settlement",
    "WAIT_RETRY_MAX_S",
    "WAIT_RETRY_MIN_S",
    "WireStats",
    "WorkerStats",
    "backoff_delay",
    "clamp_retry_s",
    "encode_frame",
    "recv_message",
    "run_worker",
    "send_message",
    "worker_command",
]
