"""The coordinator/worker wire: length-prefixed JSON frames over TCP.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one message object.  Messages are plain
dicts with a ``type`` field:

worker -> coordinator
    ``hello``      {type, worker, protocol}
    ``request``    {type}                       ask for a lease
    ``heartbeat``  {type, lease}                extend a lease deadline
    ``result``     {type, lease, records: [RunRecord JSON, ...]}
    ``bye``        {type}                       leaving voluntarily

coordinator -> worker
    ``welcome``    {type, protocol, units_total}
    ``lease``      {type, lease, deadline_s, units: [WorkUnit JSON, ...]}
    ``wait``       {type, retry_s}              no work *right now*
    ``done``       {type}                       campaign complete
    ``error``      {type, message}              fatal, close connection

The protocol is deliberately dumb: no negotiation beyond a version
check, no compression, no partial results.  All correctness lives in
content keys — a frame can be lost, duplicated or replayed and the
merge stays exact.
"""

from __future__ import annotations

import json
import socket
import struct

from ..errors import ProtocolError

#: Bump on any incompatible message change.
PROTOCOL_VERSION = 1

#: Hard per-frame ceiling; a frame this size indicates a bug or garbage
#: bytes (a stray HTTP client, a corrupted length prefix).
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_frame(message: dict) -> bytes:
    """One message as bytes ready for ``sendall``."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME "
            f"({MAX_FRAME})"
        )
    return _HEADER.pack(len(payload)) + payload


def send_message(sock: socket.socket, message: dict) -> None:
    """Send one framed message (blocking)."""
    sock.sendall(encode_frame(message))


class FrameDecoder:
    """Incremental frame decoder for one connection.

    Feed raw bytes as they arrive; complete messages come back in
    order.  Tolerates frames split across arbitrarily many reads and
    multiple frames per read.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: Frames decoded but not yet consumed by :func:`recv_message`
        #: (a peer may legitimately send two frames back-to-back, e.g. a
        #: lease reply followed by a broadcast ``done``).
        self.pending: list[dict] = []

    def feed(self, data: bytes) -> list[dict]:
        self._buffer.extend(data)
        messages = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"frame length {length} exceeds MAX_FRAME "
                    f"({MAX_FRAME}); stream is garbage or hostile"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(
                    f"undecodable frame payload: {exc}"
                ) from exc
            if not isinstance(message, dict) or "type" not in message:
                raise ProtocolError(
                    f"frame is not a typed message: {message!r}"
                )
            messages.append(message)


def recv_message(
    sock: socket.socket, decoder: FrameDecoder
) -> dict | None:
    """Block until one complete message arrives (None on clean EOF).

    The worker-side convenience: reads into ``decoder`` until it yields
    a frame.  Frames beyond the first queue on ``decoder.pending`` and
    are returned by subsequent calls without touching the socket.
    """
    if decoder.pending:
        return decoder.pending.pop(0)
    while True:
        try:
            data = sock.recv(65536)
        except (TimeoutError, socket.timeout) as exc:
            raise ProtocolError(
                "timed out waiting for a frame"
            ) from exc
        if not data:
            return None
        messages = decoder.feed(data)
        if messages:
            decoder.pending.extend(messages[1:])
            return messages[0]
