"""The coordinator/worker wire: length-prefixed JSON frames over TCP.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one message object.  Messages are plain
dicts with a ``type`` field:

worker -> coordinator
    ``hello``      {type, worker, protocol}
    ``request``    {type}                       ask for a lease
    ``heartbeat``  {type, lease}                extend a lease deadline
    ``result``     {type, lease, records: [RunRecord JSON, ...],
                    failed: [{key, error}, ...]}
    ``bye``        {type}                       leaving voluntarily

coordinator -> worker
    ``welcome``    {type, protocol, units_total}
    ``lease``      {type, lease, deadline_s, units: [WorkUnit JSON, ...]}
    ``beat``       {type, lease, held}          heartbeat reply;
                                                held=False means the
                                                lease expired and was
                                                reassigned — the worker
                                                must discard in-flight
                                                work for it
    ``wait``       {type, retry_s}              no work *right now*
    ``done``       {type}                       campaign complete
    ``error``      {type, message}              fatal, close connection

The protocol is deliberately dumb: no negotiation beyond a version
check, no compression, no partial results.  All correctness lives in
content keys — a frame can be lost, duplicated or replayed and the
merge stays exact.

Version history: v1 had fire-and-forget heartbeats and no ``failed``
list; v2 (current) acknowledges every heartbeat with ``beat`` so a
worker learns mid-computation that its lease is gone, and lets a
worker report per-unit execution failures so the coordinator can
charge attempt budgets instead of waiting out a lease deadline.

Both framing primitives are fault-injection sites (see
:mod:`repro.faults`): ``socket.send`` can drop a frame, send a partial
frame then reset, delay, or write garbage; ``socket.recv`` can reset,
delay, or feed garbage into the decoder.  Injected failures surface as
the same exceptions real ones do (``ConnectionResetError``,
:class:`~repro.errors.ProtocolError`), so the hardening they exercise
is exactly the production code path.
"""

from __future__ import annotations

import json
import socket
import struct
import time

from ..errors import ProtocolError
from ..faults.runtime import fault_at

#: Bump on any incompatible message change.
PROTOCOL_VERSION = 2

#: Hard per-frame ceiling; a frame this size indicates a bug or garbage
#: bytes (a stray HTTP client, a corrupted length prefix).
MAX_FRAME = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Bytes injected by the ``garbage`` fault kinds: a length prefix far
#: beyond MAX_FRAME, so the receiving decoder rejects the stream with a
#: typed ProtocolError instead of stalling on a bogus frame.
_GARBAGE = b"\xff\xff\xff\xff\xfe\xed\xfa\xce"


def encode_frame(message: dict) -> bytes:
    """One message as bytes ready for ``sendall``."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME "
            f"({MAX_FRAME})"
        )
    return _HEADER.pack(len(payload)) + payload


def send_message(sock: socket.socket, message: dict) -> None:
    """Send one framed message (blocking).

    Fault site ``socket.send`` (token: the message ``type``): ``drop``
    loses the frame silently, ``partial`` writes half the frame then
    resets the connection, ``delay`` sleeps ``delay_s`` before sending,
    ``garbage`` replaces the frame with undecodable bytes.
    """
    frame = encode_frame(message)
    event = fault_at("socket.send", token=message.get("type"))
    if event is not None:
        if event.kind == "drop":
            return
        if event.kind == "partial":
            with _ignore_oserror():
                sock.sendall(frame[: max(1, len(frame) // 2)])
                sock.shutdown(socket.SHUT_RDWR)
            raise ConnectionResetError(
                f"injected partial frame ({event.site}, token "
                f"{event.token!r})"
            )
        if event.kind == "delay":
            time.sleep(float(event.param("delay_s", 0.05)))
        elif event.kind == "garbage":
            frame = _GARBAGE
    sock.sendall(frame)


class _ignore_oserror:
    """Tiny context manager: best-effort socket teardown during an
    injected reset must not mask the injection itself."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return exc_type is not None and issubclass(exc_type, OSError)


class FrameDecoder:
    """Incremental frame decoder for one connection.

    Feed raw bytes as they arrive; complete messages come back in
    order.  Tolerates frames split across arbitrarily many reads and
    multiple frames per read.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: Frames decoded but not yet consumed by :func:`recv_message`
        #: (a peer may legitimately send two frames back-to-back, e.g. a
        #: lease reply followed by a broadcast ``done``).
        self.pending: list[dict] = []

    def feed(self, data: bytes) -> list[dict]:
        self._buffer.extend(data)
        messages = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"frame length {length} exceeds MAX_FRAME "
                    f"({MAX_FRAME}); stream is garbage or hostile"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(
                    f"undecodable frame payload: {exc}"
                ) from exc
            if not isinstance(message, dict) or "type" not in message:
                raise ProtocolError(
                    f"frame is not a typed message: {message!r}"
                )
            messages.append(message)


def recv_message(
    sock: socket.socket, decoder: FrameDecoder
) -> dict | None:
    """Block until one complete message arrives (None on clean EOF).

    The worker-side convenience: reads into ``decoder`` until it yields
    a frame.  Frames beyond the first queue on ``decoder.pending`` and
    are returned by subsequent calls without touching the socket.

    Fault site ``socket.recv``: ``drop`` resets the connection,
    ``delay`` sleeps before reading, ``garbage`` feeds undecodable
    bytes to the decoder (surfacing as a ProtocolError).
    """
    if decoder.pending:
        return decoder.pending.pop(0)
    event = fault_at("socket.recv")
    if event is not None:
        if event.kind == "drop":
            raise ConnectionResetError(
                f"injected connection reset on recv (draw {event.draw})"
            )
        if event.kind == "delay":
            time.sleep(float(event.param("delay_s", 0.05)))
        elif event.kind == "garbage":
            decoder.feed(_GARBAGE)  # raises ProtocolError
    while True:
        try:
            data = sock.recv(65536)
        except (TimeoutError, socket.timeout) as exc:
            raise ProtocolError(
                "timed out waiting for a frame"
            ) from exc
        if not data:
            return None
        messages = decoder.feed(data)
        if messages:
            decoder.pending.extend(messages[1:])
            return messages[0]
