"""The coordinator/worker wire: length-prefixed JSON frames over TCP.

One frame is a 4-byte big-endian unsigned header followed by that many
payload bytes.  The header's top bit (:data:`COMPRESS_FLAG`) marks a
zlib-compressed payload; the remaining 31 bits are the payload's length
on the wire.  Payloads are UTF-8 JSON encoding one message object.
Messages are plain dicts with a ``type`` field:

worker -> coordinator
    ``hello``       {type, worker, protocol, compress}
    ``request``     {type}                      ask for a lease
    ``heartbeat``   {type, lease}               extend a lease deadline
    ``result-part`` {type, lease,               v3: incremental records
                     records: [RunRecord JSON]}    streamed mid-lease
    ``result``      {type, lease, records: [RunRecord JSON, ...],
                     failed: [{key, error}, ...], elapsed_s}
    ``release``     {type, lease}               v3: hand back an
                                                unstarted prefetched
                                                lease (drain/bye)
    ``bye``         {type}                      leaving voluntarily

coordinator -> worker
    ``welcome``    {type, protocol, compress, units_total}
    ``lease``      {type, lease, deadline_s, units: [WorkUnit JSON, ...]}
    ``beat``       {type, lease, held}          heartbeat reply;
                                                held=False means the
                                                lease expired and was
                                                reassigned — the worker
                                                must discard in-flight
                                                work for it
    ``wait``       {type, retry_s}              no work *right now*
    ``done``       {type}                       campaign complete
    ``error``      {type, message}              fatal, close connection

Negotiation happens once, in ``hello``/``welcome``: each side states
its protocol and whether it accepts compressed frames; the coordinator
replies with the minimum version and the settled compression choice.
A v2 peer never sees a flagged frame, a ``result-part`` or a
``release`` — v3 features are gated on the negotiated version, so old
workers keep serving new coordinators (and vice versa) byte-identically.

All correctness still lives in content keys — a frame can be lost,
duplicated or replayed and the merge stays exact.

Version history: v1 had fire-and-forget heartbeats and no ``failed``
list; v2 acknowledges every heartbeat with ``beat`` and reports
per-unit failures; v3 (current) adds handshake negotiation, zlib frame
compression above :data:`COMPRESS_MIN`, incremental ``result-part``
streaming, pipelined lease prefetch with explicit ``release``, and a
worker-reported ``elapsed_s`` feeding the coordinator's adaptive lease
sizing.

The framing primitives are fault-injection sites (see
:mod:`repro.faults`): ``socket.send`` can drop a frame, send a partial
frame then reset, delay, or write garbage; ``socket.compress`` can
corrupt the body of a compressed frame in flight (the inflate path
must surface a typed :class:`~repro.errors.ProtocolError`, never a
hang or a crash); ``socket.recv`` can reset, delay, or feed garbage
into the decoder.  Injected failures surface as the same exceptions
real ones do, so the hardening they exercise is exactly the production
code path.
"""

from __future__ import annotations

import json
import socket
import struct
import time
import zlib
from dataclasses import dataclass

from ..errors import ProtocolError
from ..faults.runtime import fault_at

#: Bump on any incompatible message change.
PROTOCOL_VERSION = 3

#: Oldest protocol this code still serves (negotiated in ``hello``).
MIN_PROTOCOL_VERSION = 2

#: Hard per-frame ceiling — applied to the wire length *and* to the
#: post-inflate size, so a compression bomb cannot expand past it.
MAX_FRAME = 64 * 1024 * 1024

#: Top header bit: payload is zlib-compressed.  MAX_FRAME < 2**31, so
#: the flag can never collide with a legitimate length.
COMPRESS_FLAG = 0x8000_0000

#: Payloads below this stay uncompressed — zlib overhead beats the
#: saving on tiny control frames (request/beat/wait are ~40 bytes).
COMPRESS_MIN = 1024

_HEADER = struct.Struct(">I")

#: Bytes injected by the ``garbage`` fault kinds: a length prefix far
#: beyond MAX_FRAME (even after masking the compress flag), so the
#: receiving decoder rejects the stream with a typed ProtocolError
#: instead of stalling on a bogus frame.
_GARBAGE = b"\xff\xff\xff\xff\xfe\xed\xfa\xce"


@dataclass
class WireStats:
    """Byte/frame accounting for one endpoint, raw vs on-the-wire.

    ``raw`` counts payload bytes before compression (what the protocol
    *means*); ``wire`` counts header+payload bytes actually moved (what
    the network *carries*).  The coordinator aggregates one of these
    across all connections for the ``--dist`` progress UI; benchmarks
    read them directly.
    """

    frames_out: int = 0
    frames_in: int = 0
    raw_out: int = 0
    wire_out: int = 0
    compressed_out: int = 0
    raw_in: int = 0
    wire_in: int = 0
    compressed_in: int = 0

    def note_out(self, raw: int, wire: int, compressed: bool) -> None:
        self.frames_out += 1
        self.raw_out += raw
        self.wire_out += wire
        self.compressed_out += 1 if compressed else 0

    def note_in(self, raw: int, wire: int, compressed: bool) -> None:
        self.frames_in += 1
        self.raw_in += raw
        self.wire_in += wire
        self.compressed_in += 1 if compressed else 0

    def summary(self) -> str:
        raw = self.raw_out + self.raw_in
        wire = self.wire_out + self.wire_in
        saved = (1.0 - wire / raw) * 100.0 if raw else 0.0
        return (
            f"{raw / 1024.0:.1f} KiB raw -> {wire / 1024.0:.1f} KiB "
            f"wire ({saved:+.1f}% saved, "
            f"{self.compressed_out + self.compressed_in} compressed "
            f"frame(s))"
        )


def encode_frame(message: dict, compress: bool = False) -> bytes:
    """One message as bytes ready for ``sendall``.

    With ``compress``, payloads of at least :data:`COMPRESS_MIN` bytes
    are deflated and the header's :data:`COMPRESS_FLAG` set — but only
    when that actually shrinks the frame (incompressible payloads ship
    raw).  Callers must only set ``compress`` after the handshake
    negotiated it: a v2 decoder treats a flagged header as garbage.
    """
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME "
            f"({MAX_FRAME})"
        )
    if compress and len(payload) >= COMPRESS_MIN:
        deflated = zlib.compress(payload, 6)
        if len(deflated) < len(payload):
            return _HEADER.pack(len(deflated) | COMPRESS_FLAG) + deflated
    return _HEADER.pack(len(payload)) + payload


def send_message(
    sock: socket.socket,
    message: dict,
    compress: bool = False,
    stats: WireStats | None = None,
) -> None:
    """Send one framed message (blocking).

    Fault site ``socket.send`` (token: the message ``type``): ``drop``
    loses the frame silently, ``partial`` writes half the frame then
    resets the connection, ``delay`` sleeps ``delay_s`` before sending,
    ``garbage`` replaces the frame with undecodable bytes.

    Fault site ``socket.compress`` (token: the message ``type``) fires
    only on frames that actually compressed: ``corrupt`` flips a byte
    inside the deflated body, so the peer's inflate path must reject
    the frame with a typed ProtocolError (worker side reconnects;
    coordinator side fences the connection off).
    """
    frame = encode_frame(message, compress=compress)
    (header,) = _HEADER.unpack_from(frame)
    compressed = bool(header & COMPRESS_FLAG)
    if compressed:
        event = fault_at("socket.compress", token=message.get("type"))
        if event is not None and event.kind == "corrupt":
            flip = _HEADER.size + (len(frame) - _HEADER.size) // 2
            frame = (
                frame[:flip]
                + bytes([frame[flip] ^ 0xFF])
                + frame[flip + 1:]
            )
    event = fault_at("socket.send", token=message.get("type"))
    if event is not None:
        if event.kind == "drop":
            return
        if event.kind == "partial":
            with _ignore_oserror():
                sock.sendall(frame[: max(1, len(frame) // 2)])
                sock.shutdown(socket.SHUT_RDWR)
            raise ConnectionResetError(
                f"injected partial frame ({event.site}, token "
                f"{event.token!r})"
            )
        if event.kind == "delay":
            time.sleep(float(event.param("delay_s", 0.05)))
        elif event.kind == "garbage":
            frame = _GARBAGE
    if stats is not None:
        raw = len(
            json.dumps(message, separators=(",", ":")).encode("utf-8")
        )
        stats.note_out(raw, len(frame), compressed)
    sock.sendall(frame)


class _ignore_oserror:
    """Tiny context manager: best-effort socket teardown during an
    injected reset must not mask the injection itself."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return exc_type is not None and issubclass(exc_type, OSError)


def _inflate(payload: bytes) -> bytes:
    """Decompress one frame body under the same ceiling raw frames get.

    Every way a compressed frame can lie is a typed
    :class:`~repro.errors.ProtocolError`: corrupt deflate data, a
    truncated stream, trailing bytes after the stream end, or a
    payload that inflates past :data:`MAX_FRAME` (a zip bomb — the
    decompressor is fed a hard output cap, so the bomb never
    materialises in memory).
    """
    decompressor = zlib.decompressobj()
    try:
        data = decompressor.decompress(payload, MAX_FRAME + 1)
    except zlib.error as exc:
        raise ProtocolError(
            f"corrupt compressed frame: {exc}"
        ) from exc
    if len(data) > MAX_FRAME:
        raise ProtocolError(
            f"compressed frame inflates past MAX_FRAME ({MAX_FRAME}); "
            "refusing decompression bomb"
        )
    if not decompressor.eof:
        raise ProtocolError(
            "truncated compressed frame: deflate stream ended early"
        )
    if decompressor.unused_data:
        raise ProtocolError(
            f"{len(decompressor.unused_data)} trailing byte(s) after "
            "compressed frame body"
        )
    return data


class FrameDecoder:
    """Incremental frame decoder for one connection.

    Feed raw bytes as they arrive; complete messages come back in
    order.  Tolerates frames split across arbitrarily many reads and
    multiple frames per read.  Compressed frames (header flag) inflate
    transparently — the decoder always accepts them regardless of the
    negotiated version, since decoding capability is what ``hello``
    advertises.
    """

    def __init__(self, stats: WireStats | None = None) -> None:
        self._buffer = bytearray()
        self.stats = stats
        #: Frames decoded but not yet consumed by :func:`recv_message`
        #: (a peer may legitimately send two frames back-to-back, e.g. a
        #: lease reply followed by a broadcast ``done``).
        self.pending: list[dict] = []

    def feed(self, data: bytes) -> list[dict]:
        self._buffer.extend(data)
        messages = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            (header,) = _HEADER.unpack_from(self._buffer)
            compressed = bool(header & COMPRESS_FLAG)
            length = header & ~COMPRESS_FLAG
            if length > MAX_FRAME:
                raise ProtocolError(
                    f"frame length {length} exceeds MAX_FRAME "
                    f"({MAX_FRAME}); stream is garbage or hostile"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_HEADER.size:end])
            del self._buffer[:end]
            if compressed:
                payload = _inflate(payload)
            if self.stats is not None:
                self.stats.note_in(len(payload), end, compressed)
            try:
                message = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(
                    f"undecodable frame payload: {exc}"
                ) from exc
            if not isinstance(message, dict) or "type" not in message:
                raise ProtocolError(
                    f"frame is not a typed message: {message!r}"
                )
            messages.append(message)


def recv_message(
    sock: socket.socket, decoder: FrameDecoder
) -> dict | None:
    """Block until one complete message arrives (None on clean EOF).

    The worker-side convenience: reads into ``decoder`` until it yields
    a frame.  Frames beyond the first queue on ``decoder.pending`` and
    are returned by subsequent calls without touching the socket.

    Fault site ``socket.recv``: ``drop`` resets the connection,
    ``delay`` sleeps before reading, ``garbage`` feeds undecodable
    bytes to the decoder (surfacing as a ProtocolError).
    """
    if decoder.pending:
        return decoder.pending.pop(0)
    event = fault_at("socket.recv")
    if event is not None:
        if event.kind == "drop":
            raise ConnectionResetError(
                f"injected connection reset on recv (draw {event.draw})"
            )
        if event.kind == "delay":
            time.sleep(float(event.param("delay_s", 0.05)))
        elif event.kind == "garbage":
            decoder.feed(_GARBAGE)  # raises ProtocolError
    while True:
        try:
            data = sock.recv(65536)
        except (TimeoutError, socket.timeout) as exc:
            raise ProtocolError(
                "timed out waiting for a frame"
            ) from exc
        if not data:
            return None
        messages = decoder.feed(data)
        if messages:
            decoder.pending.extend(messages[1:])
            return messages[0]
