"""The distributed submit backend: coordinator + self-spawned workers.

:class:`DistributedSubmit` plugs into the same slot as the local pool —
``submit(units, config, on_record) -> records`` (see
:func:`repro.store.resume.submit_units`) — but serves the units through
a :class:`~repro.dist.coordinator.Coordinator` to worker subprocesses
it spawns on this machine (``repro worker --connect``).  Remote
machines join the same campaign by running that command against the
coordinator's address; ``workers=0`` spawns nothing and waits for
external workers only.

This is what ``--dist N`` on the CLI resolves to, and what CI uses to
prove byte-identity between distributed and serial runs without any
second machine.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..parallel.plan import WorkUnit
from .coordinator import Coordinator
from .leases import DEFAULT_TARGET_LEASE_S


def worker_command(
    host: str,
    port: int,
    name: str,
    jobs: int = 1,
    fault_plan: str | None = None,
    reconnect_timeout: float | None = None,
) -> list[str]:
    """The argv that joins a worker to a coordinator — the same command
    a remote machine runs by hand.  ``fault_plan`` (a plan JSON path)
    arms the worker's fault injector; ``reconnect_timeout`` overrides
    how long it rides out a coordinator outage."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "worker",
        "--connect",
        f"{host}:{port}",
        "--name",
        name,
        "--jobs",
        str(jobs),
    ]
    if fault_plan is not None:
        argv += ["--faults", str(fault_plan)]
    if reconnect_timeout is not None:
        argv += ["--reconnect-timeout", str(reconnect_timeout)]
    return argv


def _worker_env() -> dict[str, str]:
    """Child environment with the library importable (the repo is used
    via PYTHONPATH=src, which subprocesses must inherit)."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


@dataclass
class DistributedSubmit:
    """Submit backend that coordinates ``workers`` local subprocesses.

    ``worker_jobs`` is each worker's internal pool width;
    ``units_per_lease`` fixes the grant batch size (None, the default,
    lets the coordinator's adaptive controller size leases toward
    ``lease_target_s`` of compute each).  ``port=0`` binds an ephemeral
    port (the default, so parallel CI jobs never collide).
    """

    workers: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    lease_timeout: float = 60.0
    units_per_lease: int | None = None
    #: Compute duration one adaptive lease targets (ignored when
    #: ``units_per_lease`` is fixed).
    lease_target_s: float = DEFAULT_TARGET_LEASE_S
    #: Offer zlib frame compression to v3 workers.
    compress: bool = True
    worker_jobs: int = 1
    #: Per-unit failure budget before quarantine (see
    #: :class:`~repro.dist.leases.LeaseTable`).
    max_attempts: int = 3
    #: Path to a fault-plan JSON armed in every spawned worker (chaos
    #: runs); None leaves workers fault-free.
    fault_plan: str | None = None
    #: Worker-side outage tolerance; None keeps the worker default.
    reconnect_timeout: float | None = None
    log: Callable[[str], None] | None = None
    #: Filled per call; exposed for tests that kill a worker mid-run.
    procs: list = field(default_factory=list)

    def __call__(
        self,
        units: Sequence[WorkUnit],
        config,
        on_record: Callable | None,
    ) -> list:
        coordinator = Coordinator(
            units,
            host=self.host,
            port=self.port,
            lease_timeout=self.lease_timeout,
            units_per_lease=self.units_per_lease,
            max_attempts=self.max_attempts,
            lease_target_s=self.lease_target_s,
            compress=self.compress,
            on_record=on_record,
            log=self.log,
        )
        host, port = coordinator.bind()
        self.procs = []
        try:
            env = _worker_env()
            for i in range(self.workers):
                self.procs.append(
                    subprocess.Popen(
                        worker_command(
                            host,
                            port,
                            f"local-{i}",
                            self.worker_jobs,
                            fault_plan=self.fault_plan,
                            reconnect_timeout=self.reconnect_timeout,
                        ),
                        env=env,
                    )
                )
            if self.procs:
                def all_dead() -> str | None:
                    if all(p.poll() is not None for p in self.procs):
                        codes = [p.returncode for p in self.procs]
                        return (
                            f"all {len(self.procs)} spawned workers "
                            f"exited (codes {codes}) before the "
                            "campaign completed"
                        )
                    return None

                coordinator.stop_check = all_dead
            return coordinator.serve()
        finally:
            for proc in self.procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in self.procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    proc.wait()
