"""Spread finding (paper Sec. 3.4, Fig. 4).

Given the chip's critical patch size P and most effective sequence σ,
determine how many patch-sized regions to stress simultaneously.  For
each spread m, run C executions of ⟨T_d, σ@L_m⟩ per test and distance,
where L_m is a random m-subset of the scratchpad's patch-start
locations; the score of m is the weak-behaviour total over distances.
The selected spread is Pareto-optimal over the three litmus tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..chips.profile import HardwareProfile
from ..litmus import TUNING_TESTS
from ..litmus.units import litmus_unit
from ..parallel import ParallelConfig, resolve_config
from ..rng import derive_seed
from ..scale import DEFAULT, Scale
from ..store import litmus_grid_counts, litmus_key
from ..stress.config import StressConfig
from ..stress.strategies import TunedStress


@dataclass
class SpreadScores:
    """Per-test scores for each candidate spread (a Fig. 4 curve)."""

    chip: str
    tests: tuple[str, ...]
    scores: dict[int, dict[str, int]] = field(default_factory=dict)

    def series(self, test: str) -> list[tuple[int, int]]:
        """(spread, score) points for one test."""
        return [(m, s[test]) for m, s in sorted(self.scores.items())]

    def total(self, m: int) -> int:
        return sum(self.scores[m].values())


def score_spreads(
    chip: HardwareProfile,
    patch_size: int,
    sequence: tuple[str, ...],
    scale: Scale = DEFAULT,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
    ledger=None,
    submit: Callable | None = None,
) -> SpreadScores:
    """Score each spread 1..M for one chip.

    The (m × test × distance) grid fans out as litmus work units —
    across worker processes under ``parallel``, across machines under a
    distributed ``submit``; per-point seed derivation keeps the scores
    identical to a serial run.  ``ledger`` checkpoints each finished
    point for exact resumption.
    """
    config = resolve_config(parallel, scale)
    distances = tuple(
        range(0, scale.max_distance, scale.spread_distance_step)
    )
    scores = SpreadScores(
        chip=chip.short_name, tests=tuple(t.name for t in TUNING_TESTS)
    )
    spreads = tuple(range(1, scale.max_spread + 1))
    specs = {
        m: TunedStress(
            StressConfig(
                chip=chip.short_name,
                patch_size=patch_size,
                sequence=sequence,
                spread=m,
                scratch_regions=scale.max_spread,
            )
        )
        for m in spreads
    }
    grid = [
        (m, test, d) for m in spreads for test in TUNING_TESTS for d in distances
    ]
    units = [
        litmus_unit(
            key=litmus_key(
                chip.short_name, test.name,
                f"spread.m{m}.p{patch_size}.{'-'.join(sequence)}"
                f".r{scale.max_spread}",
                d, scale.spread_executions, seed,
            ),
            chip=chip.short_name,
            test=test.name,
            distance=d,
            stress_spec=specs[m],
            executions=scale.spread_executions,
            seed=derive_seed(seed, "spread", m, test.name, d),
            record_seed=seed,
        )
        for m, test, d in grid
    ]
    counts = litmus_grid_counts(units, config, ledger, submit)
    for m in spreads:
        scores.scores[m] = {t.name: 0 for t in TUNING_TESTS}
    for (m, test, _d), weak in zip(grid, counts):
        scores.scores[m][test.name] += weak
    return scores


def select_spread(scores: SpreadScores) -> int:
    """The Pareto-optimal spread (unique in the paper's experiments;
    total score breaks any tie deterministically)."""
    spreads = list(scores.scores)
    front = []
    for a in spreads:
        if not any(
            all(
                scores.scores[b][t] > scores.scores[a][t]
                for t in scores.tests
            )
            for b in spreads
            if b != a
        ):
            front.append(a)
    return max(front, key=lambda m: (scores.total(m), -m))
