"""Spread finding (paper Sec. 3.4, Fig. 4).

Given the chip's critical patch size P and most effective sequence σ,
determine how many patch-sized regions to stress simultaneously.  For
each spread m, run C executions of ⟨T_d, σ@L_m⟩ per test and distance,
where L_m is a random m-subset of the scratchpad's patch-start
locations; the score of m is the weak-behaviour total over distances.
The selected spread is Pareto-optimal over the three litmus tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chips.profile import HardwareProfile
from ..litmus import ALL_TESTS, run_litmus
from ..rng import derive_seed
from ..scale import DEFAULT, Scale
from ..stress.config import StressConfig
from ..stress.strategies import TunedStress


@dataclass
class SpreadScores:
    """Per-test scores for each candidate spread (a Fig. 4 curve)."""

    chip: str
    tests: tuple[str, ...]
    scores: dict[int, dict[str, int]] = field(default_factory=dict)

    def series(self, test: str) -> list[tuple[int, int]]:
        """(spread, score) points for one test."""
        return [(m, s[test]) for m, s in sorted(self.scores.items())]

    def total(self, m: int) -> int:
        return sum(self.scores[m].values())


def score_spreads(
    chip: HardwareProfile,
    patch_size: int,
    sequence: tuple[str, ...],
    scale: Scale = DEFAULT,
    seed: int = 0,
) -> SpreadScores:
    """Score each spread 1..M for one chip."""
    distances = tuple(
        range(0, scale.max_distance, scale.spread_distance_step)
    )
    scores = SpreadScores(
        chip=chip.short_name, tests=tuple(t.name for t in ALL_TESTS)
    )
    for m in range(1, scale.max_spread + 1):
        config = StressConfig(
            chip=chip.short_name,
            patch_size=patch_size,
            sequence=sequence,
            spread=m,
            scratch_regions=scale.max_spread,
        )
        spec = TunedStress(config)
        per_test: dict[str, int] = {}
        for test in ALL_TESTS:
            weak = 0
            for d in distances:
                result = run_litmus(
                    chip,
                    test,
                    d,
                    spec,
                    scale.spread_executions,
                    seed=derive_seed(seed, "spread", m, test.name, d),
                )
                weak += result.weak
            per_test[test.name] = weak
        scores.scores[m] = per_test
    return scores


def select_spread(scores: SpreadScores) -> int:
    """The Pareto-optimal spread (unique in the paper's experiments;
    total score breaks any tie deterministically)."""
    spreads = list(scores.scores)
    front = []
    for a in spreads:
        if not any(
            all(
                scores.scores[b][t] > scores.scores[a][t]
                for t in scores.tests
            )
            for b in spreads
            if b != a
        ):
            front.append(a)
    return max(front, key=lambda m: (scores.total(m), -m))
