"""Patch finding (paper Sec. 3.2, Fig. 3).

For each litmus test T, distance d and scratchpad location l, run C
executions of ⟨T_d, l⟩ — test ``T_d`` with memory stress applied at
scratchpad location ``l`` — and count weak behaviours.  A maximal
contiguous run of locations each yielding more than ε weak behaviours is
an ε-patch; the critical patch size is the patch size P on which MP, LB
and SB agree (the P with the most ε-patches per test).

The stressing threads execute the paper's patch-probe loop: store to and
then load from location ``l``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from ..chips.profile import HardwareProfile
from ..litmus import TUNING_TESTS, LitmusTest
from ..litmus.units import litmus_unit
from ..parallel import ParallelConfig, resolve_config
from ..rng import derive_seed
from ..scale import DEFAULT, Scale
from ..store import litmus_grid_counts, litmus_key
from ..stress.strategies import FixedLocationStress

#: The access sequence used while probing patches (paper: "the thread
#: stores to and then loads from location l").
PROBE_SEQUENCE = ("st", "ld")

#: Candidate patch sizes the estimator snaps to (word counts; real chips
#: use 128- or 256-byte lines).
PATCH_CANDIDATES = (16, 32, 64, 128)


@dataclass
class PatchScan:
    """Raw weak-behaviour counts of a patch-finding campaign.

    ``counts[(test, d, l)]`` is the number of weak behaviours observed in
    ``executions`` runs of ⟨T_d, l⟩.
    """

    chip: str
    executions: int
    distances: tuple[int, ...]
    locations: tuple[int, ...]
    counts: dict[tuple[str, int, int], int] = field(default_factory=dict)

    def row(self, test: str, distance: int) -> list[int]:
        """Counts over all locations for one (test, distance) — one bar
        plot of Fig. 3."""
        return [self.counts[(test, distance, l)] for l in self.locations]


def scan_patches(
    chip: HardwareProfile,
    scale: Scale = DEFAULT,
    seed: int = 0,
    tests: tuple[LitmusTest, ...] = TUNING_TESTS,
    parallel: ParallelConfig | None = None,
    ledger=None,
    submit: Callable | None = None,
) -> PatchScan:
    """Run the ⟨T_d, l⟩ grid for one chip.

    Grid points are independent (each derives its own seed from its
    coordinates), so the whole grid fans out as litmus work units —
    across worker processes under ``parallel``, across machines under a
    distributed ``submit`` — with statistics identical to a serial run.
    With ``ledger`` every finished point persists as a litmus record,
    so an interrupted scan resumes at the first missing point.
    """
    config = resolve_config(parallel, scale)
    distances = tuple(range(0, scale.max_distance, scale.distance_step))
    locations = tuple(range(0, scale.max_location, scale.location_step))
    scan = PatchScan(
        chip=chip.short_name,
        executions=scale.executions,
        distances=distances,
        locations=locations,
    )
    grid = [
        (test, d, l) for test in tests for d in distances for l in locations
    ]
    units = [
        litmus_unit(
            key=litmus_key(
                chip.short_name, test.name, f"patch.fix.l{l}.st-ld", d,
                scale.executions, seed,
            ),
            chip=chip.short_name,
            test=test.name,
            distance=d,
            stress_spec=FixedLocationStress((l,), PROBE_SEQUENCE),
            executions=scale.executions,
            seed=derive_seed(seed, "patch", test.name, d, l),
            record_seed=seed,
        )
        for test, d, l in grid
    ]
    counts = litmus_grid_counts(units, config, ledger, submit)
    for (test, d, l), weak in zip(grid, counts):
        scan.counts[(test.name, d, l)] = weak
    return scan


def find_patches(
    row: list[int], locations: tuple[int, ...], epsilon: float
) -> list[tuple[int, int]]:
    """ε-patches of one (test, distance) row.

    Returns ``(start_location, size_in_words)`` for each maximal run of
    sampled locations whose counts all exceed ``epsilon``.  With a
    sampling stride the size is the covered span (stride-quantised), as
    close as the grid allows to the paper's word-exact definition.
    """
    if len(row) != len(locations):
        raise ValueError("row and locations must have equal length")
    stride = locations[1] - locations[0] if len(locations) > 1 else 1
    # Bridge single sub-threshold samples inside a run: with coarse
    # location sampling one noisy dip would otherwise split a patch.
    above = [value > epsilon for value in row]
    for i in range(1, len(above) - 1):
        if not above[i] and above[i - 1] and above[i + 1]:
            above[i] = True
    patches = []
    start = None
    for hot, loc in zip(above, locations):
        if hot:
            if start is None:
                start = loc
        elif start is not None:
            patches.append((start, loc - start))
            start = None
    if start is not None:
        patches.append((start, locations[-1] + stride - start))
    return patches


def _dominant_patch_size(
    scan: PatchScan, test: str, epsilon: float
) -> int | None:
    """The dominant patch size for one test, snapped to the candidate
    grid; None when the test shows no patches at all.

    Votes are weighted by the weak-behaviour mass inside each patch, so
    strong genuine patches outvote noise fragments — at the paper's
    word-exact sampling this coincides with counting patches.
    """
    sizes: Counter[int] = Counter()
    for d in scan.distances:
        row = scan.row(test, d)
        for start, size in find_patches(row, scan.locations, epsilon):
            snapped = min(PATCH_CANDIDATES, key=lambda c: abs(c - size))
            mass = sum(
                value
                for value, loc in zip(row, scan.locations)
                if start <= loc < start + size
            )
            sizes[snapped] += mass
    if not sizes:
        return None
    best_count = max(sizes.values())
    # Deterministic tie-break: the smallest size with the top mass.
    return min(s for s, c in sizes.items() if c == best_count)


def critical_patch_size(
    scan: PatchScan, epsilon: float | None = None
) -> tuple[int, dict[str, int | None]]:
    """Critical patch size of a chip from its patch scan.

    ``epsilon`` defaults to 5% of the execution count.  (The paper uses
    an absolute threshold of 3 per 1000 executions; our executions batch
    several rounds — like a litmus kernel launch testing many instances
    — which amplifies both signal and noise, so the threshold scales
    with the sample size.)

    Returns ``(patch_size, per_test_sizes)``.  Following the paper's
    Maxwell finding (MP patches only appear at very large distances), a
    test that exhibits *no* patches is excluded from the agreement
    requirement; the remaining tests must agree.
    """
    if epsilon is None:
        epsilon = max(1.0, 0.05 * scan.executions)
    per_test: dict[str, int | None] = {}
    tests = {t for (t, _d, _l) in scan.counts}
    for test in sorted(tests):
        per_test[test] = _dominant_patch_size(scan, test, epsilon)
    observed = [size for size in per_test.values() if size is not None]
    if not observed:
        raise ValueError(
            f"no ε-patches observed for chip {scan.chip}; "
            "increase executions or lower epsilon"
        )
    agreed = Counter(observed).most_common(1)[0][0]
    return agreed, per_test
