"""The full tuning pipeline: patch size -> sequence -> spread (Tab. 2).

``tune_chip`` reruns the paper's Sec. 3 micro-benchmark campaign against
a (simulated) chip and returns the discovered stressing parameters plus
the raw stage outputs.  ``shipped_params`` returns the library's bundled
tuning results — the analogue of the paper publishing Table 2 so users
need not spend the multi-hour tuning time per chip; the test suite and
the Table 2 benchmark verify that ``tune_chip`` rediscovers them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..chips.profile import HardwareProfile
from ..chips.registry import get_chip
from ..parallel import ParallelConfig, resolve_config
from ..scale import DEFAULT, Scale
from ..stress.config import StressConfig
from .access import SequenceScores, score_sequences, select_sequence
from .patches import PatchScan, critical_patch_size, scan_patches
from .spread import SpreadScores, score_spreads, select_spread

#: The spread the paper found optimal on every studied chip.
_SHIPPED_SPREAD = 2


@dataclass(frozen=True)
class TunedResult:
    """Outcome of the tuning pipeline for one chip."""

    config: StressConfig
    per_test_patch: dict[str, int | None]
    patch_scan: PatchScan
    sequence_scores: SequenceScores
    spread_scores: SpreadScores
    wall_seconds: float

    def table2_row(self) -> dict[str, object]:
        row = self.config.table2_row()
        row["~time (mins)"] = round(self.wall_seconds / 60.0, 2)
        return row


def tune_chip(
    chip: HardwareProfile,
    scale: Scale = DEFAULT,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
    ledger=None,
    submit=None,
) -> TunedResult:
    """Run patch finding, sequence scoring and spread finding in order.

    The three stages are sequential (each consumes the previous stage's
    selection), but every stage's search grid is sharded across worker
    processes under ``parallel`` — or served to distributed workers
    under ``submit`` (see :mod:`repro.dist`) — with results identical
    to a serial run.  ``ledger`` checkpoints every grid point of every
    stage, so a multi-hour tuning run killed mid-stage resumes at the
    first missing point (each point derives its seed from its own
    coordinates, so the resumed tables are bit-identical).
    """
    parallel_config = resolve_config(parallel, scale)
    started = time.perf_counter()
    scan = scan_patches(
        chip, scale, seed, parallel=parallel_config, ledger=ledger,
        submit=submit,
    )
    patch, per_test = critical_patch_size(scan)
    seq_scores = score_sequences(
        chip, patch, scale, seed, parallel=parallel_config, ledger=ledger,
        submit=submit,
    )
    sequence = select_sequence(seq_scores)
    spread_scores = score_spreads(
        chip, patch, sequence, scale, seed, parallel=parallel_config,
        ledger=ledger, submit=submit,
    )
    spread = select_spread(spread_scores)
    config = StressConfig(
        chip=chip.short_name,
        patch_size=patch,
        sequence=sequence,
        spread=spread,
        scratch_regions=scale.max_spread,
    )
    return TunedResult(
        config=config,
        per_test_patch=per_test,
        patch_scan=scan,
        sequence_scores=seq_scores,
        spread_scores=spread_scores,
        wall_seconds=time.perf_counter() - started,
    )


def shipped_params(chip_name: str, scratch_regions: int = 64) -> StressConfig:
    """Bundled tuning results for a chip (the paper's Table 2).

    These are the parameters the tuning pipeline converges to; shipping
    them (as the paper ships Table 2) spares users the tuning time.
    """
    chip = get_chip(chip_name)
    return StressConfig(
        chip=chip.short_name,
        patch_size=chip.patch_size,
        sequence=chip.best_sequence,
        spread=_SHIPPED_SPREAD,
        scratch_regions=scratch_regions,
    )
