"""Access-sequence selection (paper Sec. 3.3, Tab. 3).

Every sequence σ ∈ (ld|st)+ up to length N is scored per litmus test:
the number of weak behaviours of ⟨T_d, σ@l⟩ summed over all distances d
and all patch-start locations l (stressing several locations of one
patch is redundant once the critical patch size is known).

A sequence is *maximally effective* when it is Pareto-optimal over the
three tests.  Ties are broken by pairwise majority (most effective for
two of the three tests), then by total score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..chips.profile import HardwareProfile
from ..litmus import TUNING_TESTS
from ..litmus.units import litmus_unit
from ..parallel import ParallelConfig, resolve_config
from ..rng import derive_seed
from ..scale import DEFAULT, Scale
from ..store import litmus_grid_counts, litmus_key
from ..stress.strategies import FixedLocationStress
from ..stress.sequences import all_sequences, format_sequence

Sequence = tuple[str, ...]


@dataclass
class SequenceScores:
    """Per-test scores of every candidate access sequence."""

    chip: str
    tests: tuple[str, ...]
    scores: dict[Sequence, dict[str, int]] = field(default_factory=dict)

    def total(self, seq: Sequence) -> int:
        return sum(self.scores[seq].values())

    def ranking(self, test: str) -> list[tuple[Sequence, int]]:
        """Sequences ranked by descending score for one test (a Tab. 3
        column)."""
        return sorted(
            ((seq, s[test]) for seq, s in self.scores.items()),
            key=lambda kv: -kv[1],
        )

    def table3_rows(self, top: int = 3, bottom: int = 3) -> dict[str, list]:
        """Top/bottom ranked sequences per test, Tab. 3 style."""
        out = {}
        for test in self.tests:
            ranked = self.ranking(test)
            rows = [
                {"rank": i + 1, "sigma": format_sequence(seq), "score": score}
                for i, (seq, score) in enumerate(ranked)
            ]
            out[test] = rows[:top] + rows[-bottom:]
        return out


def score_sequences(
    chip: HardwareProfile,
    patch_size: int,
    scale: Scale = DEFAULT,
    seed: int = 0,
    parallel: ParallelConfig | None = None,
    ledger=None,
    submit: Callable | None = None,
) -> SequenceScores:
    """Score every σ up to the scale's maximum length.

    The (σ × test × distance × location) grid is embarrassingly
    parallel; each point derives its own seed from its coordinates, so
    fanning the grid out as litmus work units — locally under
    ``parallel``, across machines under a distributed ``submit`` —
    leaves the scores bit-identical, and ``ledger`` checkpoints each
    finished point for exact resumption.
    """
    config = resolve_config(parallel, scale)
    locations = tuple(range(0, scale.max_location, patch_size))
    distances = tuple(range(0, scale.max_distance, scale.seq_distance_step))
    scores = SequenceScores(
        chip=chip.short_name, tests=tuple(t.name for t in TUNING_TESTS)
    )
    sequences = all_sequences(scale.max_sequence_length)
    grid = [
        (seq, test, d, l)
        for seq in sequences
        for test in TUNING_TESTS
        for d in distances
        for l in locations
    ]
    units = [
        litmus_unit(
            key=litmus_key(
                chip.short_name, test.name,
                f"seq.fix.l{l}.{'-'.join(seq)}", d, scale.seq_executions,
                seed,
            ),
            chip=chip.short_name,
            test=test.name,
            distance=d,
            stress_spec=FixedLocationStress((l,), seq),
            executions=scale.seq_executions,
            seed=derive_seed(seed, "seq", seq, test.name, d, l),
            record_seed=seed,
        )
        for seq, test, d, l in grid
    ]
    counts = litmus_grid_counts(units, config, ledger, submit)
    for seq in sequences:
        scores.scores[seq] = {t.name: 0 for t in TUNING_TESTS}
    for (seq, test, _d, _l), weak in zip(grid, counts):
        scores.scores[seq][test.name] += weak
    return scores


def pareto_front(scores: SequenceScores) -> list[Sequence]:
    """Sequences not dominated on all tests by any other sequence."""
    seqs = list(scores.scores)
    front = []
    for a in seqs:
        dominated = False
        for b in seqs:
            if b is a:
                continue
            if all(
                scores.scores[b][t] > scores.scores[a][t]
                for t in scores.tests
            ):
                dominated = True
                break
        if not dominated:
            front.append(a)
    return front


def select_sequence(scores: SequenceScores) -> Sequence:
    """The maximally effective sequence after tie-breaking.

    From the Pareto front, prefer the sequence that beats each rival on
    at least two of the three litmus tests (the paper's tie-break); fall
    back to the highest total score.
    """
    front = pareto_front(scores)
    if len(front) == 1:
        return front[0]

    def beats(a: Sequence, b: Sequence) -> int:
        return sum(
            1
            for t in scores.tests
            if scores.scores[a][t] > scores.scores[b][t]
        )

    majority_winners = [
        a
        for a in front
        if all(beats(a, b) >= 2 for b in front if b is not a)
    ]
    candidates = majority_winners or front
    return max(candidates, key=scores.total)
