"""The per-chip tuning pipeline (paper Sec. 3).

Three stages, each a micro-benchmark campaign over litmus tests:

1. :mod:`repro.tuning.patches` — find the chip's *critical patch size*
   by stressing each scratchpad location in turn (Sec. 3.2, Fig. 3);
2. :mod:`repro.tuning.access` — rank stressing access sequences and pick
   the Pareto-optimal one over MP/LB/SB (Sec. 3.3, Tab. 3);
3. :mod:`repro.tuning.spread` — pick how many patch-sized regions to
   stress simultaneously (Sec. 3.4, Fig. 4).

:func:`repro.tuning.pipeline.tune_chip` chains the stages into a Table 2
row; :func:`repro.tuning.pipeline.shipped_params` returns pre-tuned
parameters so the campaign layers do not have to re-run the tuning.
"""

from .patches import PatchScan, critical_patch_size, find_patches, scan_patches
from .access import SequenceScores, score_sequences, select_sequence
from .spread import SpreadScores, score_spreads, select_spread
from .pipeline import TunedResult, shipped_params, tune_chip

__all__ = [
    "PatchScan",
    "critical_patch_size",
    "find_patches",
    "scan_patches",
    "SequenceScores",
    "score_sequences",
    "select_sequence",
    "SpreadScores",
    "score_spreads",
    "select_spread",
    "TunedResult",
    "shipped_params",
    "tune_chip",
]
