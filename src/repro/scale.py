"""Experiment scale presets.

The paper ran roughly half a billion micro-benchmark executions and
one-hour-per-combination application campaigns on physical GPUs.  A pure
Python simulator cannot (and does not need to) match those sample sizes:
all the statistics the paper reports (weak-behaviour counts, the >5%
effectiveness threshold, Pareto fronts over litmus idioms) stabilise at far
smaller samples on the simulator.  This module centralises the knobs so
every harness can be run at ``smoke`` (CI), ``default`` (interactive) or
``paper`` (full grid) scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .errors import ReproError


@dataclass(frozen=True)
class Scale:
    """Sample-size knobs for the experiment harness.

    Attributes mirror the paper's notation:

    * ``max_distance`` — ``D``, distances between communication locations.
    * ``distance_step`` — stride through ``[0, D)`` (paper uses 1).
    * ``max_location`` — ``L``, scratchpad locations considered.
    * ``location_step`` — stride through ``[0, L)`` (paper uses 1).
    * ``executions`` — ``C``, executions per test instance.
    * ``max_sequence_length`` — ``N``, maximum access-sequence length.
    * ``max_spread`` — ``M``, maximum number of stressed regions.
    * ``campaign_runs`` — executions per (chip, app, environment) cell,
      standing in for the paper's one-hour wall-clock budget.
    * ``stability_runs`` — executions for an ``EmpiricallyStable`` check.
    * ``jobs`` — worker processes for the parallel subsystem
      (:mod:`repro.parallel`); ``1`` = serial, ``0`` = one per CPU.
      Results are identical at any job count; only wall-clock changes.
    * ``dist_workers`` — local worker subprocesses served through the
      distributed coordinator (:mod:`repro.dist`); ``0`` (the default)
      keeps execution in the local pool.  As with ``jobs``, results
      are identical at any worker count.
    * ``litmus_backend`` — which litmus runner the survey-style
      experiments use (``direct``, ``engine`` or ``vector``).  The
      vector backend trades draw-identical scalar semantics for
      mega-batch throughput; its results are validated statistically
      (see :mod:`repro.litmus.vector`).
    """

    name: str
    max_distance: int
    distance_step: int
    max_location: int
    location_step: int
    executions: int
    max_sequence_length: int
    max_spread: int
    campaign_runs: int
    stability_runs: int
    # Sequence scoring (Sec. 3.3) and spread finding (Sec. 3.4) sweep
    # distances more coarsely than patch finding; these knobs control
    # their sub-grids.
    seq_distance_step: int = 64
    seq_executions: int = 32
    spread_distance_step: int = 64
    spread_executions: int = 48
    jobs: int = 1
    litmus_backend: str = "direct"
    dist_workers: int = 0

    def __post_init__(self) -> None:
        if self.litmus_backend not in ("direct", "engine", "vector"):
            raise ReproError(
                f"unknown litmus backend {self.litmus_backend!r}; "
                "choose from direct, engine, vector"
            )
        if self.dist_workers < 0:
            raise ReproError(
                f"dist_workers must be >= 0, got {self.dist_workers}"
            )

    def with_jobs(self, jobs: int) -> "Scale":
        """Copy of this preset with a different worker count."""
        return dataclasses.replace(self, jobs=jobs)

    def with_backend(self, backend: str) -> "Scale":
        """Copy of this preset with a different litmus backend."""
        return dataclasses.replace(self, litmus_backend=backend)

    def with_dist(self, workers: int) -> "Scale":
        """Copy of this preset with a distributed worker count."""
        return dataclasses.replace(self, dist_workers=workers)


SMOKE = Scale(
    name="smoke",
    max_distance=160,
    distance_step=32,
    max_location=160,
    location_step=16,
    executions=40,
    max_sequence_length=4,
    max_spread=8,
    campaign_runs=24,
    stability_runs=40,
    seq_distance_step=96,
    seq_executions=16,
    spread_distance_step=96,
    spread_executions=24,
)

DEFAULT = Scale(
    name="default",
    max_distance=256,
    distance_step=16,
    max_location=256,
    location_step=8,
    executions=64,
    max_sequence_length=5,
    max_spread=16,
    campaign_runs=40,
    stability_runs=80,
    seq_distance_step=64,
    seq_executions=32,
    spread_distance_step=64,
    spread_executions=48,
)

PAPER = Scale(
    name="paper",
    max_distance=256,
    distance_step=1,
    max_location=256,
    location_step=1,
    executions=1000,
    max_sequence_length=5,
    max_spread=64,
    campaign_runs=400,
    stability_runs=1000,
    seq_distance_step=1,
    seq_executions=1000,
    spread_distance_step=1,
    spread_executions=1000,
)

_PRESETS = {s.name: s for s in (SMOKE, DEFAULT, PAPER)}


def get_scale(name: str) -> Scale:
    """Look up a scale preset by name (``smoke``, ``default``, ``paper``)."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise ReproError(
            f"unknown scale {name!r}; choose from {sorted(_PRESETS)}"
        ) from None
