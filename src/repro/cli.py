"""Command-line interface: ``gpu-wmm`` (or ``python -m repro``).

Subcommands:

* ``experiment <id>`` — regenerate a paper table/figure
  (``table1``, ``fig3``, ``table2``, ``table3``, ``fig4``, ``table4``,
  ``table5``, ``table6``, ``fig5``);
* ``litmus`` — run one litmus test under a stressing configuration;
* ``test-app`` — run one application under a testing environment;
* ``harden`` — empirical fence insertion for one application/chip;
* ``chips`` / ``apps`` — list the registries.
"""

from __future__ import annotations

import argparse
import sys

from .apps.base import run_application
from .apps.registry import all_applications, get_application
from .chips.registry import all_chips, get_chip
from .hardening.insertion import empirical_fence_insertion
from .litmus.runner import run_litmus
from .litmus.tests import get_test
from .reporting.experiments import EXPERIMENTS, run_experiment
from .rng import derive_seed
from .scale import get_scale
from .stress.environment import standard_environments
from .stress.sequences import parse_sequence
from .stress.strategies import FixedLocationStress, NoStress
from .tuning.pipeline import shipped_params


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=["smoke", "default", "paper"],
        help="experiment scale preset",
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    print(run_experiment(args.id, scale=args.scale, seed=args.seed))
    return 0


def _cmd_chips(_args: argparse.Namespace) -> int:
    for chip in all_chips(include_reference=True):
        print(
            f"{chip.short_name:8s} {chip.name:14s} "
            f"{chip.architecture:10s} {chip.released or '-'}"
        )
    return 0


def _cmd_apps(_args: argparse.Namespace) -> int:
    for app in all_applications():
        print(f"{app.name:13s} {app.description}")
    return 0


def _cmd_litmus(args: argparse.Namespace) -> int:
    chip = get_chip(args.chip)
    test = get_test(args.test)
    if args.stress_at:
        locations = tuple(int(x) for x in args.stress_at.split(","))
        sequence = parse_sequence(args.sequence or "st ld")
        spec = FixedLocationStress(locations, sequence)
    else:
        spec = NoStress()
    result = run_litmus(
        chip,
        test,
        args.distance,
        spec,
        args.executions,
        seed=args.seed,
        randomise=args.randomise,
    )
    print(
        f"{test.name} d={args.distance} on {chip.short_name}: "
        f"{result.weak}/{result.executions} weak "
        f"({100 * result.rate:.1f}%)"
    )
    return 0


def _cmd_test_app(args: argparse.Namespace) -> int:
    chip = get_chip(args.chip)
    app = get_application(args.app)
    envs = {
        e.name: e
        for e in standard_environments(shipped_params(chip.short_name))
    }
    env = envs[args.environment]
    errors = timeouts = 0
    for i in range(args.runs):
        run = run_application(
            app,
            chip,
            stress_spec=env.strategy,
            randomise=env.randomise,
            seed=derive_seed(args.seed, "cli", i),
        )
        errors += run.erroneous
        timeouts += run.timed_out
    rate = 100.0 * errors / args.runs
    effective = "effective" if rate > 5.0 else "not effective"
    print(
        f"{app.name} on {chip.short_name} under {env.name}: "
        f"{errors}/{args.runs} erroneous ({rate:.1f}%, {effective}), "
        f"{timeouts} timeouts"
    )
    return 0


def _cmd_harden(args: argparse.Namespace) -> int:
    chip = get_chip(args.chip)
    app = get_application(args.app)
    result = empirical_fence_insertion(
        app, chip, scale=get_scale(args.scale), seed=args.seed
    )
    print(
        f"{app.name} on {chip.short_name}: {result.initial_fences} "
        f"initial fences -> {len(result.reduced)} after reduction "
        f"({'converged' if result.converged else 'NOT converged'}, "
        f"{result.check_runs} check runs, {result.wall_seconds:.1f}s)"
    )
    for site in sorted(result.reduced):
        print(f"  fence after {site}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-wmm",
        description=(
            "Reproduction of 'Exposing Errors Related to Weak Memory in "
            "GPU Applications' (PLDI 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiment", help="regenerate a paper artefact")
    p.add_argument("id", choices=sorted(EXPERIMENTS))
    _add_common(p)
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("chips", help="list the chip registry")
    p.set_defaults(fn=_cmd_chips)

    p = sub.add_parser("apps", help="list the application registry")
    p.set_defaults(fn=_cmd_apps)

    p = sub.add_parser("litmus", help="run a litmus test")
    p.add_argument("test", help="MP, LB or SB")
    p.add_argument("--chip", default="K20")
    p.add_argument("--distance", type=int, default=64)
    p.add_argument("--executions", type=int, default=200)
    p.add_argument(
        "--stress-at",
        default="",
        help="comma-separated scratchpad offsets to stress",
    )
    p.add_argument("--sequence", default="", help="e.g. 'ld st2 ld'")
    p.add_argument("--randomise", action="store_true")
    _add_common(p)
    p.set_defaults(fn=_cmd_litmus)

    p = sub.add_parser("test-app", help="run an application campaign cell")
    p.add_argument("app")
    p.add_argument("--chip", default="K20")
    p.add_argument("--environment", default="sys-str+")
    p.add_argument("--runs", type=int, default=40)
    _add_common(p)
    p.set_defaults(fn=_cmd_test_app)

    p = sub.add_parser("harden", help="empirical fence insertion")
    p.add_argument("app")
    p.add_argument("--chip", default="Titan")
    _add_common(p)
    p.set_defaults(fn=_cmd_harden)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
