"""Command-line interface: ``gpu-wmm`` (or ``python -m repro``).

Subcommands:

* ``experiment <id>`` — regenerate a paper table/figure
  (``table1``, ``fig3``, ``table2``, ``table3``, ``fig4``, ``table4``,
  ``table5``, ``table6``, ``fig5``);
* ``litmus`` — run one litmus test under a stressing configuration;
* ``axiom`` — classify a test's final states against the axiomatic
  weak-memory model (verdict table with witness executions);
* ``synth`` — synthesize novel litmus tests from the model (bounded
  enumeration, symmetry dedup, soundness gate, cross-chip survey);
* ``test-app`` — run one application under a testing environment;
* ``harden`` — empirical fence insertion for one application/chip;
* ``coordinate`` — serve an experiment's work units to socket workers
  (scale-out across machines; ``--dist N`` self-spawns local workers);
* ``worker`` — join a coordinator and execute leased work units
  (SIGTERM drains gracefully: held leases release, nothing new starts);
* ``chaos`` — run a distributable experiment under a fault-injection
  plan and assert the output byte-identical to a serial run;
* ``ledger`` — ``verify`` (read-only integrity scan) or ``salvage``
  (quarantine corrupt segments, recover intact records) a run ledger;
* ``chips`` / ``apps`` / ``tests`` — list the registries.

Every run-loop subcommand accepts ``--jobs N`` to shard its work across
worker processes (``0`` = one per CPU); results are identical at any
job count.  It also accepts ``--out DIR`` / ``--resume DIR`` to attach
a persistent run ledger: completed results stream into DIR as they
finish, a resumed invocation replays only the missing keys
(bit-identically to an uninterrupted run), and a complete ledger
regenerates its artefact with zero simulation runs.
"""

from __future__ import annotations

import argparse
import sys

from .apps.registry import APP_ORDER, get_application
from .apps.registry import all_applications
from .chips.registry import CHIP_ORDER, all_chips, get_chip
from .dist.leases import DEFAULT_TARGET_LEASE_S
from .errors import ReproError
from .hardening.insertion import empirical_fence_insertion
from .litmus import BACKENDS
from .litmus.tests import ALL_TESTS, get_test, test_names
from .parallel import ParallelConfig
from .reporting.experiments import (
    DISTRIBUTABLE,
    EXPERIMENTS,
    open_ledger,
    run_experiment,
)
from .store import litmus_key, records as store_records, stress_token
from .scale import get_scale
from .stress.environment import ENVIRONMENT_ORDER, standard_environments
from .stress.sequences import parse_sequence
from .stress.strategies import FixedLocationStress, NoStress
from .testing.campaign import run_cell
from .tuning.pipeline import shipped_params

#: Canonical litmus-test names, straight from the registry (the CLI
#: never hardcodes the family; growing the registry grows the CLI).
_TEST_NAMES = test_names()
#: Chips selectable on the command line: the studied parts plus the
#: sequentially consistent reference chip.
_CHIP_NAMES = CHIP_ORDER + ("sc-ref",)


def _test_arg(value: str) -> str:
    """argparse type for litmus-test names: case-insensitive, canonical."""
    try:
        return get_test(value).name
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"unknown litmus test {value!r} "
            f"(choose from {', '.join(_TEST_NAMES)})"
        ) from None


def _jobs_arg(value: str) -> int:
    """argparse type for ``--jobs``: a non-negative worker count."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {value!r}"
        ) from None
    if n < 0:
        raise argparse.ArgumentTypeError(
            "jobs must be >= 0 (0 = one per CPU)"
        )
    return n


def _lease_units_arg(value: str) -> int:
    """argparse type for ``--units-per-lease``: a positive batch size."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {value!r}"
        ) from None
    if n < 1:
        raise argparse.ArgumentTypeError("units per lease must be >= 1")
    return n


def _lease_target_arg(value: str) -> float:
    """argparse type for ``--lease-target-seconds``: finite, positive."""
    import math

    try:
        x = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid float value: {value!r}"
        ) from None
    if not math.isfinite(x) or x <= 0:
        raise argparse.ArgumentTypeError(
            "lease target must be a finite number of seconds > 0"
        )
    return x


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=["smoke", "default", "paper"],
        help="experiment scale preset (sample sizes; default: smoke)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=None,
        metavar="N",
        help=(
            "worker processes for the run loops (default: serial; "
            "0 = one per CPU; results are identical at any job count)"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help=(
            "write completed results to a run ledger at DIR "
            "(created if missing; already-ledgered results are reused)"
        ),
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help=(
            "resume from the run ledger at DIR (must exist); only "
            "missing results are re-run, bit-identically to a cold run"
        ),
    )


def _parallel(args: argparse.Namespace) -> ParallelConfig | None:
    """The ParallelConfig implied by ``--jobs`` (None = serial default)."""
    return None if args.jobs is None else ParallelConfig(jobs=args.jobs)


def _ledger(args: argparse.Namespace):
    """The RunLedger implied by ``--out`` / ``--resume`` (or None)."""
    return open_ledger(args.out, args.resume)


def _experiment_kwargs(args: argparse.Namespace) -> dict[str, object]:
    """Per-experiment keyword arguments from the shared filter flags.

    Raises :class:`ReproError` on a flag/experiment mismatch (rendered
    as a usage error by the callers).
    """
    kwargs: dict[str, object] = {}
    if args.chips:
        # Experiments centred on a single chip take ``chip``; the grid
        # experiments take a ``chips`` tuple.  table1/table4 are static
        # registry renders and ignore the filter.
        if args.id in ("table3", "table6"):
            if len(args.chips) > 1:
                raise ReproError(
                    f"experiment {args.id} runs on a single chip; "
                    f"got --chips {' '.join(args.chips)}"
                )
            kwargs["chip"] = args.chips[0]
        elif args.id in ("fig3", "table2", "fig4", "table5", "fig5",
                         "survey"):
            kwargs["chips"] = tuple(args.chips)
    if args.environments and args.id == "table5":
        kwargs["environments"] = tuple(args.environments)
    if args.tests:
        if args.id != "survey":
            raise ReproError(
                "--tests only applies to the survey experiment, "
                f"not {args.id}"
            )
        kwargs["tests"] = tuple(args.tests)
    if args.backend:
        if args.id != "survey":
            raise ReproError(
                "--backend only applies to the survey experiment, "
                f"not {args.id}"
            )
        kwargs["backend"] = args.backend
    return kwargs


def _cmd_experiment(args: argparse.Namespace) -> int:
    try:
        kwargs = _experiment_kwargs(args)
    except ReproError as exc:
        print(f"gpu-wmm: error: {exc}", file=sys.stderr)
        return 2
    try:
        text = run_experiment(
            args.id,
            scale=args.scale,
            seed=args.seed,
            jobs=args.jobs,
            out=args.out,
            resume=args.resume,
            dist=args.dist,
            units_per_lease=args.units_per_lease,
            lease_target_s=args.lease_target_s,
            **kwargs,
        )
    except (ReproError, ValueError) as exc:
        # E.g. tuning experiments on sc-ref: the SC reference chip shows
        # no weak behaviours, so patch finding legitimately fails.
        print(f"gpu-wmm: error: {exc}", file=sys.stderr)
        return 2
    print(text)
    return 0


def _stderr_log(message: str) -> None:
    """Distributed-run progress goes to stderr so stdout stays exactly
    the experiment's table (diffable against a serial run)."""
    print(f"gpu-wmm: {message}", file=sys.stderr)


def _parse_connect(value: str) -> tuple[str, int]:
    """Parse a ``host:port`` target."""
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise ReproError(
            f"--connect expects host:port, got {value!r}"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(
            f"--connect expects a numeric port, got {port!r}"
        ) from None


def _cmd_coordinate(args: argparse.Namespace) -> int:
    from .dist import DistributedSubmit

    submit = DistributedSubmit(
        workers=args.dist,
        host=args.host,
        port=args.port,
        lease_timeout=args.lease_timeout,
        units_per_lease=args.units_per_lease,
        lease_target_s=args.lease_target_s,
        worker_jobs=args.worker_jobs,
        log=_stderr_log,
    )
    try:
        text = run_experiment(
            args.id,
            scale=args.scale,
            seed=args.seed,
            jobs=args.jobs,
            out=args.out,
            resume=args.resume,
            submit=submit,
            **_experiment_kwargs(args),
        )
    except (ReproError, ValueError) as exc:
        print(f"gpu-wmm: error: {exc}", file=sys.stderr)
        return 2
    print(text)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import os
    import signal

    from .dist import run_worker

    if args.faults:
        # Export rather than install directly: the injector auto-loads
        # from the environment in this process *and* in every pool
        # child this worker spawns (see repro.faults.runtime).
        from .faults.runtime import PLAN_ENV, ROLE_ENV

        os.environ[PLAN_ENV] = args.faults
        os.environ.setdefault(ROLE_ENV, "worker")
    draining = {"requested": False}

    def request_drain(signum, frame) -> None:
        if not draining["requested"]:
            _stderr_log(
                f"{args.name}: SIGTERM received; draining (starting "
                "nothing new, releasing held leases, then bye)"
            )
        draining["requested"] = True

    try:
        signal.signal(signal.SIGTERM, request_drain)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    host, port = _parse_connect(args.connect)
    run_worker(
        host,
        port,
        name=args.name,
        jobs=args.jobs if args.jobs is not None else 1,
        max_units=args.max_units,
        delay=args.delay,
        connect_timeout=args.connect_timeout,
        reconnect_timeout=args.reconnect_timeout,
        drain_check=lambda: draining["requested"],
        log=_stderr_log,
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import FaultPlan
    from .faults.chaos import run_chaos

    try:
        kwargs = _experiment_kwargs(args)
        plan = FaultPlan.load(args.plan)
        report = run_chaos(
            args.id,
            plan,
            scale=args.scale,
            seed=args.seed,
            workers=args.workers,
            out=args.out,
            lease_timeout=args.lease_timeout,
            reconnect_timeout=args.reconnect_timeout,
            max_attempts=args.max_attempts,
            log=_stderr_log,
            **kwargs,
        )
    except (ReproError, ValueError) as exc:
        print(f"gpu-wmm: error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    if not report.identical:
        print(
            "gpu-wmm: chaos output DIFFERS from the fault-free serial "
            "reference — the hardening contract is broken",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    from .store.ledger import salvage_ledger, verify_ledger

    if args.action == "verify":
        problems = verify_ledger(args.dir)
        if not problems:
            print(f"ledger at {args.dir}: clean")
            return 0
        for problem in problems:
            line = f":{problem['line']}" if problem["line"] else ""
            print(f"{problem['segment']}{line}: {problem['error']}")
        print(
            f"{len(problems)} problem(s) found; repair with: "
            f"gpu-wmm ledger salvage {args.dir}"
        )
        return 1
    summary = salvage_ledger(args.dir, log=_stderr_log)
    print(
        f"ledger at {args.dir}: "
        f"{len(summary['quarantined_segments'])} segment(s) "
        f"quarantined, {summary['recovered']} record(s) recovered, "
        f"{len(summary['dropped'])} dropped"
    )
    if summary["quarantined_segments"]:
        print(
            "damaged segments kept under "
            f"{args.dir}/quarantine/; resume the campaign to re-run "
            "any records that were destroyed"
        )
    return 0


def _cmd_chips(_args: argparse.Namespace) -> int:
    for chip in all_chips(include_reference=True):
        print(
            f"{chip.short_name:8s} {chip.name:14s} "
            f"{chip.architecture:10s} {chip.released or '-'}"
        )
    return 0


def _cmd_apps(_args: argparse.Namespace) -> int:
    for app in all_applications():
        print(f"{app.name:13s} {app.description}")
    return 0


def _cmd_tests(_args: argparse.Namespace) -> int:
    for test in ALL_TESTS:
        print(f"{test.name:6s} {test.n_threads}T  {test.description}")
    return 0


def _cmd_axiom(args: argparse.Namespace) -> int:
    from .axiom.model import classify
    from .reporting.axiom import render_axiom_report, render_axiom_summary

    if args.test is None:
        print(render_axiom_summary(ALL_TESTS))
        return 0
    print(render_axiom_report(classify(get_test(args.test))))
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from .axiom.synth import SynthConfig, synthesize
    from .reporting.axiom import render_synth_report, synth_survey
    from .testing.soundness import soundness_gate

    try:
        cfg = SynthConfig(
            threads=args.threads,
            max_ops=args.max_ops,
            locations=args.locations,
            values=args.values,
            rmw=not args.no_rmw,
            fences=not args.no_fences,
            limit=args.limit or 0,
        )
    except ValueError as exc:
        print(f"gpu-wmm: error: {exc}", file=sys.stderr)
        return 2
    report = synthesize(cfg)
    print(render_synth_report(report, show_ir=not args.no_ir))
    novel = tuple(s.test for s in report.novel)
    if not novel:
        return 0
    gate = soundness_gate(
        tests=novel,
        chip=args.chips[0] if args.chips else "K20",
        backends=("direct",),
        seed=args.seed,
        executions={"direct": args.executions},
        check_sc_reference=False,
    )
    print()
    print(
        f"soundness gate over {len(novel)} novel tests "
        f"({gate.chip}, direct backend, seed {gate.seed}): "
        + ("PASS" if gate.ok else "FAIL")
    )
    for violation in gate.violations:
        print(f"  {violation}")
    if args.no_survey:
        return 0 if gate.ok else 1
    chips = [get_chip(c) for c in (args.chips or CHIP_ORDER)]
    print()
    print(synth_survey(novel, chips, args.executions, seed=args.seed))
    return 0 if gate.ok else 1


def _cmd_litmus(args: argparse.Namespace) -> int:
    chip = get_chip(args.chip)
    test = get_test(args.test)
    if args.stress_at:
        locations = tuple(int(x) for x in args.stress_at.split(","))
        sequence = parse_sequence(args.sequence or "st ld")
        spec = FixedLocationStress(locations, sequence)
    else:
        spec = NoStress()
    runner = BACKENDS[args.backend]
    ledger = _ledger(args)
    key = litmus_key(
        chip.short_name, test.name, stress_token(spec), args.distance,
        args.executions, args.seed, backend=args.backend,
        randomise=args.randomise,
    )
    if ledger is not None and (record := ledger.get(key)) is not None:
        result = store_records.decode_litmus(record)
    else:
        result = runner(
            chip,
            test,
            args.distance,
            spec,
            args.executions,
            seed=args.seed,
            randomise=args.randomise,
            parallel=_parallel(args),
        )
        if ledger is not None:
            ledger.append(
                store_records.encode_litmus(
                    key, result, chip=chip.short_name, seed=args.seed
                )
            )
    print(
        f"{test.name} d={args.distance} on {chip.short_name} "
        f"[{args.backend}]: {result.weak}/{result.executions} weak "
        f"({100 * result.rate:.1f}%)"
    )
    return 0


def _cmd_test_app(args: argparse.Namespace) -> int:
    chip = get_chip(args.chip)
    app = get_application(args.app)
    envs = {
        e.name: e
        for e in standard_environments(shipped_params(chip.short_name))
    }
    env = envs[args.environment]
    cell = run_cell(
        app, chip, env, args.runs, seed=args.seed,
        parallel=_parallel(args), ledger=_ledger(args),
    )
    rate = 100.0 * cell.error_rate
    effective = "effective" if rate > 5.0 else "not effective"
    print(
        f"{app.name} on {chip.short_name} under {env.name}: "
        f"{cell.errors}/{cell.runs} erroneous ({rate:.1f}%, {effective}), "
        f"{cell.timeouts} timeouts"
    )
    return 0


def _cmd_harden(args: argparse.Namespace) -> int:
    chip = get_chip(args.chip)
    app = get_application(args.app)
    result = empirical_fence_insertion(
        app,
        chip,
        scale=get_scale(args.scale),
        seed=args.seed,
        parallel=_parallel(args),
        ledger=_ledger(args),
    )
    print(
        f"{app.name} on {chip.short_name}: {result.initial_fences} "
        f"initial fences -> {len(result.reduced)} after reduction "
        f"({'converged' if result.converged else 'NOT converged'}, "
        f"{result.check_runs} check runs, {result.wall_seconds:.1f}s)"
    )
    for site in sorted(result.reduced):
        print(f"  fence after {site}")
    return 0


def _epilog() -> str:
    """Enumerate every valid name so users need not read the registries."""
    return "\n".join(
        [
            "valid names:",
            f"  chips         {', '.join(_CHIP_NAMES)}",
            f"  apps          {', '.join(APP_ORDER)}",
            f"  environments  {', '.join(ENVIRONMENT_ORDER)}",
            f"  litmus tests  {', '.join(_TEST_NAMES)}",
            f"  experiments   {', '.join(sorted(EXPERIMENTS))}",
            "",
            "parallel execution:",
            "  pass --jobs N to shard run loops across N worker",
            "  processes (0 = one per CPU).  Statistics are identical",
            "  at any job count; only wall-clock time changes.",
            "",
            "distributed campaigns:",
            "  pass --dist N to an experiment to serve its work units",
            "  to N local worker subprocesses via the lease",
            "  coordinator, or run 'gpu-wmm coordinate <id> --host",
            "  0.0.0.0 --port 7077' and join workers from any machine",
            "  with 'gpu-wmm worker --connect host:7077'.  Results are",
            "  byte-identical to a serial run at any worker count.",
            "  Leases are sized adaptively (per-worker service-time",
            "  EWMA, targeting --lease-target-seconds of compute each);",
            "  --units-per-lease N pins a fixed batch size instead.",
            "  Workers pipeline lease requests and frames compress",
            "  automatically (both negotiated; v2 workers still work).",
            "",
            "persistent run ledger:",
            "  pass --out DIR to checkpoint completed results into an",
            "  append-only ledger as they finish, and --resume DIR to",
            "  continue an interrupted campaign: only missing results",
            "  are re-run, bit-identically to an uninterrupted run.  A",
            "  complete ledger regenerates its tables with zero",
            "  simulation runs.",
            "",
            "examples:",
            "  gpu-wmm tests                  # litmus registry",
            "  gpu-wmm axiom MP               # axiomatic verdict table",
            "  gpu-wmm axiom                  # whole-registry summary",
            "  gpu-wmm synth --max-ops 2 --chips K20 980",
            "  gpu-wmm litmus MP --chip K20 --stress-at 0,64",
            "  gpu-wmm litmus IRIW --chip K20 --stress-at 0,64 \\",
            "      --backend engine           # compiled SIMT path",
            "  gpu-wmm litmus SB --chip 980 --executions 100000 \\",
            "      --backend vector           # vectorized mega-batches",
            "  gpu-wmm experiment survey --scale smoke --chips K20 \\",
            "      --tests MP MP-FF IRIW",
            "  gpu-wmm experiment table5 --scale smoke --jobs 4 \\",
            "      --chips K20 --environments no-str- sys-str+",
            "  gpu-wmm experiment table5 --scale paper --out ledger/",
            "  gpu-wmm experiment table5 --scale paper --resume ledger/",
            "  gpu-wmm experiment table5 --dist 2   # 2 local workers",
            "  gpu-wmm coordinate table5 --host 0.0.0.0 --port 7077 \\",
            "      --scale paper --out ledger/",
            "  gpu-wmm worker --connect big-box:7077 --jobs 0",
            "  gpu-wmm chaos table5 --plan examples/fault-plan.json \\",
            "      --chips K20 --out chaos-ledger/",
            "  gpu-wmm ledger verify chaos-ledger/",
            "  gpu-wmm ledger salvage chaos-ledger/",
            "  gpu-wmm harden cbe-dot --chip Titan --jobs 0",
        ]
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpu-wmm",
        description=(
            "Reproduction of 'Exposing Errors Related to Weak Memory in "
            "GPU Applications' (PLDI 2016)"
        ),
        epilog=_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_experiment_filters(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--chips",
            nargs="+",
            choices=_CHIP_NAMES,
            default=None,
            metavar="CHIP",
            help=(
                "restrict to these chips "
                f"(choices: {', '.join(_CHIP_NAMES)}; default: the "
                "experiment's own selection)"
            ),
        )
        p.add_argument(
            "--environments",
            nargs="+",
            choices=ENVIRONMENT_ORDER,
            default=None,
            metavar="ENV",
            help=(
                "restrict table5 to these environments "
                f"(choices: {', '.join(ENVIRONMENT_ORDER)})"
            ),
        )
        p.add_argument(
            "--tests",
            nargs="+",
            type=_test_arg,
            default=None,
            metavar="TEST",
            help=(
                "restrict the survey experiment to these litmus tests "
                f"(choices: {', '.join(_TEST_NAMES)})"
            ),
        )
        p.add_argument(
            "--backend",
            default=None,
            choices=tuple(BACKENDS),
            help=(
                "litmus backend for the survey experiment "
                f"(choices: {', '.join(BACKENDS)}; default: the "
                "scale's litmus_backend knob)"
            ),
        )

    def _add_lease_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--units-per-lease",
            "--lease-units",
            dest="units_per_lease",
            type=_lease_units_arg,
            default=None,
            metavar="N",
            help=(
                "fix the work units granted per lease (default: adaptive "
                "— the coordinator sizes each worker's leases from its "
                "measured per-unit service time)"
            ),
        )
        p.add_argument(
            "--lease-target-seconds",
            dest="lease_target_s",
            type=_lease_target_arg,
            default=DEFAULT_TARGET_LEASE_S,
            metavar="S",
            help=(
                "compute duration one adaptive lease targets (default: "
                f"{DEFAULT_TARGET_LEASE_S}; ignored with a fixed "
                "--units-per-lease)"
            ),
        )

    p = sub.add_parser(
        "experiment",
        help="regenerate a paper artefact (table1..table6, fig3..fig5)",
    )
    p.add_argument(
        "id",
        choices=sorted(EXPERIMENTS),
        help="paper table/figure to regenerate",
    )
    add_experiment_filters(p)
    p.add_argument(
        "--dist",
        type=_jobs_arg,
        default=None,
        metavar="N",
        help=(
            "serve the experiment's work units to N local worker "
            "subprocesses through the lease coordinator (distributable "
            f"experiments: {', '.join(sorted(DISTRIBUTABLE))}; results "
            "are byte-identical to a local run)"
        ),
    )
    _add_lease_args(p)
    _add_common(p)
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser(
        "coordinate",
        help=(
            "serve an experiment's work units to socket workers "
            "(remote machines join with: gpu-wmm worker --connect)"
        ),
    )
    p.add_argument(
        "id",
        choices=sorted(DISTRIBUTABLE),
        help="distributable experiment to coordinate",
    )
    add_experiment_filters(p)
    p.add_argument(
        "--host",
        default="127.0.0.1",
        help=(
            "interface to listen on (default: 127.0.0.1; use 0.0.0.0 "
            "to accept workers from other machines)"
        ),
    )
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to listen on (default: 0 = OS-assigned ephemeral)",
    )
    p.add_argument(
        "--dist",
        type=_jobs_arg,
        default=0,
        metavar="N",
        help=(
            "also self-spawn N local worker subprocesses (default: 0 = "
            "wait for external workers only)"
        ),
    )
    p.add_argument(
        "--lease-timeout",
        type=float,
        default=60.0,
        metavar="S",
        help=(
            "seconds a silent worker holds a lease before its units "
            "are reassigned (default: 60)"
        ),
    )
    _add_lease_args(p)
    p.add_argument(
        "--worker-jobs",
        type=_jobs_arg,
        default=1,
        metavar="N",
        help="process-pool width inside each self-spawned worker",
    )
    _add_common(p)
    p.set_defaults(fn=_cmd_coordinate)

    p = sub.add_parser(
        "worker",
        help="join a coordinator and execute leased work units",
    )
    p.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address (as printed by gpu-wmm coordinate)",
    )
    p.add_argument(
        "--name",
        default="worker",
        help="worker name shown in coordinator logs",
    )
    p.add_argument(
        "--max-units",
        type=int,
        default=None,
        metavar="N",
        help="leave voluntarily after executing N units",
    )
    p.add_argument(
        "--delay",
        type=float,
        default=0.0,
        metavar="S",
        help="sleep S seconds before each lease (straggler simulation)",
    )
    p.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="S",
        help="keep retrying the initial connect for S seconds",
    )
    p.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=None,
        metavar="N",
        help="process-pool width for executing each lease (default: 1)",
    )
    p.add_argument(
        "--reconnect-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help=(
            "ride out a coordinator outage for up to S seconds via "
            "backoff-and-reconnect before giving up (default: 30; "
            "0 = fail immediately on any connection loss)"
        ),
    )
    p.add_argument(
        "--faults",
        default=None,
        metavar="PLAN.json",
        help=(
            "arm this worker (and its pool children) with a "
            "fault-injection plan for chaos testing"
        ),
    )
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser(
        "chaos",
        help=(
            "run a distributable experiment under a fault-injection "
            "plan and assert byte-identical output vs a serial run"
        ),
    )
    p.add_argument(
        "id",
        choices=sorted(DISTRIBUTABLE),
        help="distributable experiment to stress",
    )
    p.add_argument(
        "--plan",
        required=True,
        metavar="PLAN.json",
        help="fault plan JSON (see docs/ARCHITECTURE.md, Failure model)",
    )
    add_experiment_filters(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--scale",
        default="smoke",
        choices=["smoke", "default", "paper"],
        help="experiment scale preset (default: smoke)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="local worker subprocesses to spawn (default: 2)",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help=(
            "attach a run ledger at DIR (also exercises ledger "
            "verify/salvage/resume when the plan injects ledger damage)"
        ),
    )
    p.add_argument(
        "--lease-timeout",
        type=float,
        default=15.0,
        metavar="S",
        help="coordinator lease timeout under chaos (default: 15)",
    )
    p.add_argument(
        "--reconnect-timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="worker outage tolerance under chaos (default: 30)",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help=(
            "per-unit failure budget before quarantine (default: 3)"
        ),
    )
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "ledger",
        help="verify or salvage a run ledger's on-disk integrity",
    )
    p.add_argument(
        "action",
        choices=["verify", "salvage"],
        help=(
            "verify: read-only integrity scan (exit 1 on damage); "
            "salvage: quarantine corrupt segments and recover intact "
            "records"
        ),
    )
    p.add_argument("dir", help="ledger directory")
    p.set_defaults(fn=_cmd_ledger)

    p = sub.add_parser("chips", help="list the chip registry")
    p.set_defaults(fn=_cmd_chips)

    p = sub.add_parser("apps", help="list the application registry")
    p.set_defaults(fn=_cmd_apps)

    p = sub.add_parser(
        "tests",
        help="list the litmus-test registry with descriptions",
    )
    p.set_defaults(fn=_cmd_tests)

    p = sub.add_parser(
        "axiom",
        help=(
            "classify a litmus test's final states against the "
            "axiomatic weak-memory model (no simulation)"
        ),
    )
    p.add_argument(
        "test",
        type=_test_arg,
        nargs="?",
        default=None,
        help=(
            "litmus test to classify, case-insensitive "
            f"({', '.join(_TEST_NAMES)}); omit for a registry summary"
        ),
    )
    p.set_defaults(fn=_cmd_axiom)

    p = sub.add_parser(
        "synth",
        help=(
            "synthesize litmus tests from the axiomatic model "
            "(bounded enumeration, symmetry dedup, soundness gate, "
            "cross-chip survey)"
        ),
    )
    p.add_argument(
        "--threads", type=int, default=2,
        help="exact thread count (2 or 3; default: 2)",
    )
    p.add_argument(
        "--max-ops", type=int, default=2,
        help="memory operations per thread, fences excluded (default: 2)",
    )
    p.add_argument(
        "--locations", type=int, default=2,
        help="location alphabet size (default: 2)",
    )
    p.add_argument(
        "--values", type=int, default=1,
        help="store-value alphabet 1..N (default: 1)",
    )
    p.add_argument(
        "--no-rmw", action="store_true",
        help="exclude rmw from the instruction alphabet",
    )
    p.add_argument(
        "--no-fences", action="store_true",
        help="exclude fences from the enumeration",
    )
    p.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="stop after emitting N tests (default: all)",
    )
    p.add_argument(
        "--chips",
        nargs="+",
        choices=_CHIP_NAMES,
        default=None,
        metavar="CHIP",
        help=(
            "chips for the cross-chip survey (default: all studied "
            "chips; the first chip also hosts the soundness gate)"
        ),
    )
    p.add_argument(
        "--executions", type=int, default=40,
        help="survey/gate executions per test (default: 40)",
    )
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--no-survey", action="store_true",
        help="skip the cross-chip survey (gate only)",
    )
    p.add_argument(
        "--no-ir", action="store_true",
        help="skip printing ready-to-register IR for novel tests",
    )
    p.set_defaults(fn=_cmd_synth)

    p = sub.add_parser(
        "litmus", help="run a litmus test under a stressing configuration"
    )
    p.add_argument(
        "test",
        type=_test_arg,
        help=(
            "litmus test, case-insensitive "
            f"({', '.join(_TEST_NAMES)})"
        ),
    )
    p.add_argument(
        "--chip",
        default="K20",
        choices=_CHIP_NAMES,
        help=f"chip to run on ({', '.join(_CHIP_NAMES)}; default: K20)",
    )
    p.add_argument(
        "--distance",
        type=int,
        default=64,
        help="words between the x and y communication locations",
    )
    p.add_argument("--executions", type=int, default=200)
    p.add_argument(
        "--stress-at",
        default="",
        help="comma-separated scratchpad offsets to stress (e.g. 0,64)",
    )
    p.add_argument(
        "--sequence",
        default="",
        help="stressing access sequence in run-length notation, "
        "e.g. 'ld st2 ld'",
    )
    p.add_argument(
        "--randomise",
        action="store_true",
        help="randomise SM placement and issue rates per execution",
    )
    p.add_argument(
        "--backend",
        default="direct",
        choices=tuple(BACKENDS),
        help=(
            "execution backend: the direct memory-system fast path, the "
            "test compiled to a SIMT-engine kernel, or the vectorized "
            "mega-batch backend (default: direct)"
        ),
    )
    _add_common(p)
    p.set_defaults(fn=_cmd_litmus)

    p = sub.add_parser(
        "test-app", help="run an application campaign cell"
    )
    p.add_argument(
        "app",
        choices=APP_ORDER,
        help=f"application ({', '.join(APP_ORDER)})",
    )
    p.add_argument(
        "--chip",
        default="K20",
        choices=_CHIP_NAMES,
        help=f"chip to run on ({', '.join(_CHIP_NAMES)}; default: K20)",
    )
    p.add_argument(
        "--environment",
        default="sys-str+",
        choices=ENVIRONMENT_ORDER,
        help=(
            "testing environment "
            f"({', '.join(ENVIRONMENT_ORDER)}; default: sys-str+)"
        ),
    )
    p.add_argument("--runs", type=int, default=40)
    _add_common(p)
    p.set_defaults(fn=_cmd_test_app)

    p = sub.add_parser("harden", help="empirical fence insertion")
    p.add_argument(
        "app",
        choices=APP_ORDER,
        help=f"application to harden ({', '.join(APP_ORDER)})",
    )
    p.add_argument(
        "--chip",
        default="Titan",
        choices=_CHIP_NAMES,
        help=f"chip to harden on ({', '.join(_CHIP_NAMES)}; "
        "default: Titan)",
    )
    _add_common(p)
    p.set_defaults(fn=_cmd_harden)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        # E.g. --resume pointing at a directory without a ledger.
        print(f"gpu-wmm: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
