"""Litmus grid points as backend-neutral work units.

The tuning grids (patch finding, sequence scoring, spread finding) and
the survey experiment all fan out litmus runs whose result is one
``litmus`` ledger record.  This module gives those layers a single
declarative currency: :func:`litmus_unit` packs everything the run
needs (chip and test *names*, the serialised stress spec, the derived
execution seed) into a :class:`~repro.parallel.plan.WorkUnit`, and
:func:`execute_litmus_unit` reconstitutes and runs it anywhere — a
pool child on this machine or a worker on another one — with results
identical by the global-index seeding contract.
"""

from __future__ import annotations

from ..chips.registry import get_chip
from ..parallel.plan import WorkUnit, register_executor
from ..store import records as store_records
from ..stress.strategies import spec_from_json, spec_to_json
from .tests import get_test


def litmus_unit(
    key: str,
    chip: str,
    test: str,
    distance: int,
    stress_spec,
    executions: int,
    seed: int,
    record_seed: int | None = None,
    backend: str = "direct",
    randomise: bool = False,
) -> WorkUnit:
    """Build the work unit for one litmus run.

    ``seed`` is the seed the runner executes with (tuning grids derive
    it from the point's coordinates); ``record_seed`` is the
    experiment-level seed stored in the ledger payload for query
    filtering (defaults to ``seed``).
    """
    return WorkUnit(
        kind="litmus",
        key=key,
        spec={
            "chip": chip,
            "test": test,
            "distance": distance,
            "stress": spec_to_json(stress_spec),
            "executions": executions,
            "seed": seed,
            "record_seed": seed if record_seed is None else record_seed,
            "backend": backend,
            "randomise": randomise,
        },
    )


def execute_litmus_unit(unit: WorkUnit):
    """Run one litmus unit and encode its ledger record."""
    from . import BACKENDS  # late: repro.litmus imports the runners

    s = unit.spec
    runner = BACKENDS[s["backend"]]
    result = runner(
        get_chip(s["chip"]),
        get_test(s["test"]),
        s["distance"],
        spec_from_json(s["stress"]),
        s["executions"],
        seed=s["seed"],
        randomise=s["randomise"],
    )
    return store_records.encode_litmus(
        unit.key, result, chip=s["chip"], seed=s["record_seed"]
    )


register_executor("litmus", execute_litmus_unit)
