"""The declarative litmus intermediate representation.

A litmus test is a tuple of short thread *programs* over named
communication locations plus a declarative *forbidden outcome* — the
final register/location valuation that sequential consistency rules out
but weak machines may exhibit.  Instructions are plain tuples and
conditions are frozen dataclasses, so every test is a pure picklable
value: tests cross process boundaries unchanged when litmus campaigns
are sharded (see :mod:`repro.parallel`), and the same description drives
both execution backends (the direct memory-system fast path in
:mod:`repro.litmus.runner` and the compiled SIMT-engine path in
:mod:`repro.litmus.compile`) as well as the brute-force SC enumerator in
:mod:`repro.litmus.sc`.

Instructions (``loc`` is a location name such as ``"x"``; ``reg`` a
register name such as ``"r1"``)::

    ("st", loc, value)        store ``value`` to ``loc``
    ("ld", loc, reg)          load ``loc`` into ``reg``
    ("fence",)                device fence: order prior accesses
    ("rmw", loc, reg, value)  atomic exchange: ``reg`` <- old, loc <- value

Conditions are built from :class:`RegEq` / :class:`LocEq` leaves joined
by :class:`And` / :class:`Or`; :func:`evaluate` interprets a condition
over a final register file and memory valuation.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Instruction mnemonics (shared with :mod:`repro.gpu.events` where the
#: compiled backend reuses the same strings for engine ops).
I_STORE = "st"
I_LOAD = "ld"
I_FENCE = "fence"
I_RMW = "rmw"

_KNOWN = frozenset((I_STORE, I_LOAD, I_FENCE, I_RMW))


def st(loc: str, value: int) -> tuple:
    """``("st", loc, value)`` — store ``value`` to ``loc``."""
    return (I_STORE, loc, value)


def ld(loc: str, reg: str) -> tuple:
    """``("ld", loc, reg)`` — load ``loc`` into ``reg``."""
    return (I_LOAD, loc, reg)


def fence() -> tuple:
    """``("fence",)`` — device fence."""
    return (I_FENCE,)


def rmw(loc: str, reg: str, value: int) -> tuple:
    """``("rmw", loc, reg, value)`` — atomic exchange."""
    return (I_RMW, loc, reg, value)


# ----------------------------------------------------------------------
# forbidden-outcome conditions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegEq:
    """``reg == value`` over the final register file."""

    reg: str
    value: int


@dataclass(frozen=True)
class LocEq:
    """``loc == value`` over final (flushed) memory."""

    loc: str
    value: int


@dataclass(frozen=True)
class And:
    """Conjunction of sub-conditions."""

    terms: tuple

    def __init__(self, *terms):
        # Accept And(a, b, c) while keeping the dataclass frozen/hashable.
        object.__setattr__(self, "terms", tuple(terms))


@dataclass(frozen=True)
class Or:
    """Disjunction of sub-conditions."""

    terms: tuple

    def __init__(self, *terms):
        object.__setattr__(self, "terms", tuple(terms))


Condition = object  # RegEq | LocEq | And | Or


def evaluate(cond, regs: dict, final: dict | None = None) -> bool:
    """Interpret ``cond`` over registers and final memory values.

    ``final`` maps location names to their post-run committed values; it
    may be omitted for conditions that never mention locations (the
    common register-only case).
    """
    if isinstance(cond, RegEq):
        return regs.get(cond.reg, 0) == cond.value
    if isinstance(cond, LocEq):
        if final is None:
            raise ValueError(
                f"condition references location {cond.loc!r} but no "
                "final memory valuation was supplied"
            )
        return final.get(cond.loc, 0) == cond.value
    if isinstance(cond, And):
        return all(evaluate(t, regs, final) for t in cond.terms)
    if isinstance(cond, Or):
        return any(evaluate(t, regs, final) for t in cond.terms)
    raise TypeError(f"not a condition: {cond!r}")


def compile_condition(cond):
    """Compile a condition into a fast ``f(regs, final) -> bool`` closure.

    Draw-free and semantically identical to :func:`evaluate` (with a
    supplied ``final``); the litmus runner evaluates the forbidden
    outcome once per round — hundreds of millions of times in a tuning
    campaign — so the recursive interpreter is folded away up front.
    The closure is rebuilt per process and never pickled; the test
    itself stays a pure data value.
    """
    if isinstance(cond, RegEq):
        reg, value = cond.reg, cond.value
        return lambda regs, final: regs.get(reg, 0) == value
    if isinstance(cond, LocEq):
        loc, value = cond.loc, cond.value
        return lambda regs, final: final.get(loc, 0) == value
    if isinstance(cond, And):
        fns = tuple(compile_condition(t) for t in cond.terms)
        if len(fns) == 2:
            f0, f1 = fns
            return lambda regs, final: f0(regs, final) and f1(regs, final)
        return lambda regs, final: all(f(regs, final) for f in fns)
    if isinstance(cond, Or):
        fns = tuple(compile_condition(t) for t in cond.terms)
        if len(fns) == 2:
            f0, f1 = fns
            return lambda regs, final: f0(regs, final) or f1(regs, final)
        return lambda regs, final: any(f(regs, final) for f in fns)
    raise TypeError(f"not a condition: {cond!r}")


def condition_registers(cond) -> frozenset:
    """Register names a condition mentions."""
    if isinstance(cond, RegEq):
        return frozenset((cond.reg,))
    if isinstance(cond, LocEq):
        return frozenset()
    return frozenset().union(
        *(condition_registers(t) for t in cond.terms)
    )


def condition_locations(cond) -> frozenset:
    """Location names a condition mentions (final-value queries)."""
    if isinstance(cond, LocEq):
        return frozenset((cond.loc,))
    if isinstance(cond, RegEq):
        return frozenset()
    return frozenset().union(
        *(condition_locations(t) for t in cond.terms)
    )


def format_condition(cond) -> str:
    """Human-readable rendering, litmus-style: ``r1=1 & r2=0``."""
    if isinstance(cond, RegEq):
        return f"{cond.reg}={cond.value}"
    if isinstance(cond, LocEq):
        return f"[{cond.loc}]={cond.value}"
    if isinstance(cond, And):
        return " & ".join(format_condition(t) for t in cond.terms)
    joined = " | ".join(format_condition(t) for t in cond.terms)
    return f"({joined})"


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def validate_program(program: tuple) -> None:
    """Raise ``ValueError`` for a malformed thread program."""
    for ins in program:
        if not isinstance(ins, tuple) or not ins:
            raise ValueError(f"instruction must be a non-empty tuple: {ins!r}")
        kind = ins[0]
        if kind not in _KNOWN:
            raise ValueError(
                f"unknown instruction kind {kind!r}; "
                f"choose from {sorted(_KNOWN)}"
            )
        arity = {I_STORE: 3, I_LOAD: 3, I_FENCE: 1, I_RMW: 4}[kind]
        if len(ins) != arity:
            raise ValueError(
                f"{kind!r} instruction takes {arity - 1} operands: {ins!r}"
            )


def validate_test(test) -> None:
    """Structural checks shared by the registry and user-built tests.

    * every thread program is well formed;
    * register names are unique across threads (the final register file
      is one flat namespace, as in the paper's generated CUDA tests);
    * the forbidden condition only mentions registers written by some
      ``ld``/``rmw`` and locations touched by some instruction.
    """
    if not test.threads:
        raise ValueError(f"litmus test {test.name!r} has no threads")
    seen_regs: set = set()
    for program in test.threads:
        validate_program(program)
        for ins in program:
            if ins[0] in (I_LOAD, I_RMW):
                reg = ins[2]
                if reg in seen_regs:
                    raise ValueError(
                        f"register {reg!r} written by two threads in "
                        f"{test.name!r}"
                    )
                seen_regs.add(reg)
    unknown_regs = condition_registers(test.forbidden) - seen_regs
    if unknown_regs:
        raise ValueError(
            f"condition of {test.name!r} mentions unwritten registers "
            f"{sorted(unknown_regs)}"
        )
    unknown_locs = condition_locations(test.forbidden) - set(test.locations)
    if unknown_locs:
        raise ValueError(
            f"condition of {test.name!r} mentions untouched locations "
            f"{sorted(unknown_locs)}"
        )
