"""The litmus-test registry: the paper's MP/LB/SB triple (Fig. 2) plus
fenced variants, coherence tests and 3/4-thread idioms.

Every test is an instance of :class:`LitmusTest` over the declarative IR
of :mod:`repro.litmus.ir`: N thread programs of ``st``/``ld``/``fence``/
``rmw`` instructions over named locations, and a declarative forbidden
outcome (register/location equalities under conjunction/disjunction)
instead of an opaque callable.  The predicate is compiled from the
condition at evaluation time, so tests remain pure picklable values and
cross process boundaries when campaigns are sharded (repro.parallel).

``TUNING_TESTS`` pins the Sec. 3 tuning pipeline to the paper's original
MP/LB/SB triple — the tuning tables and golden statistics are invariant
under registry growth.  ``ALL_TESTS`` is the full family.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from functools import cached_property

from .ir import (
    And,
    RegEq,
    LocEq,
    compile_condition,
    condition_locations,
    fence,
    format_condition,
    ld,
    st,
    validate_test,
)

_EMPTY_FINAL: dict = {}

Instruction = tuple
Program = tuple[Instruction, ...]


@dataclass(frozen=True)
class LitmusTest:
    """An N-thread litmus test with a declarative forbidden outcome."""

    name: str
    description: str
    threads: tuple[Program, ...]
    forbidden: object

    def __post_init__(self) -> None:
        validate_test(self)

    # Pickle only the declarative fields: the cached derived structure
    # (including the compiled predicate closure) is rebuilt on demand,
    # so tests stay pure data values across process boundaries.
    def __getstate__(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    # -- compatibility surface (the original two-thread shape) ---------
    @property
    def thread0(self) -> Program:
        return self.threads[0]

    @property
    def thread1(self) -> Program:
        return self.threads[1]

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    # -- derived structure ---------------------------------------------
    @cached_property
    def registers(self) -> tuple[str, ...]:
        """Registers written by loads/rmws, in program order."""
        regs = []
        for program in self.threads:
            for ins in program:
                if ins[0] in ("ld", "rmw"):
                    regs.append(ins[2])
        return tuple(regs)

    @cached_property
    def locations(self) -> tuple[str, ...]:
        """Locations in first-appearance order; index 0 is ``x`` (laid
        out at the base of the communication area), index ``i`` sits
        ``i * max(distance, 1)`` words above it (the paper's T_d
        layout, generalised to three or more locations)."""
        locs = []
        for program in self.threads:
            for ins in program:
                if ins[0] != "fence" and ins[1] not in locs:
                    locs.append(ins[1])
        return tuple(locs)

    @cached_property
    def condition_locations(self) -> tuple[str, ...]:
        """Locations whose final value the forbidden outcome queries."""
        return tuple(
            loc
            for loc in self.locations
            if loc in condition_locations(self.forbidden)
        )

    @cached_property
    def _predicate(self):
        return compile_condition(self.forbidden)

    def weak(self, regs: dict, final: dict | None = None) -> bool:
        """The forbidden-outcome predicate, compiled from the condition."""
        if final is None:
            if self.condition_locations:
                raise ValueError(
                    f"{self.name}'s condition references final location "
                    "values; pass the final memory valuation"
                )
            final = _EMPTY_FINAL
        return self._predicate(regs, final)

    def pretty(self) -> str:
        """One-line program + condition rendering for listings."""
        progs = " || ".join(
            "; ".join(
                ":".join(str(part) for part in ins) for ins in program
            )
            for program in self.threads
        )
        return f"{progs}  forbid({format_condition(self.forbidden)})"


# ----------------------------------------------------------------------
# the family
# ----------------------------------------------------------------------
MP = LitmusTest(
    name="MP",
    description=(
        "Message passing: T1 writes data x then flag y; T2 reads flag "
        "then data.  Weak: flag observed set but data stale."
    ),
    threads=(
        (st("x", 1), st("y", 1)),
        (ld("y", "r1"), ld("x", "r2")),
    ),
    forbidden=And(RegEq("r1", 1), RegEq("r2", 0)),
)

LB = LitmusTest(
    name="LB",
    description=(
        "Load buffering: each thread loads one location then stores the "
        "other.  Weak: both loads observe the other thread's store."
    ),
    threads=(
        (ld("x", "r1"), st("y", 1)),
        (ld("y", "r2"), st("x", 1)),
    ),
    forbidden=And(RegEq("r1", 1), RegEq("r2", 1)),
)

SB = LitmusTest(
    name="SB",
    description=(
        "Store buffering: each thread stores one location then loads the "
        "other.  Weak: both loads miss the other thread's store."
    ),
    threads=(
        (st("x", 1), ld("y", "r1")),
        (st("y", 1), ld("x", "r2")),
    ),
    forbidden=And(RegEq("r1", 0), RegEq("r2", 0)),
)

MP_F0 = LitmusTest(
    name="MP-F0",
    description=(
        "MP with a fence between the writer's data and flag stores; the "
        "read side stays unfenced, so stale reads remain possible."
    ),
    threads=(
        (st("x", 1), fence(), st("y", 1)),
        (ld("y", "r1"), ld("x", "r2")),
    ),
    forbidden=And(RegEq("r1", 1), RegEq("r2", 0)),
)

MP_F1 = LitmusTest(
    name="MP-F1",
    description=(
        "MP with a fence between the reader's flag and data loads; the "
        "write side stays unfenced, so write reordering remains possible."
    ),
    threads=(
        (st("x", 1), st("y", 1)),
        (ld("y", "r1"), fence(), ld("x", "r2")),
    ),
    forbidden=And(RegEq("r1", 1), RegEq("r2", 0)),
)

MP_FF = LitmusTest(
    name="MP-FF",
    description=(
        "MP fully fenced on both sides — the paper's repair; the weak "
        "outcome should vanish."
    ),
    threads=(
        (st("x", 1), fence(), st("y", 1)),
        (ld("y", "r1"), fence(), ld("x", "r2")),
    ),
    forbidden=And(RegEq("r1", 1), RegEq("r2", 0)),
)

LB_FF = LitmusTest(
    name="LB-FF",
    description="LB with a fence between each thread's load and store.",
    threads=(
        (ld("x", "r1"), fence(), st("y", 1)),
        (ld("y", "r2"), fence(), st("x", 1)),
    ),
    forbidden=And(RegEq("r1", 1), RegEq("r2", 1)),
)

SB_FF = LitmusTest(
    name="SB-FF",
    description="SB with a fence between each thread's store and load.",
    threads=(
        (st("x", 1), fence(), ld("y", "r1")),
        (st("y", 1), fence(), ld("x", "r2")),
    ),
    forbidden=And(RegEq("r1", 0), RegEq("r2", 0)),
)

CoRR = LitmusTest(
    name="CoRR",
    description=(
        "Coherence, read-read: two program-ordered loads of one location "
        "must not observe its writes out of order."
    ),
    threads=(
        (st("x", 1),),
        (ld("x", "r1"), ld("x", "r2")),
    ),
    forbidden=And(RegEq("r1", 1), RegEq("r2", 0)),
)

CoWW = LitmusTest(
    name="CoWW",
    description=(
        "Coherence, write-write: two program-ordered stores to one "
        "location must commit in order (the final value is the last)."
    ),
    threads=((st("x", 1), st("x", 2)),),
    forbidden=LocEq("x", 1),
)

R = LitmusTest(
    name="R",
    description=(
        "Store-order test R: writer stores x then y; rival stores y "
        "then reads x.  Weak: rival's y wins yet its read misses x."
    ),
    threads=(
        (st("x", 1), st("y", 1)),
        (st("y", 2), ld("x", "r1")),
    ),
    forbidden=And(LocEq("y", 2), RegEq("r1", 0)),
)

S = LitmusTest(
    name="S",
    description=(
        "Store-order test S: writer stores x=2 then flag y; rival reads "
        "the flag then stores x=1.  Weak: flag seen yet x=2 survives."
    ),
    threads=(
        (st("x", 2), st("y", 1)),
        (ld("y", "r1"), st("x", 1)),
    ),
    forbidden=And(LocEq("x", 2), RegEq("r1", 1)),
)

W2PLUS2 = LitmusTest(
    name="2+2W",
    description=(
        "Two threads each store both locations in opposite orders.  "
        "Weak: both locations retain the respective *first* store."
    ),
    threads=(
        (st("x", 1), st("y", 2)),
        (st("y", 1), st("x", 2)),
    ),
    forbidden=And(LocEq("x", 1), LocEq("y", 1)),
)

WRC = LitmusTest(
    name="WRC",
    description=(
        "Write-to-read causality (3 threads): T2 forwards T1's write via "
        "y; T3 sees the flag but misses the original write."
    ),
    threads=(
        (st("x", 1),),
        (ld("x", "r1"), st("y", 1)),
        (ld("y", "r2"), ld("x", "r3")),
    ),
    forbidden=And(RegEq("r1", 1), RegEq("r2", 1), RegEq("r3", 0)),
)

IRIW = LitmusTest(
    name="IRIW",
    description=(
        "Independent reads of independent writes (4 threads): two "
        "readers observe two unrelated writes in opposite orders."
    ),
    threads=(
        (st("x", 1),),
        (st("y", 1),),
        (ld("x", "r1"), ld("y", "r2")),
        (ld("y", "r3"), ld("x", "r4")),
    ),
    forbidden=And(
        RegEq("r1", 1), RegEq("r2", 0), RegEq("r3", 1), RegEq("r4", 0)
    ),
)

LB3 = LitmusTest(
    name="3.LB",
    description=(
        "Three-thread load buffering ring: each thread loads one "
        "location and stores the next.  Weak: all three loads observe "
        "the future."
    ),
    threads=(
        (ld("x", "r1"), st("y", 1)),
        (ld("y", "r2"), st("z", 1)),
        (ld("z", "r3"), st("x", 1)),
    ),
    forbidden=And(RegEq("r1", 1), RegEq("r2", 1), RegEq("r3", 1)),
)

#: The paper's original triple; the Sec. 3 tuning pipeline is pinned to
#: these (and only these) so its tables and golden statistics are
#: invariant under registry growth.
TUNING_TESTS = (MP, LB, SB)

#: The full registry, tuning triple first.
ALL_TESTS = (
    MP,
    LB,
    SB,
    MP_F0,
    MP_F1,
    MP_FF,
    LB_FF,
    SB_FF,
    CoRR,
    CoWW,
    R,
    S,
    W2PLUS2,
    WRC,
    IRIW,
    LB3,
)

#: Base test of each fenced variant (used by tests and reporting to
#: check that fences strictly reduce weak rates).
FENCED_VARIANTS = {
    "MP-F0": "MP",
    "MP-F1": "MP",
    "MP-FF": "MP",
    "LB-FF": "LB",
    "SB-FF": "SB",
}

_BY_NAME = {t.name.upper(): t for t in ALL_TESTS}

#: Separator punctuation that varies between shells, filters and papers
#: (``2+2W`` vs ``2.2W`` vs ``2-2W``); lookup treats them all alike.
_SEPARATORS = str.maketrans("", "", "+.-")


def _canon(name: str) -> str:
    """Case-folded name with separator punctuation removed."""
    return name.upper().translate(_SEPARATORS)


_BY_CANON: dict[str, LitmusTest] = {}
for _test in ALL_TESTS:
    _key = _canon(_test.name)
    if _key in _BY_CANON:
        raise AssertionError(
            f"litmus registry names {_BY_CANON[_key].name!r} and "
            f"{_test.name!r} collide under punctuation-insensitive lookup"
        )
    _BY_CANON[_key] = _test


def test_names() -> tuple[str, ...]:
    """Canonical registry names, in registry order."""
    return tuple(t.name for t in ALL_TESTS)


def get_test(name: str) -> LitmusTest:
    """Look up a registered test by name.

    Lookup is case-insensitive and tolerant of the separator
    punctuation the family names carry: ``2.2w``, ``2-2w`` and ``22w``
    all resolve to ``2+2W``, and ``3lb`` to ``3.LB``.
    """
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        pass
    try:
        return _BY_CANON[_canon(name)]
    except KeyError:
        raise ValueError(
            f"unknown litmus test {name!r}; choose from "
            f"{list(test_names())}"
        ) from None
