"""The MP, LB and SB litmus tests (paper Fig. 2).

A litmus test is two short thread programs over communication locations
``x`` and ``y`` plus a query over the final register state.  Instructions
are tuples:

* ``("st", loc, value)`` — store ``value`` to ``loc`` (``"x"`` or ``"y"``)
* ``("ld", loc, reg)`` — load ``loc`` into register ``reg``

The *weak* outcome is the register valuation forbidden under sequential
consistency but observable on machines with weak memory models.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

Instruction = tuple
Program = tuple[Instruction, ...]


@dataclass(frozen=True)
class LitmusTest:
    """A two-thread litmus test with a weak-outcome predicate."""

    name: str
    description: str
    thread0: Program
    thread1: Program
    weak: Callable[[dict[str, int]], bool]

    @property
    def registers(self) -> tuple[str, ...]:
        regs = []
        for program in (self.thread0, self.thread1):
            for ins in program:
                if ins[0] == "ld":
                    regs.append(ins[2])
        return tuple(regs)


# The weak predicates are module-level functions (not lambdas) so that
# tests pickle by reference and can cross process boundaries when litmus
# campaigns are sharded (see repro.parallel).
def _mp_weak(regs: dict[str, int]) -> bool:
    return regs["r1"] == 1 and regs["r2"] == 0


def _lb_weak(regs: dict[str, int]) -> bool:
    return regs["r1"] == 1 and regs["r2"] == 1


def _sb_weak(regs: dict[str, int]) -> bool:
    return regs["r1"] == 0 and regs["r2"] == 0


MP = LitmusTest(
    name="MP",
    description=(
        "Message passing: T1 writes data x then flag y; T2 reads flag "
        "then data.  Weak: flag observed set but data stale."
    ),
    thread0=(("st", "x", 1), ("st", "y", 1)),
    thread1=(("ld", "y", "r1"), ("ld", "x", "r2")),
    weak=_mp_weak,
)

LB = LitmusTest(
    name="LB",
    description=(
        "Load buffering: each thread loads one location then stores the "
        "other.  Weak: both loads observe the other thread's store."
    ),
    thread0=(("ld", "x", "r1"), ("st", "y", 1)),
    thread1=(("ld", "y", "r2"), ("st", "x", 1)),
    weak=_lb_weak,
)

SB = LitmusTest(
    name="SB",
    description=(
        "Store buffering: each thread stores one location then loads the "
        "other.  Weak: both loads miss the other thread's store."
    ),
    thread0=(("st", "x", 1), ("ld", "y", "r1")),
    thread1=(("st", "y", 1), ("ld", "x", "r2")),
    weak=_sb_weak,
)

ALL_TESTS = (MP, LB, SB)

_BY_NAME = {t.name: t for t in ALL_TESTS}


def get_test(name: str) -> LitmusTest:
    """Look up MP, LB or SB by name."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown litmus test {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
