"""Fast litmus-test runner (the *direct* execution backend).

Litmus tests are a handful of scripted threads of a few memory
operations each, so they bypass the full SIMT engine and drive the
:class:`~repro.gpu.memory.MemorySystem` directly — the memory semantics
(and hence the observable weak behaviours) are identical, but millions
of executions become feasible, which the tuning pipeline needs (the
paper ran nearly half a billion).  The same IR also lowers onto the
engine (:mod:`repro.litmus.compile`); the two backends are compared by
the cross-backend parity tests.

Loads use the deferred issue/resolve API: a litmus test only inspects
its registers after the run, exactly like the paper's generated CUDA
tests, which is what allows LB-shaped reordering to be observed.
Fences map to the memory system's ``fence_begin``/``fence_done``
priority-drain protocol (the same calls the engine's fence op makes),
and ``rmw`` goes through the atomic pipeline.

The N threads are placed on N distinct SMs (the paper configures the
communicating threads in distinct blocks); chips model at least 8 SMs,
comfortably above the 4-thread idioms (IRIW).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import NamedTuple

from ..chips.profile import HardwareProfile
from ..gpu.addresses import AddressSpace
from ..gpu.events import STALL
from ..gpu.memory import MemorySystem
from ..gpu.pressure import StressField
from ..parallel import (
    LitmusShard,
    ParallelConfig,
    merge_litmus_shards,
    parallel_map,
    resolve_config,
    shard_ranges,
)
from ..rng import BufferedRNG, derive_seed, make_rng
from .results import LitmusResult
from .tests import LitmusTest

#: Word span reserved for the communication locations.
_COMM_SPAN = 512
#: Per-scheduling-slot probability that a thread issues its next op.
_EXEC_P = 0.7
#: Tick budgets for the issue and drain phases of one round.
_ISSUE_TICKS = 400
_DRAIN_TICKS = 400
#: Maximum random start stagger between the threads, in ticks.
_MAX_START_DELAY = 24
#: Litmus rounds per execution.  A real GPU litmus kernel launch tests
#: many independent instances at once; an execution is counted weak when
#: any of its rounds exhibits the weak outcome.
_ROUNDS = 8


@dataclass(frozen=True)
class LitmusInstance:
    """A litmus test at a concrete distance, as laid out in memory.

    Location 0 (``x``) sits at the base of the communication area;
    location ``i`` sits ``i * max(distance, 1)`` words above it
    (distance 0 means contiguous locations, per the paper's T_d
    notation, generalised to tests with three or more locations).
    """

    test: LitmusTest
    distance: int
    comm_base: int
    scratch_base: int
    scratch_size: int

    @classmethod
    def layout(
        cls,
        profile: HardwareProfile,
        test: LitmusTest,
        distance: int,
        scratch_size: int = 4096,
    ) -> "LitmusInstance":
        """Allocate the communication area and the stressing scratchpad.

        The scratchpad is aligned to a full channel period so scratchpad
        offset ``l`` always lands in channel ``profile.channel(l)`` —
        mirroring the stable (but uncontrollable) physical layout on real
        hardware.
        """
        if distance < 0:
            raise ValueError("distance must be non-negative")
        period = profile.patch_size * profile.n_channels
        space = AddressSpace()
        span = (len(test.locations) - 1) * max(distance, 1) + 2
        comm = space.alloc("comm", max(_COMM_SPAN, span), align=period)
        scratch = space.alloc("scratch", scratch_size, align=period)
        return cls(
            test=test,
            distance=distance,
            comm_base=comm.base,
            scratch_base=scratch.base,
            scratch_size=scratch.size,
        )

    @property
    def x_addr(self) -> int:
        return self.comm_base

    @property
    def y_addr(self) -> int:
        return self.comm_base + max(self.distance, 1)

    def addr(self, loc: str) -> int:
        """Address of location ``loc`` under this instance's layout."""
        index = self.test.locations.index(loc)
        return self.comm_base + index * max(self.distance, 1)

    def loc_addrs(self) -> tuple[int, ...]:
        """Addresses of every location, in ``test.locations`` order."""
        step = max(self.distance, 1)
        return tuple(
            self.comm_base + i * step
            for i in range(len(self.test.locations))
        )


def _resolved_programs(instance: LitmusInstance) -> tuple[tuple, ...]:
    """The thread programs with location names resolved to addresses.

    Called once per (cached) round plan, so the per-operation
    ``instance.addr`` lookups of the original inner loop are paid once
    per instance instead of once per issued operation.
    """

    def resolve(program):
        out = []
        for ins in program:
            kind = ins[0]
            if kind == "st":
                out.append(("st", instance.addr(ins[1]), ins[2]))
            elif kind == "ld":
                out.append(("ld", instance.addr(ins[1]), ins[2]))
            elif kind == "rmw":
                out.append(("rmw", instance.addr(ins[1]), ins[2], ins[3]))
            else:  # fence — no address operand
                out.append(ins)
        return tuple(out)

    return tuple(resolve(program) for program in instance.test.threads)


def _exch(value):
    """The atomic-exchange update function for an rmw instruction."""
    return lambda _cur: value


def _is_two_thread_ldst(programs: tuple[tuple, ...]) -> bool:
    """True for the plain two-thread ld/st shape (MP/LB/SB, R, S, 2+2W
    and kin) — the tuning pipeline's hot workload, served by the
    unrolled fast path."""
    return len(programs) == 2 and all(
        ins[0] == "st" or ins[0] == "ld"
        for program in programs
        for ins in program
    )


class _RoundPlan(NamedTuple):
    """Everything a round needs, precomputed once per instance:
    address-resolved programs, location addresses, the final-value
    queries of the condition, the compiled forbidden-outcome predicate
    and the fast-path eligibility flag."""

    programs: tuple
    addrs: tuple
    final_locs: tuple  # ((location name, address), ...)
    pred: object  # f(regs, final) -> bool
    fast2: bool


_EMPTY_FINAL: dict = {}


@lru_cache(maxsize=4096)
def _round_plan(instance: LitmusInstance) -> _RoundPlan:
    programs = _resolved_programs(instance)
    addrs = instance.loc_addrs()
    test = instance.test
    loc_index = test.locations.index
    final_locs = tuple(
        (loc, addrs[loc_index(loc)]) for loc in test.condition_locations
    )
    return _RoundPlan(
        programs=programs,
        addrs=addrs,
        final_locs=final_locs,
        pred=test._predicate,
        fast2=_is_two_thread_ldst(programs),
    )


def _finish_round(plan: _RoundPlan, mem, regs, names, handles) -> bool:
    """Collect registers (and final locations, if the condition needs
    them) and evaluate the compiled forbidden-outcome predicate."""
    for name, handle in zip(names, handles):
        regs[name] = handle.value
    final = _EMPTY_FINAL
    if plan.final_locs:
        get = mem.mem.get
        final = {loc: get(addr, 0) for loc, addr in plan.final_locs}
    return bool(plan.pred(regs, final))


def _one_round_ldst2(
    plan: _RoundPlan,
    mem: MemorySystem,
    sms,
    exec_p,
    rng,
) -> bool:
    """Unrolled two-thread ld/st round — the seed repo's hot loop.

    Draw-for-draw identical to the general :func:`_one_round` on this
    program shape (two start-delay draws, then per-tick gates in thread
    order, then the inlined memory step); kept unrolled because the
    tuning pipeline runs this shape hundreds of millions of times (see
    ``benchmarks/bench_throughput.py``).
    """
    mset = mem.mem
    for a in plan.addrs:
        mset[a] = 0
    prog0, prog1 = plan.programs
    n0 = len(prog0)
    n1 = len(prog1)
    sm0, sm1 = sms
    p0, p1 = exec_p

    delay0 = rng._lemire32(_MAX_START_DELAY)
    delay1 = rng._lemire32(_MAX_START_DELAY)
    pc0 = 0
    pc1 = 0
    names: list[str] = []
    handles: list = []
    write = mem.write
    issue = mem.issue_load
    start_tick = delay0 if delay0 < delay1 else delay1
    if start_tick:
        mem.tick += start_tick
    for tick in range(start_tick, _ISSUE_TICKS):
        if pc0 >= n0 and pc1 >= n1:
            break
        if pc0 < n0 and tick >= delay0:
            i = rng._i
            if i < rng._n:
                rng._i = i + 1
                roll = rng._dbuf[i]
            else:
                roll = rng.random()
            if roll < p0:
                ins = prog0[pc0]
                if ins[0] == "st":
                    if write(sm0, 0, ins[1], ins[2]):
                        pc0 += 1
                else:  # ld
                    names.append(ins[2])
                    handles.append(issue(sm0, 0, ins[1]))
                    pc0 += 1
        if pc1 < n1 and tick >= delay1:
            i = rng._i
            if i < rng._n:
                rng._i = i + 1
                roll = rng._dbuf[i]
            else:
                roll = rng.random()
            if roll < p1:
                ins = prog1[pc1]
                if ins[0] == "st":
                    if write(sm1, 1, ins[1], ins[2]):
                        pc1 += 1
                else:  # ld
                    names.append(ins[2])
                    handles.append(issue(sm1, 1, ins[1]))
                    pc1 += 1
        # mem.step(), inlined, with the single-SM fast path of
        # MemorySystem._step_buffers (keep the three copies in sync:
        # here, _step_buffers, and MemorySystem.drain_until).
        mem.tick += 1
        if mem._deferred:
            mem._step_deferred()
        if mem._n_buffered:
            nonempty = mem._nonempty
            if len(nonempty) == 1:
                for sm in nonempty:
                    break
                mem._step_buffer(sm, mem.sm_buffers[sm])
            else:
                mem._step_buffers()

    mem.drain_until(handles, _DRAIN_TICKS)
    mem.flush_all()
    return _finish_round(plan, mem, {}, names, handles)


def _one_round(
    plan: _RoundPlan,
    mem: MemorySystem,
    sms,
    exec_p,
    rng,
) -> bool:
    """Run one litmus round; returns True on the forbidden outcome.

    The general N-thread interpreter: handles any thread count and the
    full instruction set (``st``/``ld``/``fence``/``rmw``).  It consumes
    the random stream in the same order as the unrolled fast path on
    two-thread ld/st programs — one start-delay draw per thread, then
    per-tick exec-gate rolls in thread order, then the inlined
    memory-system step (``rng`` must be a
    :class:`~repro.rng.BufferedRNG`; see the golden-statistics tests).
    """
    mset = mem.mem
    for a in plan.addrs:
        mset[a] = 0
    programs = plan.programs
    n_threads = len(programs)
    lens = [len(p) for p in programs]
    pcs = [0] * n_threads
    fencing = [False] * n_threads
    op_states: list[dict] = [{} for _ in range(n_threads)]
    regs: dict = {}
    names: list[str] = []
    handles: list = []
    write = mem.write
    issue = mem.issue_load

    # Random start stagger: on hardware the threads rarely hit their
    # critical instructions at the same instant; the stagger is what
    # lets one thread's reads land inside another's reorder window.
    # (Bounded draws straight off the pre-draw block consume the bit
    # stream identically to the original ``integers(0, d, size=n)`` —
    # numpy's bounded generation is per-element either way.)
    delays = [rng._lemire32(_MAX_START_DELAY) for _ in range(n_threads)]
    remaining = n_threads
    # Until the earliest thread's delay expires nothing can issue, no
    # probability is rolled, and the (empty) memory system's step only
    # advances its clock — so jump straight there.
    start_tick = min(delays)
    if start_tick:
        mem.tick += start_tick
    for tick in range(start_tick, _ISSUE_TICKS):
        if not remaining:
            break
        for t in range(n_threads):
            pc = pcs[t]
            if pc >= lens[t] or tick < delays[t]:
                continue
            i = rng._i
            if i < rng._n:
                rng._i = i + 1
                roll = rng._dbuf[i]
            else:
                roll = rng.random()
            if roll >= exec_p[t]:
                continue
            ins = programs[t][pc]
            kind = ins[0]
            if kind == "st":
                if write(sms[t], t, ins[1], ins[2]):
                    pcs[t] = pc + 1
            elif kind == "ld":
                names.append(ins[2])
                handles.append(issue(sms[t], t, ins[1]))
                pcs[t] = pc + 1
            elif kind == "fence":
                if not fencing[t]:
                    mem.fence_begin(t)
                    fencing[t] = True
                if mem.fence_done(sms[t], t):
                    fencing[t] = False
                    pcs[t] = pc + 1
            else:  # rmw — atomic exchange through the atomic pipeline
                state = op_states[t]
                old = mem.rmw(sms[t], t, ins[1], _exch(ins[3]), state)
                if old is not STALL:
                    regs[ins[2]] = old
                    state.clear()
                    pcs[t] = pc + 1
            if pcs[t] >= lens[t]:
                remaining -= 1
        # The general interpreter serves fenced/rmw/N-thread tests, not
        # the tuning hot loop, so it calls the real step rather than
        # adding another hand-inlined copy (cf. _one_round_ldst2).
        mem.step()

    mem.drain_until(handles, _DRAIN_TICKS)
    mem.flush_all()
    # A fence still open when the issue window closed is satisfied by
    # the full drain; retire it so the fencing set does not leak into
    # the next round on the reused memory system.
    for t in range(n_threads):
        if fencing[t]:
            mem.fence_done(sms[t], t)

    return _finish_round(plan, mem, regs, names, handles)


def _one_execution(
    profile: HardwareProfile,
    instance: LitmusInstance,
    field: StressField,
    rng,
    randomise: bool,
    rounds: int = _ROUNDS,
    mem: MemorySystem | None = None,
    plan: _RoundPlan | None = None,
) -> bool:
    """Run one execution (a batch of rounds, like one kernel launch).

    Pass ``mem`` (already reset for this execution's field and rng) to
    reuse one :class:`MemorySystem` across a whole execution batch.
    """
    if mem is None:
        mem = MemorySystem(profile, field, rng)
    if plan is None:
        plan = _round_plan(instance)
    n_threads = len(plan.programs)
    sms = tuple(range(n_threads))
    if randomise and rng.random() < 0.5:
        sms = sms[::-1]
    if randomise:
        exec_p = tuple(
            rng.uniform(0.35, 0.95) for _ in range(n_threads)
        )
    else:
        exec_p = (_EXEC_P,) * n_threads
    round_fn = _one_round_ldst2 if plan.fast2 else _one_round
    for _ in range(rounds):
        if round_fn(plan, mem, sms, exec_p, rng):
            return True
    return False


def _litmus_span(
    profile: HardwareProfile,
    instance: LitmusInstance,
    stress_spec,
    seed: int,
    randomise: bool,
    start: int,
    stop: int,
) -> int:
    """Weak-behaviour count over executions ``[start, stop)``.

    Each execution draws from its own seed stream, derived from the
    experiment seed and the execution's *global* index — never from
    shard-local state — so any partition of the execution range yields
    the same statistics (the repro.parallel determinism contract).

    The generator is wrapped in :class:`~repro.rng.BufferedRNG` (block
    pre-draws of the identical stream) and one :class:`MemorySystem` is
    reset per execution instead of reallocated — both invisible to the
    statistics.
    """
    weak = 0
    mem: MemorySystem | None = None
    scratch_base = instance.scratch_base
    scratch_size = instance.scratch_size
    plan = _round_plan(instance)
    build = stress_spec.build
    # derive_seed is a left fold over the labels, so hoisting the
    # loop-invariant prefix yields the identical per-execution seed.
    span_seed = derive_seed(
        seed, profile.short_name, instance.test.name, instance.distance
    )
    for i in range(start, stop):
        rng = BufferedRNG(make_rng(span_seed, i))
        field = build(profile, scratch_base, scratch_size, rng)
        if mem is None:
            mem = MemorySystem(profile, field, rng)
        else:
            mem.reset(stress=field, rng=rng)
        if _one_execution(
            profile, instance, field, rng, randomise,
            mem=mem, plan=plan,
        ):
            weak += 1
    return weak


class OutcomeObservation(NamedTuple):
    """Every distinct final state a backend produced, with counts.

    ``outcomes`` maps ``(sorted register items, sorted final-value items
    over program-written locations)`` — the state-key shape of
    :func:`repro.litmus.sc.sc_outcomes` and the axiomatic model — to the
    number of rounds that ended in that state.  ``weak`` counts the
    executions with at least one forbidden round (equal to
    ``run_litmus(...).weak`` at the same seed: the collector runs the
    rounds an early-exit would skip, but each execution draws from its
    own seed stream, so later executions are unaffected).
    ``incomplete`` counts dropped rounds whose loads did not all resolve
    within the tick budget — the soundness gate asserts it stays 0."""

    outcomes: dict
    weak: int
    incomplete: int


def written_locs(test: LitmusTest) -> tuple:
    """Locations the program writes (``st``/``rmw``), in first-use
    order — the locations whose final value the oracles track."""
    return tuple(dict.fromkeys(
        ins[1]
        for program in test.threads
        for ins in program
        if ins[0] in ("st", "rmw")
    ))


def observed_outcomes(
    profile: HardwareProfile,
    test: LitmusTest,
    distance: int,
    stress_spec,
    executions: int,
    seed: int = 0,
    randomise: bool = False,
    rounds: int = _ROUNDS,
) -> OutcomeObservation:
    """Run the direct backend and record *every* round's final state.

    Identical draw-for-draw to :func:`run_litmus` (same span seeding,
    same stress fields, same round functions) except that no execution
    exits early on a weak round; the recording happens inside an
    injected round-plan predicate, so the simulation path is untouched.
    Used by the simulator-soundness gate to check observed states
    against the axiomatic model.
    """
    if test.n_threads > profile.n_sms:
        raise ValueError(
            f"{test.name} needs {test.n_threads} SMs; "
            f"{profile.short_name} models {profile.n_sms}"
        )
    instance = LitmusInstance.layout(profile, test, distance)
    base = _round_plan(instance)
    addrs = instance.loc_addrs()
    loc_index = test.locations.index
    written = written_locs(test)
    # Observe the final value of every written location (the oracle
    # state) plus whatever the condition itself reads.
    obs_locs = {loc: addrs[loc_index(loc)] for loc in written}
    for loc, addr in base.final_locs:
        obs_locs.setdefault(loc, addr)
    n_regs = len(test.registers)
    written_set = frozenset(written)
    real_pred = base.pred
    outcomes: dict = {}
    incomplete = 0

    def record(regs, final):
        nonlocal incomplete
        if len(regs) == n_regs:
            key = (
                tuple(sorted(regs.items())),
                tuple(sorted(
                    (loc, v) for loc, v in final.items()
                    if loc in written_set
                )),
            )
            outcomes[key] = outcomes.get(key, 0) + 1
        else:
            incomplete += 1
        return bool(real_pred(regs, final))

    plan = base._replace(final_locs=tuple(obs_locs.items()), pred=record)
    n_threads = len(plan.programs)
    round_fn = _one_round_ldst2 if plan.fast2 else _one_round
    span_seed = derive_seed(
        seed, profile.short_name, test.name, distance
    )
    mem: MemorySystem | None = None
    weak = 0
    for i in range(executions):
        rng = BufferedRNG(make_rng(span_seed, i))
        field = stress_spec.build(
            profile, instance.scratch_base, instance.scratch_size, rng
        )
        if mem is None:
            mem = MemorySystem(profile, field, rng)
        else:
            mem.reset(stress=field, rng=rng)
        sms = tuple(range(n_threads))
        if randomise and rng.random() < 0.5:
            sms = sms[::-1]
        if randomise:
            exec_p = tuple(
                rng.uniform(0.35, 0.95) for _ in range(n_threads)
            )
        else:
            exec_p = (_EXEC_P,) * n_threads
        hit = False
        for _ in range(rounds):
            if round_fn(plan, mem, sms, exec_p, rng):
                hit = True
        if hit:
            weak += 1
    return OutcomeObservation(outcomes, weak, incomplete)


def _litmus_shard(args: tuple) -> LitmusShard:
    """Process-pool worker: one execution shard of one litmus instance."""
    profile, instance, stress_spec, seed, randomise, start, stop = args
    weak = _litmus_span(
        profile, instance, stress_spec, seed, randomise, start, stop
    )
    return LitmusShard(start=start, stop=stop, weak=weak)


def run_litmus(
    profile: HardwareProfile,
    test: LitmusTest,
    distance: int,
    stress_spec,
    executions: int,
    seed: int = 0,
    randomise: bool = False,
    parallel: ParallelConfig | None = None,
) -> LitmusResult:
    """Run ``executions`` runs of test instance ``T_distance``.

    ``stress_spec`` must provide
    ``build(profile, scratch_base, scratch_size, rng) -> StressField``
    (see :mod:`repro.stress.strategies`); it is re-invoked per execution
    so that randomised choices (stressing thread count, random spread
    locations) vary between runs as in the paper.

    ``parallel`` shards the execution batch across worker processes;
    serial and parallel runs produce identical results because every
    execution is seeded from its global index.
    """
    config = resolve_config(parallel)
    if test.n_threads > profile.n_sms:
        raise ValueError(
            f"{test.name} needs {test.n_threads} SMs; "
            f"{profile.short_name} models {profile.n_sms}"
        )
    instance = LitmusInstance.layout(profile, test, distance)
    if config.serial:
        weak = _litmus_span(
            profile, instance, stress_spec, seed, randomise, 0, executions
        )
    else:
        shards = parallel_map(
            _litmus_shard,
            [
                (profile, instance, stress_spec, seed, randomise, start, stop)
                for start, stop in shard_ranges(executions, config)
            ],
            config,
        )
        weak = merge_litmus_shards(shards, executions)
    locations = tuple(getattr(stress_spec, "locations", ()) or ())
    return LitmusResult(
        test=test.name,
        distance=distance,
        weak=weak,
        executions=executions,
        location=locations,
    )
