"""Fast litmus-test runner.

Litmus tests are two scripted threads of a handful of memory operations,
so they bypass the full SIMT engine and drive the
:class:`~repro.gpu.memory.MemorySystem` directly — the memory semantics
(and hence the observable weak behaviours) are identical, but millions of
executions become feasible, which the tuning pipeline needs (the paper
ran nearly half a billion).

Loads use the deferred issue/resolve API: a litmus test only inspects its
registers after the run, exactly like the paper's generated CUDA tests,
which is what allows LB-shaped reordering to be observed.

The two threads are placed on distinct SMs (the paper configures the
communicating threads in distinct blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chips.profile import HardwareProfile
from ..gpu.addresses import AddressSpace
from ..gpu.memory import MemorySystem
from ..gpu.pressure import StressField
from ..parallel import (
    LitmusShard,
    ParallelConfig,
    merge_litmus_shards,
    parallel_map,
    resolve_config,
    shard_ranges,
)
from ..rng import make_rng
from .results import LitmusResult
from .tests import LitmusTest

#: Word span reserved for the communication locations.
_COMM_SPAN = 512
#: Per-scheduling-slot probability that a thread issues its next op.
_EXEC_P = 0.7
#: Tick budgets for the issue and drain phases of one round.
_ISSUE_TICKS = 400
_DRAIN_TICKS = 400
#: Maximum random start stagger between the two threads, in ticks.
_MAX_START_DELAY = 24
#: Litmus rounds per execution.  A real GPU litmus kernel launch tests
#: many independent instances at once; an execution is counted weak when
#: any of its rounds exhibits the weak outcome.
_ROUNDS = 8


@dataclass(frozen=True)
class LitmusInstance:
    """A litmus test at a concrete distance, as laid out in memory.

    ``x`` sits at the base of the communication area; ``y`` sits
    ``max(distance, 1)`` words above it (distance 0 means contiguous
    locations, per the paper's T_d notation).
    """

    test: LitmusTest
    distance: int
    x_addr: int
    y_addr: int
    scratch_base: int
    scratch_size: int

    @classmethod
    def layout(
        cls,
        profile: HardwareProfile,
        test: LitmusTest,
        distance: int,
        scratch_size: int = 4096,
    ) -> "LitmusInstance":
        """Allocate the communication area and the stressing scratchpad.

        The scratchpad is aligned to a full channel period so scratchpad
        offset ``l`` always lands in channel ``profile.channel(l)`` —
        mirroring the stable (but uncontrollable) physical layout on real
        hardware.
        """
        if distance < 0:
            raise ValueError("distance must be non-negative")
        period = profile.patch_size * profile.n_channels
        space = AddressSpace()
        comm = space.alloc("comm", max(_COMM_SPAN, distance + 2), align=period)
        scratch = space.alloc("scratch", scratch_size, align=period)
        return cls(
            test=test,
            distance=distance,
            x_addr=comm.base,
            y_addr=comm.base + max(distance, 1),
            scratch_base=scratch.base,
            scratch_size=scratch.size,
        )

    def addr(self, loc: str) -> int:
        return self.x_addr if loc == "x" else self.y_addr


def _one_round(
    instance: LitmusInstance,
    mem: MemorySystem,
    sms: list[int],
    exec_p: tuple[float, float],
    rng: np.random.Generator,
) -> bool:
    """Run one litmus round; returns True on the weak outcome."""
    mem.mem[instance.x_addr] = 0
    mem.mem[instance.y_addr] = 0
    programs = (instance.test.thread0, instance.test.thread1)

    # Random start stagger: on hardware the two threads rarely hit their
    # critical instructions at the same instant; the stagger is what
    # lets one thread's reads land inside the other's reorder window.
    delays = rng.integers(0, _MAX_START_DELAY, size=2)
    pcs = [0, 0]
    handles: dict[str, object] = {}
    for tick in range(_ISSUE_TICKS):
        if pcs[0] >= len(programs[0]) and pcs[1] >= len(programs[1]):
            break
        for t in (0, 1):
            program = programs[t]
            if pcs[t] >= len(program):
                continue
            if tick < delays[t]:
                continue
            if rng.random() >= exec_p[t]:
                continue
            ins = program[pcs[t]]
            if ins[0] == "st":
                if mem.write(sms[t], t, instance.addr(ins[1]), ins[2]):
                    pcs[t] += 1
            else:  # ld
                handles[ins[2]] = mem.issue_load(
                    sms[t], t, instance.addr(ins[1])
                )
                pcs[t] += 1
        mem.step()

    for _ in range(_DRAIN_TICKS):
        if mem.pending_stores() == 0 and all(
            h.resolved for h in handles.values()
        ):
            break
        mem.step()
    mem.flush_all()

    regs = {name: handle.value for name, handle in handles.items()}
    return bool(instance.test.weak(regs))


def _one_execution(
    profile: HardwareProfile,
    instance: LitmusInstance,
    field: StressField,
    rng: np.random.Generator,
    randomise: bool,
    rounds: int = _ROUNDS,
) -> bool:
    """Run one execution (a batch of rounds, like one kernel launch)."""
    mem = MemorySystem(profile, field, rng)
    sms = [0, 1]
    if randomise and rng.random() < 0.5:
        sms = [1, 0]
    if randomise:
        exec_p = (rng.uniform(0.35, 0.95), rng.uniform(0.35, 0.95))
    else:
        exec_p = (_EXEC_P, _EXEC_P)
    return any(
        _one_round(instance, mem, sms, exec_p, rng) for _ in range(rounds)
    )


def _litmus_span(
    profile: HardwareProfile,
    instance: LitmusInstance,
    stress_spec,
    seed: int,
    randomise: bool,
    start: int,
    stop: int,
) -> int:
    """Weak-behaviour count over executions ``[start, stop)``.

    Each execution draws from its own seed stream, derived from the
    experiment seed and the execution's *global* index — never from
    shard-local state — so any partition of the execution range yields
    the same statistics (the repro.parallel determinism contract).
    """
    weak = 0
    for i in range(start, stop):
        rng = make_rng(
            seed, profile.short_name, instance.test.name, instance.distance, i
        )
        field = stress_spec.build(
            profile, instance.scratch_base, instance.scratch_size, rng
        )
        if _one_execution(profile, instance, field, rng, randomise):
            weak += 1
    return weak


def _litmus_shard(args: tuple) -> LitmusShard:
    """Process-pool worker: one execution shard of one litmus instance."""
    profile, instance, stress_spec, seed, randomise, start, stop = args
    weak = _litmus_span(
        profile, instance, stress_spec, seed, randomise, start, stop
    )
    return LitmusShard(start=start, stop=stop, weak=weak)


def run_litmus(
    profile: HardwareProfile,
    test: LitmusTest,
    distance: int,
    stress_spec,
    executions: int,
    seed: int = 0,
    randomise: bool = False,
    parallel: ParallelConfig | None = None,
) -> LitmusResult:
    """Run ``executions`` runs of test instance ``T_distance``.

    ``stress_spec`` must provide
    ``build(profile, scratch_base, scratch_size, rng) -> StressField``
    (see :mod:`repro.stress.strategies`); it is re-invoked per execution
    so that randomised choices (stressing thread count, random spread
    locations) vary between runs as in the paper.

    ``parallel`` shards the execution batch across worker processes;
    serial and parallel runs produce identical results because every
    execution is seeded from its global index.
    """
    config = resolve_config(parallel)
    instance = LitmusInstance.layout(profile, test, distance)
    if config.serial:
        weak = _litmus_span(
            profile, instance, stress_spec, seed, randomise, 0, executions
        )
    else:
        shards = parallel_map(
            _litmus_shard,
            [
                (profile, instance, stress_spec, seed, randomise, start, stop)
                for start, stop in shard_ranges(executions, config)
            ],
            config,
        )
        weak = merge_litmus_shards(shards, executions)
    locations = tuple(getattr(stress_spec, "locations", ()) or ())
    return LitmusResult(
        test=test.name,
        distance=distance,
        weak=weak,
        executions=executions,
        location=locations,
    )
