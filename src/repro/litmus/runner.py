"""Fast litmus-test runner.

Litmus tests are two scripted threads of a handful of memory operations,
so they bypass the full SIMT engine and drive the
:class:`~repro.gpu.memory.MemorySystem` directly — the memory semantics
(and hence the observable weak behaviours) are identical, but millions of
executions become feasible, which the tuning pipeline needs (the paper
ran nearly half a billion).

Loads use the deferred issue/resolve API: a litmus test only inspects its
registers after the run, exactly like the paper's generated CUDA tests,
which is what allows LB-shaped reordering to be observed.

The two threads are placed on distinct SMs (the paper configures the
communicating threads in distinct blocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..chips.profile import HardwareProfile
from ..gpu.addresses import AddressSpace
from ..gpu.memory import MemorySystem
from ..gpu.pressure import StressField
from ..parallel import (
    LitmusShard,
    ParallelConfig,
    merge_litmus_shards,
    parallel_map,
    resolve_config,
    shard_ranges,
)
from ..rng import BufferedRNG, derive_seed, make_rng
from .results import LitmusResult
from .tests import LitmusTest

#: Word span reserved for the communication locations.
_COMM_SPAN = 512
#: Per-scheduling-slot probability that a thread issues its next op.
_EXEC_P = 0.7
#: Tick budgets for the issue and drain phases of one round.
_ISSUE_TICKS = 400
_DRAIN_TICKS = 400
#: Maximum random start stagger between the two threads, in ticks.
_MAX_START_DELAY = 24
#: Litmus rounds per execution.  A real GPU litmus kernel launch tests
#: many independent instances at once; an execution is counted weak when
#: any of its rounds exhibits the weak outcome.
_ROUNDS = 8


@dataclass(frozen=True)
class LitmusInstance:
    """A litmus test at a concrete distance, as laid out in memory.

    ``x`` sits at the base of the communication area; ``y`` sits
    ``max(distance, 1)`` words above it (distance 0 means contiguous
    locations, per the paper's T_d notation).
    """

    test: LitmusTest
    distance: int
    x_addr: int
    y_addr: int
    scratch_base: int
    scratch_size: int

    @classmethod
    def layout(
        cls,
        profile: HardwareProfile,
        test: LitmusTest,
        distance: int,
        scratch_size: int = 4096,
    ) -> "LitmusInstance":
        """Allocate the communication area and the stressing scratchpad.

        The scratchpad is aligned to a full channel period so scratchpad
        offset ``l`` always lands in channel ``profile.channel(l)`` —
        mirroring the stable (but uncontrollable) physical layout on real
        hardware.
        """
        if distance < 0:
            raise ValueError("distance must be non-negative")
        period = profile.patch_size * profile.n_channels
        space = AddressSpace()
        comm = space.alloc("comm", max(_COMM_SPAN, distance + 2), align=period)
        scratch = space.alloc("scratch", scratch_size, align=period)
        return cls(
            test=test,
            distance=distance,
            x_addr=comm.base,
            y_addr=comm.base + max(distance, 1),
            scratch_base=scratch.base,
            scratch_size=scratch.size,
        )

    def addr(self, loc: str) -> int:
        return self.x_addr if loc == "x" else self.y_addr


@lru_cache(maxsize=4096)
def _resolved_programs(instance: LitmusInstance) -> tuple[tuple, tuple]:
    """The two thread programs with ``x``/``y`` resolved to addresses.

    The instance is immutable, so the per-operation ``instance.addr``
    lookups of the original inner loop are paid once per instance
    instead of once per issued operation.
    """

    def resolve(program):
        return tuple(
            ("st", instance.addr(ins[1]), ins[2])
            if ins[0] == "st"
            else ("ld", instance.addr(ins[1]), ins[2])
            for ins in program
        )

    return resolve(instance.test.thread0), resolve(instance.test.thread1)


def _one_round(
    instance: LitmusInstance,
    mem: MemorySystem,
    sms,
    exec_p: tuple[float, float],
    rng,
    programs: tuple[tuple, tuple] | None = None,
) -> bool:
    """Run one litmus round; returns True on the weak outcome.

    The loop body is the hottest code in the repository: threads are
    unrolled, the memory-system step is inlined, and the exec-gate
    rolls are taken straight from the BufferedRNG pre-draw block
    (``rng`` must be a :class:`~repro.rng.BufferedRNG`).  It consumes
    the random stream in exactly the original order: thread-0 gate (and
    operation), thread-1 gate (and operation), then the memory-system
    step — see the golden-statistics tests.
    """
    mem.mem[instance.x_addr] = 0
    mem.mem[instance.y_addr] = 0
    if programs is None:
        programs = _resolved_programs(instance)
    prog0, prog1 = programs
    n0 = len(prog0)
    n1 = len(prog1)
    sm0, sm1 = sms
    p0, p1 = exec_p

    # Random start stagger: on hardware the two threads rarely hit their
    # critical instructions at the same instant; the stagger is what
    # lets one thread's reads land inside the other's reorder window.
    # (Two bounded draws straight off the pre-draw block consume the
    # bit stream identically to the original ``integers(0, d, size=2)``
    # — numpy's bounded generation is per-element either way.)
    delay0 = rng._lemire32(_MAX_START_DELAY)
    delay1 = rng._lemire32(_MAX_START_DELAY)
    pc0 = 0
    pc1 = 0
    names: list[str] = []
    handles: list = []
    write = mem.write
    issue = mem.issue_load
    # Until the earlier thread's delay expires nothing can issue, no
    # probability is rolled, and the (empty) memory system's step only
    # advances its clock — so jump straight there.
    start_tick = delay0 if delay0 < delay1 else delay1
    if start_tick:
        mem.tick += start_tick
    for tick in range(start_tick, _ISSUE_TICKS):
        if pc0 >= n0 and pc1 >= n1:
            break
        if pc0 < n0 and tick >= delay0:
            i = rng._i
            if i < rng._n:
                rng._i = i + 1
                roll = rng._dbuf[i]
            else:
                roll = rng.random()
            if roll < p0:
                ins = prog0[pc0]
                if ins[0] == "st":
                    if write(sm0, 0, ins[1], ins[2]):
                        pc0 += 1
                else:  # ld
                    names.append(ins[2])
                    handles.append(issue(sm0, 0, ins[1]))
                    pc0 += 1
        if pc1 < n1 and tick >= delay1:
            i = rng._i
            if i < rng._n:
                rng._i = i + 1
                roll = rng._dbuf[i]
            else:
                roll = rng.random()
            if roll < p1:
                ins = prog1[pc1]
                if ins[0] == "st":
                    if write(sm1, 1, ins[1], ins[2]):
                        pc1 += 1
                else:  # ld
                    names.append(ins[2])
                    handles.append(issue(sm1, 1, ins[1]))
                    pc1 += 1
        # mem.step(), inlined, with the single-SM fast path of
        # MemorySystem._step_buffers (keep the three copies in sync:
        # here, _step_buffers, and MemorySystem.drain_until).
        mem.tick += 1
        if mem._deferred:
            mem._step_deferred()
        if mem._n_buffered:
            nonempty = mem._nonempty
            if len(nonempty) == 1:
                for sm in nonempty:
                    break
                mem._step_buffer(sm, mem.sm_buffers[sm])
            else:
                mem._step_buffers()

    mem.drain_until(handles, _DRAIN_TICKS)
    mem.flush_all()

    regs = {name: handle.value for name, handle in zip(names, handles)}
    return bool(instance.test.weak(regs))


def _one_execution(
    profile: HardwareProfile,
    instance: LitmusInstance,
    field: StressField,
    rng,
    randomise: bool,
    rounds: int = _ROUNDS,
    mem: MemorySystem | None = None,
    programs: tuple[tuple, tuple] | None = None,
) -> bool:
    """Run one execution (a batch of rounds, like one kernel launch).

    Pass ``mem`` (already reset for this execution's field and rng) to
    reuse one :class:`MemorySystem` across a whole execution batch.
    """
    if mem is None:
        mem = MemorySystem(profile, field, rng)
    sms = (0, 1)
    if randomise and rng.random() < 0.5:
        sms = (1, 0)
    if randomise:
        exec_p = (rng.uniform(0.35, 0.95), rng.uniform(0.35, 0.95))
    else:
        exec_p = (_EXEC_P, _EXEC_P)
    if programs is None:
        programs = _resolved_programs(instance)
    for _ in range(rounds):
        if _one_round(instance, mem, sms, exec_p, rng, programs):
            return True
    return False


def _litmus_span(
    profile: HardwareProfile,
    instance: LitmusInstance,
    stress_spec,
    seed: int,
    randomise: bool,
    start: int,
    stop: int,
) -> int:
    """Weak-behaviour count over executions ``[start, stop)``.

    Each execution draws from its own seed stream, derived from the
    experiment seed and the execution's *global* index — never from
    shard-local state — so any partition of the execution range yields
    the same statistics (the repro.parallel determinism contract).

    The generator is wrapped in :class:`~repro.rng.BufferedRNG` (block
    pre-draws of the identical stream) and one :class:`MemorySystem` is
    reset per execution instead of reallocated — both invisible to the
    statistics.
    """
    weak = 0
    mem: MemorySystem | None = None
    scratch_base = instance.scratch_base
    scratch_size = instance.scratch_size
    programs = _resolved_programs(instance)
    build = stress_spec.build
    # derive_seed is a left fold over the labels, so hoisting the
    # loop-invariant prefix yields the identical per-execution seed.
    span_seed = derive_seed(
        seed, profile.short_name, instance.test.name, instance.distance
    )
    for i in range(start, stop):
        rng = BufferedRNG(make_rng(span_seed, i))
        field = build(profile, scratch_base, scratch_size, rng)
        if mem is None:
            mem = MemorySystem(profile, field, rng)
        else:
            mem.reset(stress=field, rng=rng)
        if _one_execution(
            profile, instance, field, rng, randomise,
            mem=mem, programs=programs,
        ):
            weak += 1
    return weak


def _litmus_shard(args: tuple) -> LitmusShard:
    """Process-pool worker: one execution shard of one litmus instance."""
    profile, instance, stress_spec, seed, randomise, start, stop = args
    weak = _litmus_span(
        profile, instance, stress_spec, seed, randomise, start, stop
    )
    return LitmusShard(start=start, stop=stop, weak=weak)


def run_litmus(
    profile: HardwareProfile,
    test: LitmusTest,
    distance: int,
    stress_spec,
    executions: int,
    seed: int = 0,
    randomise: bool = False,
    parallel: ParallelConfig | None = None,
) -> LitmusResult:
    """Run ``executions`` runs of test instance ``T_distance``.

    ``stress_spec`` must provide
    ``build(profile, scratch_base, scratch_size, rng) -> StressField``
    (see :mod:`repro.stress.strategies`); it is re-invoked per execution
    so that randomised choices (stressing thread count, random spread
    locations) vary between runs as in the paper.

    ``parallel`` shards the execution batch across worker processes;
    serial and parallel runs produce identical results because every
    execution is seeded from its global index.
    """
    config = resolve_config(parallel)
    instance = LitmusInstance.layout(profile, test, distance)
    if config.serial:
        weak = _litmus_span(
            profile, instance, stress_spec, seed, randomise, 0, executions
        )
    else:
        shards = parallel_map(
            _litmus_shard,
            [
                (profile, instance, stress_spec, seed, randomise, start, stop)
                for start, stop in shard_ranges(executions, config)
            ],
            config,
        )
        weak = merge_litmus_shards(shards, executions)
    locations = tuple(getattr(stress_spec, "locations", ()) or ())
    return LitmusResult(
        test=test.name,
        distance=distance,
        weak=weak,
        executions=executions,
        location=locations,
    )
