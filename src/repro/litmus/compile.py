"""Lowering litmus IR onto the SIMT engine (the *compiled* backend).

The direct runner (:mod:`repro.litmus.runner`) drives the memory system
with scripted threads; this module instead compiles any IR test into a
real :class:`~repro.gpu.kernel.Kernel` — one block per litmus thread,
so the communicating threads land on distinct SMs exactly as the paper
configures its generated CUDA tests — and executes it on the
:class:`~repro.gpu.engine.Engine`.  The same memory subsystem underlies
both backends, so their weak-outcome rates must agree (the
cross-backend parity tests); the compiled path additionally exercises
the scheduler, fence-site machinery and deferred-load engine ops.

Lowering rules:

* ``("st", loc, v)``    -> ``ctx.store(comm, idx(loc), v)``
* ``("ld", loc, r)``    -> ``ctx.issue_load`` now, ``ctx.await_load`` +
  a store of the value into the result buffer after the program —
  litmus kernels only read their registers at the end, which is what
  lets LB-shaped late resolution be observed;
* ``("fence",)``        -> ``ctx.fence_device()``
* ``("rmw", loc, r, v)``-> ``ctx.atomic_exch`` + result-buffer store.

Location ``i`` of the test sits ``i * max(distance, 1)`` words into the
communication buffer — the identical T_d layout the direct runner uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chips.profile import HardwareProfile
from ..gpu.addresses import Buffer
from ..gpu.engine import Engine
from ..gpu.kernel import Kernel, LaunchConfig
from ..gpu.memory import MemorySystem
from ..parallel import (
    LitmusShard,
    ParallelConfig,
    merge_litmus_shards,
    parallel_map,
    resolve_config,
    shard_ranges,
)
from ..rng import BufferedRNG, derive_seed, make_rng
from .results import LitmusResult
from .runner import (
    _ROUNDS,
    LitmusInstance,
    OutcomeObservation,
    written_locs,
)
from .tests import LitmusTest

#: Tick budget per compiled litmus round.  The programs are a handful
#: of operations, but heavily stressed drains and slow loads need room.
ENGINE_MAX_TICKS = 6_000


def _litmus_thread(ctx, programs, comm, out, reg_slots):
    """The compiled litmus kernel: one block (= one SM) per thread."""
    program = programs[ctx.block_id]
    pending = []  # (result slot, deferred-load handle)
    for ins in program:
        kind = ins[0]
        if kind == "st":
            yield from ctx.store(comm, ins[1], ins[2])
        elif kind == "ld":
            handle = yield from ctx.issue_load(comm, ins[1])
            pending.append((reg_slots[ins[2]], handle))
        elif kind == "fence":
            yield from ctx.fence_device()
        else:  # rmw — atomic exchange; the old value is a register
            old = yield from ctx.atomic_exch(comm, ins[1], ins[3])
            yield from ctx.store(out, reg_slots[ins[2]], old)
    for slot, handle in pending:
        value = yield from ctx.await_load(handle)
        yield from ctx.store(out, slot, value)


@dataclass(frozen=True)
class CompiledLitmus:
    """A litmus test lowered to a kernel plus its memory layout.

    The geometry (communication area, T_d location spacing, stressing
    scratchpad) is the direct runner's :class:`LitmusInstance`, so the
    two backends can never drift onto different layouts; only the
    result buffer (one slot per register) is engine-specific.
    """

    instance: LitmusInstance
    kernel: Kernel
    config: LaunchConfig
    out: Buffer
    reg_slots: dict

    @property
    def test(self) -> LitmusTest:
        return self.instance.test

    @property
    def scratch_base(self) -> int:
        return self.instance.scratch_base

    @property
    def scratch_size(self) -> int:
        return self.instance.scratch_size

    def read_outcome(self, mem: MemorySystem) -> tuple[dict, dict]:
        """Final (registers, location values) after a kernel run."""
        get = mem.mem.get
        out_base = self.out.base
        regs = {
            reg: get(out_base + slot, 0)
            for reg, slot in self.reg_slots.items()
        }
        instance = self.instance
        final = {
            loc: get(instance.addr(loc), 0)
            for loc in instance.test.condition_locations
        }
        return regs, final

    def init_round(self, mem: MemorySystem) -> None:
        """Zero the communication locations and result slots."""
        for addr in self.instance.loc_addrs():
            mem.mem[addr] = 0
        out_base = self.out.base
        for slot in self.reg_slots.values():
            mem.mem[out_base + slot] = 0


def compile_test(
    profile: HardwareProfile,
    test: LitmusTest,
    distance: int,
    scratch_size: int = 4096,
) -> CompiledLitmus:
    """Lower ``test`` at ``distance`` to a kernel for ``profile``.

    The layout is taken verbatim from the direct runner
    (:meth:`LitmusInstance.layout`); the result buffer is appended
    after the scratchpad, outside every region the test or the stress
    field touches.
    """
    n_threads = test.n_threads
    if n_threads > profile.n_sms:
        raise ValueError(
            f"{test.name} needs {n_threads} SMs; "
            f"{profile.short_name} models {profile.n_sms}"
        )
    instance = LitmusInstance.layout(
        profile, test, distance, scratch_size=scratch_size
    )
    reg_slots = {reg: i for i, reg in enumerate(test.registers)}
    out = Buffer(
        name="out",
        base=instance.scratch_base + instance.scratch_size,
        size=max(1, len(reg_slots)),
    )
    # Resolve location names to comm-buffer indices once, at compile
    # time (the kernel then runs on plain integers).
    comm_base = instance.comm_base
    loc_addrs = instance.loc_addrs()
    comm = Buffer(
        name="comm",
        base=comm_base,
        size=loc_addrs[-1] - comm_base + 1,
    )
    loc_index = test.locations.index

    def resolve(program):
        resolved = []
        for ins in program:
            kind = ins[0]
            if kind == "fence":
                resolved.append(ins)
            elif kind == "rmw":
                resolved.append(
                    (
                        kind,
                        loc_addrs[loc_index(ins[1])] - comm_base,
                        ins[2],
                        ins[3],
                    )
                )
            else:
                resolved.append(
                    (kind, loc_addrs[loc_index(ins[1])] - comm_base, ins[2])
                )
        return tuple(resolved)

    programs = tuple(resolve(p) for p in test.threads)
    kernel = Kernel(
        name=f"litmus-{test.name}",
        fn=_litmus_thread,
        args=(programs, comm, out, reg_slots),
    )
    config = LaunchConfig(grid_dim=n_threads, block_dim=1)
    return CompiledLitmus(
        instance=instance,
        kernel=kernel,
        config=config,
        out=out,
        reg_slots=reg_slots,
    )


def _engine_span(
    profile: HardwareProfile,
    test: LitmusTest,
    distance: int,
    stress_spec,
    seed: int,
    randomise: bool,
    start: int,
    stop: int,
    rounds: int = _ROUNDS,
) -> int:
    """Weak count over compiled executions ``[start, stop)``.

    Mirrors the direct runner's span contract: every execution seeds
    from its global index, so any partition yields identical statistics.
    The engine backend derives from a distinct ``"engine"`` label — the
    two backends are statistically independent samples of the same
    model, not replays of one stream.
    """
    compiled = compile_test(profile, test, distance)
    span_seed = derive_seed(
        seed, profile.short_name, test.name, distance, "engine"
    )
    scratch_base = compiled.scratch_base
    scratch_size = compiled.scratch_size
    n_warps = compiled.config.grid_dim
    weak = 0
    mem: MemorySystem | None = None
    engine: Engine | None = None
    test_obj = compiled.test
    for i in range(start, stop):
        rng = BufferedRNG(make_rng(span_seed, i))
        field = stress_spec.build(profile, scratch_base, scratch_size, rng)
        if mem is None:
            mem = MemorySystem(profile, field, rng)
            # A litmus kernel is a handful of operations; not finishing
            # inside the generous tick budget means the model (not the
            # test) is broken, so it raises KernelTimeoutError rather
            # than silently dropping observations and biasing the rate.
            engine = Engine(
                profile,
                mem,
                rng,
                max_ticks=ENGINE_MAX_TICKS,
                randomise=randomise,
                raise_on_timeout=True,
            )
        else:
            mem.reset(stress=field, rng=rng)
            engine.rng = rng
        engine.n_stress_units = stress_spec.stress_units(n_warps, rng)
        for _ in range(rounds):
            compiled.init_round(mem)
            engine.run(compiled.kernel, compiled.config)
            regs, final = compiled.read_outcome(mem)
            if test_obj.weak(regs, final or None):
                weak += 1
                break
    return weak


def observed_outcomes_engine(
    profile: HardwareProfile,
    test: LitmusTest,
    distance: int,
    stress_spec,
    executions: int,
    seed: int = 0,
    randomise: bool = False,
    rounds: int = _ROUNDS,
) -> OutcomeObservation:
    """Run the engine backend and record every round's final state.

    Mirrors :func:`_engine_span` (same ``"engine"`` seed label, same
    stress-unit draws, same kernel) but reads the final value of every
    program-written location after each round instead of only the
    condition's, and never breaks out of a round batch early.  The
    engine raises on kernel timeout, so every round completes and
    ``incomplete`` is always 0 here; the field exists for interface
    parity with the direct collector.
    """
    compiled = compile_test(profile, test, distance)
    span_seed = derive_seed(
        seed, profile.short_name, test.name, distance, "engine"
    )
    scratch_base = compiled.scratch_base
    scratch_size = compiled.scratch_size
    n_warps = compiled.config.grid_dim
    written = written_locs(test)
    written_addrs = tuple(
        (loc, compiled.instance.addr(loc)) for loc in written
    )
    test_obj = compiled.test
    outcomes: dict = {}
    weak = 0
    mem: MemorySystem | None = None
    engine: Engine | None = None
    for i in range(executions):
        rng = BufferedRNG(make_rng(span_seed, i))
        field = stress_spec.build(profile, scratch_base, scratch_size, rng)
        if mem is None:
            mem = MemorySystem(profile, field, rng)
            engine = Engine(
                profile,
                mem,
                rng,
                max_ticks=ENGINE_MAX_TICKS,
                randomise=randomise,
                raise_on_timeout=True,
            )
        else:
            mem.reset(stress=field, rng=rng)
            engine.rng = rng
        engine.n_stress_units = stress_spec.stress_units(n_warps, rng)
        hit = False
        for _ in range(rounds):
            compiled.init_round(mem)
            engine.run(compiled.kernel, compiled.config)
            regs, final = compiled.read_outcome(mem)
            get = mem.mem.get
            key = (
                tuple(sorted(regs.items())),
                tuple(sorted(
                    (loc, get(addr, 0)) for loc, addr in written_addrs
                )),
            )
            outcomes[key] = outcomes.get(key, 0) + 1
            if test_obj.weak(regs, final or None):
                hit = True
        if hit:
            weak += 1
    return OutcomeObservation(outcomes, weak, incomplete=0)


def _engine_shard(args: tuple) -> LitmusShard:
    """Process-pool worker: one shard of a compiled litmus run."""
    (
        profile, test, distance, stress_spec, seed, randomise,
        start, stop, rounds,
    ) = args
    weak = _engine_span(
        profile, test, distance, stress_spec, seed, randomise,
        start, stop, rounds,
    )
    return LitmusShard(start=start, stop=stop, weak=weak)


def run_litmus_compiled(
    profile: HardwareProfile,
    test: LitmusTest,
    distance: int,
    stress_spec,
    executions: int,
    seed: int = 0,
    randomise: bool = False,
    rounds: int = _ROUNDS,
    parallel: ParallelConfig | None = None,
) -> LitmusResult:
    """Run ``executions`` compiled-backend runs of ``T_distance``.

    The signature mirrors :func:`repro.litmus.runner.run_litmus`; an
    execution is a batch of ``rounds`` kernel launches and counts as
    weak when any round exhibits the forbidden outcome, exactly like
    the direct backend.
    """
    config = resolve_config(parallel)
    if config.serial:
        weak = _engine_span(
            profile, test, distance, stress_spec, seed, randomise,
            0, executions, rounds,
        )
    else:
        shards = parallel_map(
            _engine_shard,
            [
                (
                    profile, test, distance, stress_spec, seed,
                    randomise, start, stop, rounds,
                )
                for start, stop in shard_ranges(executions, config)
            ],
            config,
        )
        weak = merge_litmus_shards(shards, executions)
    locations = tuple(getattr(stress_spec, "locations", ()) or ())
    return LitmusResult(
        test=test.name,
        distance=distance,
        weak=weak,
        executions=executions,
        location=locations,
        backend="engine",
    )


@dataclass(frozen=True)
class ParityReport:
    """Weak-outcome rates of one test under both execution backends."""

    direct: LitmusResult
    engine: LitmusResult

    @property
    def gap(self) -> float:
        """Absolute difference of the two weak rates."""
        return abs(self.direct.rate - self.engine.rate)

    def agree(self, tolerance: float = 0.2) -> bool:
        """True when the two backends' rates are within ``tolerance``."""
        return self.gap <= tolerance


def backend_parity(
    profile: HardwareProfile,
    test: LitmusTest,
    distance: int,
    stress_spec,
    executions: int,
    seed: int = 0,
    randomise: bool = False,
    parallel: ParallelConfig | None = None,
) -> ParityReport:
    """Run one test on both backends and report the weak-rate gap."""
    from .runner import run_litmus

    direct = run_litmus(
        profile, test, distance, stress_spec, executions,
        seed=seed, randomise=randomise, parallel=parallel,
    )
    engine = run_litmus_compiled(
        profile, test, distance, stress_spec, executions,
        seed=seed, randomise=randomise, parallel=parallel,
    )
    return ParityReport(direct=direct, engine=engine)
