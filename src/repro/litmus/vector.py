"""The vectorized mega-batch litmus backend (``--backend vector``).

The direct runner interprets one execution at a time: every store-buffer
decision is one scalar draw and one Python branch, which caps a worker
at a few thousand executions per second — far short of the paper's
~half-billion execution campaign.  This backend lowers an IR test to
*structure-of-arrays* form and advances thousands of independent
executions ("lanes") per vectorized operation:

* all random quantities come from **batched** ``Generator`` draws (one
  array draw per decision *kind*, not one scalar draw per decision);
* per-lane store-buffer and channel state lives in 2-D numpy arrays
  (``(locations, lanes)`` probability tables, ``(stores, lanes)``
  entry/commit-time stacks);
* fences and rmw atomics are masked lane operations;
* the forbidden-outcome condition is compiled to a boolean array
  expression over per-lane register values and final memory.

**The model.**  Instead of stepping the tick loop, the backend samples
the *event times* of the same operational model (see
:mod:`repro.gpu.memory`): per-tick Bernoulli gates become geometric
inter-event times, the head-vs-successor store race (swap probability
vs head drain probability per tick) becomes one geometric race with a
conditional outcome draw, and deferred-load resolution becomes a
sampled resolve time clipped by the program-order events (same-channel
FIFO, failed SB bypasses, fences, later same-address stores) that the
scalar core enforces operationally.  Within-tick commit order is
totally ordered by ``(tick, SM, buffer position)`` keys, mirroring the
scalar drain pump's sorted-SM sweep, so coherence tie-breaks (CoRR,
CoWW, SB at small distance) come out the same way.

**The statistical contract.**  The backend is *not* draw-identical to
the scalar core — it consumes a different stream in a different order —
so its correctness is established statistically rather than bit-wise
(the same move the formal-semantics literature makes when it replaces
executions with a declared model): ``tests/test_vector_backend.py``
checks SC-soundness of every registry test on this backend and
weak-rate *parity* against the direct backend per (test, chip,
environment) with the two-proportion tests of
:mod:`repro.testing.stats`.  Known, deliberate approximations (all
statistically invisible at parity-test power): threads with three or
more stores race them in consecutive pairs rather than through a full
queue scan, and stores separated by an rmw do not race each other.

**The determinism contract.**  Executions are processed in fixed-size
mega-batches of :data:`LANE_BLOCK` lanes; batch ``b`` always covers
global executions ``[b * LANE_BLOCK, (b + 1) * LANE_BLOCK)`` and seeds
its generator from ``(seed, chip, test, distance, "vector", b)``.
Sharding (``--jobs N``) distributes whole batches, so results are
bit-identical at any job count — the :mod:`repro.parallel` determinism
contract, at batch rather than execution granularity.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from ..chips.profile import HardwareProfile
from ..errors import InvalidStressConfigError
from ..gpu.memory import _PARKED_DRAIN, memory_tables
from ..gpu.pressure import _THREADS_NORM, StressField
from ..stress.strategies import NoStress, TunedStress
from ..parallel import (
    LitmusShard,
    ParallelConfig,
    merge_litmus_shards,
    parallel_map,
    resolve_config,
    shard_ranges,
)
from ..rng import derive_seed, make_rng
from .ir import And, I_FENCE, I_LOAD, I_RMW, I_STORE, LocEq, Or, RegEq
from .results import LitmusResult
from .runner import (
    _EXEC_P,
    _MAX_START_DELAY,
    _ROUNDS,
    LitmusInstance,
    OutcomeObservation,
    written_locs,
)
from .tests import LitmusTest

#: Executions per mega-batch.  Fixed (never derived from the job count)
#: so that batch boundaries — and therefore every draw — are identical
#: under any sharding.
LANE_BLOCK = 4096

#: Sentinel tick for events that never happen (a zero-probability gate).
_NEVER = np.int64(1) << np.int64(40)
#: Cap on any single geometric draw, in ticks.  Far beyond the scalar
#: drain budget; keeps commit keys inside int64.
_GEOM_CAP = float(1 << 20)
#: Commit keys are ``tick * _TIE + rank`` where ``rank`` orders the
#: write events of one round thread-major — the scalar drain pump
#: sweeps SMs in ascending order, so same-tick commits land in SM
#: (= thread) order, then buffer (= program) order.
_TIE = np.int64(64)
#: Key sentinel mirroring :data:`_NEVER`.
_NEVER_KEY = _NEVER * _TIE


def _geometric(rng, p, n: int):
    """Ticks until the first success of a per-tick Bernoulli(p), >= 1.

    Accepts scalar or per-lane ``p``; ``p <= 0`` yields :data:`_NEVER`.
    Inverse-CDF sampling, so one uniform draw per lane per decision kind
    replaces the scalar core's one draw per tick per decision.
    """
    p = np.asarray(p, dtype=np.float64)
    u = rng.random(n)
    with np.errstate(divide="ignore", invalid="ignore"):
        g = np.log(u) / np.log1p(-p)
    g = np.where(np.isfinite(g), g, 0.0)
    out = np.minimum(np.floor(g), _GEOM_CAP).astype(np.int64) + 1
    return np.where(p <= 0.0, _NEVER, out)


class _Op(NamedTuple):
    kind: str
    loc: int  # location index; -1 for fences
    value: int  # stored value (st/rmw)
    reg: str | None  # destination register (ld/rmw)


class _VectorPlan(NamedTuple):
    """Static per-(chip, instance) lowering, shared by every batch."""

    n_threads: int
    ops: tuple  # per thread: tuple[_Op, ...]
    addrs: tuple  # per location index
    chans: tuple
    ranks: dict  # (thread, op position) -> write rank, thread-major
    flip_ranks: dict  # same, under reversed SM assignment (randomise)
    pair_gate: dict  # (loc_a, loc_b) -> ("none",) | ("leak",) | ("swap", slot)
    chain_gate: dict  # (loc_a, loc_b) -> bool (loads stay ordered)
    swap_pairs: tuple  # (channel_a, channel_b) rows backing the swap slots
    leak: float
    cond: object
    cond_locs: tuple  # (location name, location index) pairs
    n_locs: int


#: Plan cache, keyed by (chip cache token, instance) — the profile
#: itself may hold unhashable fields, its cache token is its identity.
_PLAN_CACHE: dict = {}
_PLAN_CACHE_MAX = 512


def _vector_plan(
    profile: HardwareProfile, instance: LitmusInstance
) -> _VectorPlan:
    key = (profile.cache_token, instance)
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        return plan
    test = instance.test
    addrs = instance.loc_addrs()
    chans = tuple(profile.channel(a) for a in addrs)
    min_dist = profile.store_store_min_distance
    leak = profile.store_swap_leak
    loc_index = {name: i for i, name in enumerate(test.locations)}

    ops = []
    for program in test.threads:
        row = []
        for ins in program:
            kind = ins[0]
            if kind == I_STORE:
                row.append(_Op(kind, loc_index[ins[1]], ins[2], None))
            elif kind == I_LOAD:
                row.append(_Op(kind, loc_index[ins[1]], 0, ins[2]))
            elif kind == I_RMW:
                row.append(_Op(kind, loc_index[ins[1]], ins[3], ins[2]))
            else:
                row.append(_Op(kind, -1, 0, None))
        ops.append(tuple(row))
    ops = tuple(ops)

    # Ranks order same-slot events: the scalar core sweeps threads (and
    # the drain pump sweeps SMs) in ascending order, so events sharing
    # a time slot land thread-major, program order within a thread.
    # They start at 1 so a key's remainder distinguishes ranked events
    # from bare pump-slot resolutions (the chain rule needs this).
    ranks: dict = {}
    rank = 1
    for t, row in enumerate(ops):
        for p, _ in enumerate(row):
            ranks[(t, p)] = rank
            rank += 1
    if rank > int(_TIE):
        raise ValueError(
            f"{test.name}: {rank - 1} events exceed the vector "
            f"backend's tie-break capacity of {int(_TIE) - 1}"
        )
    flip_ranks: dict = {}
    rank = 1
    for t in reversed(range(len(ops))):
        for p, _ in enumerate(ops[t]):
            flip_ranks[(t, p)] = rank
            rank += 1

    pair_gate: dict = {}
    chain_gate: dict = {}
    pair_index: dict = {}
    swap_pairs: list = []
    n_locs = len(addrs)
    for a in range(n_locs):
        for b in range(n_locs):
            close = abs(addrs[a] - addrs[b]) < min_dist
            chain_gate[(a, b)] = chans[a] == chans[b] or close
            if a == b:
                pair_gate[(a, b)] = ("none",)
            elif chans[a] == chans[b]:
                pair_gate[(a, b)] = ("leak",) if leak > 0.0 else ("none",)
            elif close:
                pair_gate[(a, b)] = ("none",)
            else:
                chp = (chans[a], chans[b])
                slot = pair_index.get(chp)
                if slot is None:
                    slot = len(swap_pairs)
                    pair_index[chp] = slot
                    swap_pairs.append(chp)
                pair_gate[(a, b)] = ("swap", slot)

    cond_locs = tuple(
        (name, loc_index[name]) for name in sorted(test.condition_locations)
    )
    plan = _VectorPlan(
        n_threads=len(ops),
        ops=ops,
        addrs=addrs,
        chans=chans,
        ranks=ranks,
        flip_ranks=flip_ranks,
        pair_gate=pair_gate,
        chain_gate=chain_gate,
        swap_pairs=tuple(swap_pairs),
        leak=leak,
        cond=test.forbidden,
        cond_locs=cond_locs,
        n_locs=n_locs,
    )
    if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
        _PLAN_CACHE.clear()
    _PLAN_CACHE[key] = plan
    return plan


class _Tables(NamedTuple):
    """Per-lane probability tables at the instance's fixed channels."""

    drain: np.ndarray  # (locations, lanes)
    bypass: np.ndarray
    slow: np.ndarray
    resolve: np.ndarray
    swap: np.ndarray  # (swap slots, lanes)


def _field_row(profile, field, chans, pairs) -> tuple:
    """One lane's probability row: the tables at the plan's channels."""
    drain_p, swap_p, bypass_p, slow_p, resolve_p = memory_tables(
        profile, field, 1.0
    )
    return (
        tuple(drain_p[c] for c in chans)
        + tuple(bypass_p[c] for c in chans)
        + tuple(slow_p[c] for c in chans)
        + tuple(resolve_p[c] for c in chans)
        + tuple(swap_p[a][b] for a, b in pairs)
    )


def _split_rows(arr: np.ndarray, n_chans: int) -> _Tables:
    L = n_chans
    return _Tables(
        drain=arr[0:L],
        bypass=arr[L : 2 * L],
        slow=arr[2 * L : 3 * L],
        resolve=arr[3 * L : 4 * L],
        swap=arr[4 * L :],
    )


def _tuned_tables(
    profile, instance, plan, spec, rng, n: int
) -> _Tables:
    """Vectorized ``sys-str`` lane tables.

    A :class:`~repro.gpu.pressure.StressField` from targeted stressing
    is a pure function of the stressed channel multiset and the boost,
    so instead of one Python-level ``build`` per lane, draw every
    lane's region picks and thread count in two array operations, dedup
    the (channels, boost) combinations — thread-count saturation and
    channel aliasing collapse thousands of lanes onto a few dozen — and
    compute the probability row once per distinct field.  The draws are
    distribution-identical to per-lane ``TunedStress.build``: a
    uniform ``spread``-subset of the regions and an independent uniform
    thread count.
    """
    cfg = spec.config
    regions = min(
        cfg.scratch_regions, instance.scratch_size // cfg.patch_size
    )
    if regions < cfg.spread:
        raise InvalidStressConfigError(
            f"scratchpad of {instance.scratch_size} words has only "
            f"{regions} regions; spread {cfg.spread} impossible"
        )
    if spec.threads_range is None:
        lo = profile.max_resident_threads // 2
        hi = profile.max_resident_threads
    else:
        lo, hi = spec.threads_range
    picks = np.argpartition(
        rng.random((n, regions)), cfg.spread - 1, axis=1
    )[:, : cfg.spread]
    if hi <= lo:
        threads = np.full(n, max(lo, 1))
    else:
        threads = rng.integers(lo, hi + 1, size=n)
    strength = profile.sequence_strength(cfg.sequence)
    sharing = 1.0 / (1.0 + 0.35 * (cfg.spread - 1))
    intensity = np.minimum(1.0, threads / cfg.spread / _THREADS_NORM)
    boost = strength * intensity * sharing

    base = instance.scratch_base
    chmap = np.asarray(
        [
            profile.channel(base + r * cfg.patch_size)
            for r in range(regions)
        ],
        dtype=np.int64,
    )
    lane_chans = np.sort(chmap[picks], axis=1)
    combo = np.concatenate(
        [lane_chans.astype(np.float64), boost[:, None]], axis=1
    )
    uniq, inverse = np.unique(combo, axis=0, return_inverse=True)
    rows = np.empty((len(uniq), 4 * len(plan.chans) + len(plan.swap_pairs)))
    for i, row in enumerate(uniq):
        press = np.zeros(profile.n_channels)
        b = row[-1]
        for ch in row[:-1]:
            press[int(ch)] += b
        field = StressField(profile, press)
        rows[i] = _field_row(profile, field, plan.chans, plan.swap_pairs)
    return _split_rows(rows[inverse].T.copy(), len(plan.chans))


def _lane_tables(
    profile: HardwareProfile,
    instance: LitmusInstance,
    plan: _VectorPlan,
    stress_spec,
    rng,
    n: int,
) -> _Tables:
    """Build one stress field per lane and gather its channel rows.

    ``sys-str`` and ``no-str`` take vectorized fast paths; any other
    spec falls back to invoking ``build`` once per lane — randomised
    choices vary per execution exactly as in the direct backend — with
    the expensive table computation shared across lanes whose fields
    coincide.
    """
    chans = plan.chans
    pairs = plan.swap_pairs
    if isinstance(stress_spec, TunedStress):
        return _tuned_tables(profile, instance, plan, stress_spec, rng, n)
    if isinstance(stress_spec, NoStress):
        row = np.asarray(
            _field_row(profile, StressField.zero(profile), chans, pairs)
        )
        return _split_rows(
            np.broadcast_to(row[:, None], (len(row), n)), len(chans)
        )
    build = stress_spec.build
    base, size = instance.scratch_base, instance.scratch_size
    cache: dict = {}
    rows = []
    for _ in range(n):
        field = build(profile, base, size, rng)
        key = (field.press_bytes, field.turbulence)
        row = cache.get(key)
        if row is None:
            row = _field_row(profile, field, chans, pairs)
            cache[key] = row
        rows.append(row)
    arr = np.asarray(rows, dtype=np.float64).T
    return _split_rows(arr, len(chans))


def _race_pair(plan, tab, s1, s2, rng, n):
    """Commit times for two consecutive same-thread stores.

    Phase A: the head alone rolls its drain gate from entry.  Phase B:
    once the successor is buffered and eligible, each tick first rolls
    the swap gate (cross-channel, distance-gated) and then the head's
    drain gate; the combined event is geometric with the conditional
    swap/drain split drawn once.  A swapped head is parked (drains at
    ``_PARKED_DRAIN`` times its rate), giving consumers the scalar
    core's window to observe the stale value.
    """
    d1 = tab.drain[s1["loc"]]
    d2 = tab.drain[s2["loc"]]
    gate = plan.pair_gate[(s1["loc"], s2["loc"])]
    if gate[0] == "swap":
        q = tab.swap[gate[1]]
    elif gate[0] == "leak":
        q = np.full(n, plan.leak)
    else:
        q = np.zeros(n)
    e1, e2 = s1["E"], s2["E"]
    head_free = e1 + _geometric(rng, d1, n)
    start = np.maximum(e1, e2)
    racing = head_free > start
    comb = q + (1.0 - q) * d1
    w = start + _geometric(rng, comb, n)
    swapped = racing & (rng.random(n) * comb < q)
    c1 = np.where(racing, w, head_free)
    parked = w - 1 + _geometric(rng, _PARKED_DRAIN * d1, n)
    c1 = np.where(swapped, parked, c1)
    c2 = np.where(
        racing,
        np.where(swapped, w, w - 1 + _geometric(rng, d2, n)),
        e2 + _geometric(rng, d2, n),
    )
    s1["C"], s2["C"] = c1, c2


def _round_weak(plan, tab, exec_p, flip, rng, n, collect=None):
    """One vectorized round; True per lane on the forbidden outcome.

    ``collect(regs, stacks)``, if given, observes the round's raw
    results before condition evaluation: per-lane register arrays and
    the per-location ``(keys, vals)`` write stacks.  It must not mutate
    them (the soundness gate's outcome collector reads them to
    reconstruct every lane's final state)."""
    delays = rng.integers(0, _MAX_START_DELAY, size=(plan.n_threads, n))
    writes: list = [[] for _ in range(plan.n_locs)]
    reads = []  # (reg, loc, key threshold, forward mask, forwarded value)
    rmw_reads = []  # (reg, loc, key threshold)

    def rank_of(t, p):
        r = plan.ranks[(t, p)]
        if flip is None:
            return np.int64(r)
        return np.where(flip, np.int64(plan.flip_ranks[(t, p)]), np.int64(r))

    for t in range(plan.n_threads):
        row = plan.ops[t]
        p_exec = exec_p[t]
        prev = delays[t].astype(np.int64) - 1
        seg: list = []  # stores of the current race segment
        stores: list = []  # committed store records, program order
        loads: list = []  # processed loads: dicts with K/R/deferred
        raw_loads: list = []  # issued, not yet resolved: (pos, loc, tau)

        def close_segment():
            nonlocal seg
            prev_done = None
            i = 0
            while i < len(seg):
                s1 = seg[i]
                if prev_done is not None:
                    s1["E"] = np.maximum(s1["E"], prev_done)
                if i + 1 < len(seg):
                    s2 = seg[i + 1]
                    _race_pair(plan, tab, s1, s2, rng, n)
                    prev_done = np.maximum(s1["C"], s2["C"])
                    i += 2
                else:
                    s1["C"] = s1["E"] + _geometric(
                        rng, tab.drain[s1["loc"]], n
                    )
                    prev_done = s1["C"]
                    i += 1
            for rec in seg:
                rec["K"] = (2 * rec["C"] - 1) * _TIE + rank_of(
                    t, rec["pos"]
                )
            stores.extend(seg)
            seg = []

        def process_loads(fence_begin):
            """Resolve every issued-but-unprocessed load, program order.

            ``fence_begin`` is the begin tick of the fence closing this
            window (None at thread end): it resolves unconstrained slow
            loads and has already clamped store commits, which bounds
            the constrained branches.

            Keys live on a doubled time grid: the thread phase of tick
            ``t`` is slot ``2t``, the drain pump that follows it is slot
            ``2t + 1``.  A store with commit time ``C = E + Geom`` lands
            on pump ``C - 1`` (slot ``2C - 1``), so a phase-``t`` read
            sees ``C <= t`` and a deferred resolution on pump ``R`` sees
            ``C <= R`` — the scalar core's phase/deferred/pump step
            order, reproduced exactly.
            """
            for pos, loc, tau in raw_loads:
                ch = plan.chans[loc]
                tau_key = 2 * tau * _TIE + rank_of(t, pos)

                # (1) chain behind an earlier unresolved load (same
                # channel or closer than the reorder distance).  The
                # chained load resolves on the deferred pass right
                # after the earlier load's resolution slot.
                chained = np.zeros(n, dtype=bool)
                k_chain = np.zeros(n, dtype=np.int64)
                for lrec in loads:
                    if not plan.chain_gate[(lrec["loc"], loc)]:
                        continue
                    slot = lrec["K"] // _TIE
                    m = lrec["deferred"] & (slot >= 2 * tau) & ~chained
                    k_next = np.where(
                        slot % 2 == 0,
                        (slot + 1) * _TIE,
                        np.where(
                            lrec["K"] % _TIE > 0,
                            (slot + 2) * _TIE,
                            lrec["K"],
                        ),
                    )
                    k_chain = np.where(m, k_next, k_chain)
                    chained |= m

                # Own-store relations at issue time.  A store is
                # pending at phase ``tau`` when it entered earlier and
                # its commit pump has not yet run: E < tau <= C - 1.
                fwd = np.zeros(n, dtype=bool)
                fwd_val = np.zeros(n, dtype=np.int64)
                samech = np.zeros(n, dtype=bool)
                k_samech = np.full(n, _NEVER_KEY)
                any_pend = np.zeros(n, dtype=bool)
                bp = np.zeros(n)
                occ = np.full(n, np.int64(-1))  # last covered pump
                for rec in stores:
                    pend = (rec["E"] < tau) & (rec["C"] > tau)
                    if rec["loc"] == loc:
                        # (2) forwarding: latest same-address entry wins.
                        fwd_val = np.where(pend, rec["value"], fwd_val)
                        fwd |= pend
                    if plan.chans[rec["loc"]] == ch:
                        # (3) same-channel FIFO: the first own same-
                        # channel commit after issue resolves the load,
                        # reading memory just before that store lands.
                        samech |= pend
                        k_samech = np.where(
                            pend,
                            np.minimum(k_samech, rec["K"]),
                            k_samech,
                        )
                    any_pend |= pend
                    # (4) bypass rolls against the most recent pending
                    # store's channel (later records overwrite).
                    bp = np.where(pend, tab.bypass[rec["loc"]], bp)
                    occ = np.where(
                        pend, np.maximum(occ, rec["C"] - 1), occ
                    )

                # Failed bypass: wait until the buffer has no own
                # stores — later entries extend the occupancy window
                # when they arrive before it lapses; the load resolves
                # on the deferred pass after the last covered pump.
                for rec in stores:
                    joins = (rec["E"] >= tau) & (rec["E"] <= occ + 1)
                    occ = np.where(
                        joins, np.maximum(occ, rec["C"] - 1), occ
                    )
                k_blocked = (2 * occ + 3) * _TIE

                # Early-resolution triggers: a later own store to the
                # same address resolves the load at entry (reading the
                # pre-store memory); a later own commit on the load's
                # channel (or address) resolves it just before that
                # store's value lands.
                trig = np.full(n, _NEVER_KEY)
                for rec in stores:
                    if rec["pos"] < pos:
                        continue
                    if rec["loc"] == loc:
                        entry_key = 2 * rec["E"] * _TIE + rank_of(
                            t, rec["pos"]
                        )
                        trig = np.minimum(trig, entry_key)
                        trig = np.minimum(trig, rec["K"])
                    elif plan.chans[rec["loc"]] == ch:
                        trig = np.minimum(trig, rec["K"])

                # (5) unconstrained: slow roll, geometric resolution on
                # the deferred passes; a fence begin resolves the load
                # at its begin phase.
                u_bypass = rng.random(n)
                u_slow = rng.random(n)
                slow = u_slow < tab.slow[loc]
                r_slow = tau - 1 + _geometric(rng, tab.resolve[loc], n)
                k_slow = (2 * r_slow + 1) * _TIE
                k_slow = np.minimum(k_slow, trig)
                if fence_begin is not None:
                    k_slow = np.minimum(
                        k_slow,
                        2 * fence_begin * _TIE + rank_of(t, pos),
                    )

                bypass_ok = u_bypass < bp
                b_chain = chained
                b_fwd = ~b_chain & fwd
                b_samech = ~b_chain & ~fwd & samech
                b_block = (
                    ~b_chain & ~fwd & ~samech & any_pend & ~bypass_ok
                )
                b_free = ~b_chain & ~fwd & ~samech & ~b_block
                K = np.select(
                    [b_chain, b_fwd, b_samech, b_block],
                    [
                        np.minimum(k_chain, trig),
                        tau_key,
                        np.minimum(k_samech, trig),
                        np.minimum(k_blocked, trig),
                    ],
                    default=np.where(slow, k_slow, tau_key),
                )
                deferred = b_chain | b_samech | b_block | (b_free & slow)
                loads.append(
                    {"loc": loc, "K": K, "deferred": deferred}
                )
                reads.append((row[pos].reg, loc, K, b_fwd, fwd_val))
            raw_loads.clear()

        for pos, op in enumerate(row):
            tau = prev + _geometric(rng, p_exec, n)
            if op.kind == I_STORE:
                seg.append(
                    {"pos": pos, "loc": op.loc, "value": op.value, "E": tau}
                )
                prev = tau
            elif op.kind == I_LOAD:
                raw_loads.append((pos, op.loc, tau))
                prev = tau
            elif op.kind == I_FENCE:
                close_segment()
                # Priority FIFO drain: every still-buffered own store
                # commits on the pump right after the begin tick.
                for rec in stores:
                    drained = np.minimum(rec["C"], tau + 1)
                    rec["K"] = np.minimum(
                        rec["K"],
                        (2 * drained - 1) * _TIE
                        + rank_of(t, rec["pos"]),
                    )
                    rec["C"] = drained
                process_loads(tau)
                # Completion: the begin gate itself when nothing is
                # pending at the begin phase; otherwise the first later
                # gate at which everything has resolved.  The priority
                # drain and the begin-phase load resolution finish
                # before any later gate — only a load resolving on a
                # later deferred pass can force a retry, and only when
                # the next gate lands on the very next tick.
                pend0 = np.zeros(n, dtype=bool)
                late = np.zeros(n, dtype=bool)
                for rec in stores:
                    pend0 |= (rec["E"] < tau) & (rec["C"] > tau)
                for lrec in loads:
                    slot = lrec["K"] // _TIE
                    pend0 |= lrec["deferred"] & (slot >= 2 * tau + 1)
                    late |= lrec["deferred"] & (slot >= 2 * tau + 2)
                g1 = _geometric(rng, p_exec, n)
                done = np.where(
                    late & (g1 == 1),
                    tau + 1 + _geometric(rng, p_exec, n),
                    tau + g1,
                )
                prev = np.where(pend0, done, tau)
            else:  # rmw
                close_segment()
                pend_any = np.zeros(n, dtype=bool)
                max_c = np.full(n, np.int64(-1))
                bp = np.zeros(n)
                pend_masks = []
                for rec in stores:
                    if rec["loc"] == op.loc:
                        pend_masks.append(None)
                        continue
                    pend = (rec["E"] < tau) & (rec["C"] > tau)
                    pend_masks.append(pend)
                    pend_any |= pend
                    max_c = np.where(
                        pend, np.maximum(max_c, rec["C"]), max_c
                    )
                    bp = np.where(pend, tab.bypass[rec["loc"]], bp)
                bypassed = pend_any & (rng.random(n) < bp)
                waited = pend_any & ~bypassed
                # The waiting atomic retries its gate every tick and
                # executes at the first gate at which the cross-address
                # stores have drained (first free phase: max_c).
                exec_at = np.where(
                    waited, max_c - 1 + _geometric(rng, p_exec, n), tau
                )
                # A successful bypass parks the overtaken stores in the
                # congested queue: their remaining drain slows down.
                for rec, pend in zip(stores, pend_masks):
                    if pend is None:
                        # Coherence: same-address buffered stores are
                        # committed by the atomic itself, in order,
                        # just before its own read-modify-write.
                        rec["K"] = np.where(
                            rec["C"] > exec_at,
                            2 * exec_at * _TIE + rank_of(t, rec["pos"]),
                            rec["K"],
                        )
                        rec["C"] = np.minimum(rec["C"], exec_at)
                        continue
                    parked = tau + _geometric(
                        rng, _PARKED_DRAIN * tab.drain[rec["loc"]], n
                    )
                    hit = bypassed & pend
                    rec["C"] = np.where(hit, parked, rec["C"])
                    rec["K"] = np.where(
                        hit,
                        (2 * parked - 1) * _TIE
                        + rank_of(t, rec["pos"]),
                        rec["K"],
                    )
                key = 2 * exec_at * _TIE + rank_of(t, pos)
                writes[op.loc].append((key, op.value))
                rmw_reads.append((op.reg, op.loc, key))
                prev = exec_at

        close_segment()
        process_loads(None)
        for rec in stores:
            writes[rec["loc"]].append((rec["K"], rec["value"]))

    # Final memory and load values: per location, the visible write
    # with the greatest commit key wins (initial value 0).
    stacks: dict = {}
    for loc, events in enumerate(writes):
        if events:
            keys = np.stack([np.broadcast_to(k, (n,)) for k, _ in events])
            vals = np.asarray([v for _, v in events], dtype=np.int64)
            stacks[loc] = (keys, vals)

    def read_at(loc, K):
        entry = stacks.get(loc)
        if entry is None:
            return np.zeros(n, dtype=np.int64)
        keys, vals = entry
        visible = np.where(keys < K[None, :], keys, np.int64(-1))
        best = visible.argmax(axis=0)
        has = visible.max(axis=0) >= 0
        return np.where(has, vals[best], 0)

    regs: dict = {}
    for reg, loc, K, fwd, fwd_val in reads:
        value = read_at(loc, K)
        regs[reg] = np.where(fwd, fwd_val, value)
    for reg, loc, K in rmw_reads:
        regs[reg] = read_at(loc, K)
    final: dict = {}
    for name, loc in plan.cond_locs:
        entry = stacks.get(loc)
        if entry is None:
            final[name] = np.zeros(n, dtype=np.int64)
        else:
            keys, vals = entry
            final[name] = vals[keys.argmax(axis=0)]
    if collect is not None:
        collect(regs, stacks)
    return _eval_cond(plan.cond, regs, final, n)


def _eval_cond(cond, regs, final, n: int):
    """The forbidden outcome as a boolean lane-array expression."""
    if isinstance(cond, RegEq):
        value = regs.get(cond.reg)
        if value is None:
            return np.full(n, cond.value == 0)
        return value == cond.value
    if isinstance(cond, LocEq):
        value = final.get(cond.loc)
        if value is None:
            return np.full(n, cond.value == 0)
        return value == cond.value
    if isinstance(cond, And):
        out = np.ones(n, dtype=bool)
        for term in cond.terms:
            out &= _eval_cond(term, regs, final, n)
        return out
    if isinstance(cond, Or):
        out = np.zeros(n, dtype=bool)
        for term in cond.terms:
            out |= _eval_cond(term, regs, final, n)
        return out
    raise TypeError(f"not a condition: {cond!r}")


def _vector_span(
    profile: HardwareProfile,
    instance: LitmusInstance,
    stress_spec,
    seed: int,
    randomise: bool,
    batch_start: int,
    batch_stop: int,
    executions: int,
    lane_block: int,
) -> int:
    """Weak-behaviour count over batches ``[batch_start, batch_stop)``.

    Every batch seeds its own generator from the experiment seed and
    the batch's *global* index — never from shard-local state — so any
    batch-aligned partition yields identical statistics.
    """
    plan = _vector_plan(profile, instance)
    span_seed = derive_seed(
        seed, profile.short_name, instance.test.name, instance.distance,
        "vector",
    )
    weak = 0
    for b in range(batch_start, batch_stop):
        lo = b * lane_block
        n = min(executions, lo + lane_block) - lo
        if n <= 0:
            continue
        rng = make_rng(span_seed, b)
        tab = _lane_tables(profile, instance, plan, stress_spec, rng, n)
        if randomise:
            flip = rng.random(n) < 0.5
            exec_p = rng.uniform(0.35, 0.95, size=(plan.n_threads, n))
        else:
            flip = None
            exec_p = [_EXEC_P] * plan.n_threads
        weak_lanes = np.zeros(n, dtype=bool)
        for _ in range(_ROUNDS):
            weak_lanes |= _round_weak(plan, tab, exec_p, flip, rng, n)
        weak += int(np.count_nonzero(weak_lanes))
    return weak


def observed_outcomes_vector(
    profile: HardwareProfile,
    test: LitmusTest,
    distance: int,
    stress_spec,
    executions: int,
    seed: int = 0,
    randomise: bool = False,
    lane_block: int = LANE_BLOCK,
) -> OutcomeObservation:
    """Run the vector backend and record every lane-round final state.

    Mirrors :func:`_vector_span` (same ``"vector"`` seed label, same
    lane tables and per-round draws) with a ``collect`` hook attached:
    after each round the per-lane registers and the final value of
    every program-written location (the write with the greatest commit
    key, initial 0 if never written) are stacked into a matrix and
    deduplicated with ``np.unique``.  Lanes always complete — there is
    no tick budget here — so ``incomplete`` is always 0.
    """
    instance = LitmusInstance.layout(profile, test, distance)
    plan = _vector_plan(profile, instance)
    span_seed = derive_seed(
        seed, profile.short_name, test.name, distance, "vector"
    )
    loc_index = {name: i for i, name in enumerate(test.locations)}
    written = tuple(
        (name, loc_index[name]) for name in written_locs(test)
    )
    reg_names = tuple(sorted(test.registers))
    written_sorted = tuple(sorted(written))
    outcomes: dict = {}
    weak = 0
    n_batches = -(-executions // lane_block)
    for b in range(n_batches):
        lo = b * lane_block
        n = min(executions, lo + lane_block) - lo
        if n <= 0:
            continue
        rng = make_rng(span_seed, b)
        tab = _lane_tables(profile, instance, plan, stress_spec, rng, n)
        if randomise:
            flip = rng.random(n) < 0.5
            exec_p = rng.uniform(0.35, 0.95, size=(plan.n_threads, n))
        else:
            flip = None
            exec_p = [_EXEC_P] * plan.n_threads

        rows: list = []

        def collect(regs, stacks):
            columns = [
                np.broadcast_to(np.asarray(regs[r]), (n,))
                for r in reg_names
            ]
            for _, loc in written_sorted:
                entry = stacks.get(loc)
                if entry is None:
                    columns.append(np.zeros(n, dtype=np.int64))
                else:
                    keys, vals = entry
                    columns.append(vals[keys.argmax(axis=0)])
            rows.append(np.stack(columns, axis=1)
                        if columns else np.zeros((n, 0), dtype=np.int64))

        weak_lanes = np.zeros(n, dtype=bool)
        for _ in range(_ROUNDS):
            weak_lanes |= _round_weak(
                plan, tab, exec_p, flip, rng, n, collect=collect
            )
        weak += int(np.count_nonzero(weak_lanes))
        states, counts = np.unique(
            np.concatenate(rows, axis=0), axis=0, return_counts=True
        )
        n_regs = len(reg_names)
        for row, count in zip(states, counts):
            key = (
                tuple(zip(reg_names, (int(v) for v in row[:n_regs]))),
                tuple(
                    (name, int(v))
                    for (name, _), v in zip(written_sorted, row[n_regs:])
                ),
            )
            outcomes[key] = outcomes.get(key, 0) + int(count)
    return OutcomeObservation(outcomes, weak, incomplete=0)


def _vector_shard(args: tuple) -> LitmusShard:
    """Process-pool worker: one batch-aligned shard of one instance."""
    (
        profile, instance, stress_spec, seed, randomise,
        batch_start, batch_stop, executions, lane_block,
    ) = args
    weak = _vector_span(
        profile, instance, stress_spec, seed, randomise,
        batch_start, batch_stop, executions, lane_block,
    )
    return LitmusShard(
        start=min(batch_start * lane_block, executions),
        stop=min(batch_stop * lane_block, executions),
        weak=weak,
    )


def run_litmus_vector(
    profile: HardwareProfile,
    test: LitmusTest,
    distance: int,
    stress_spec,
    executions: int,
    seed: int = 0,
    randomise: bool = False,
    parallel: ParallelConfig | None = None,
    lane_block: int = LANE_BLOCK,
) -> LitmusResult:
    """Run ``executions`` runs of ``T_distance`` on the vector backend.

    Drop-in signature-compatible with
    :func:`~repro.litmus.runner.run_litmus`; results carry
    ``backend="vector"`` and are validated against the direct backend
    statistically (see the module docstring).  ``parallel`` shards whole
    mega-batches across workers; serial and parallel runs are
    bit-identical.
    """
    config = resolve_config(parallel)
    if test.n_threads > profile.n_sms:
        raise ValueError(
            f"{test.name} needs {test.n_threads} SMs; "
            f"{profile.short_name} models {profile.n_sms}"
        )
    instance = LitmusInstance.layout(profile, test, distance)
    n_batches = -(-executions // lane_block) if executions > 0 else 0
    if config.serial or n_batches <= 1:
        weak = _vector_span(
            profile, instance, stress_spec, seed, randomise,
            0, n_batches, executions, lane_block,
        )
    else:
        shards = parallel_map(
            _vector_shard,
            [
                (
                    profile, instance, stress_spec, seed, randomise,
                    start, stop, executions, lane_block,
                )
                for start, stop in shard_ranges(n_batches, config)
            ],
            config,
        )
        weak = merge_litmus_shards(shards, executions)
    locations = tuple(getattr(stress_spec, "locations", ()) or ())
    return LitmusResult(
        test=test.name,
        distance=distance,
        weak=weak,
        executions=executions,
        location=locations,
        backend="vector",
    )
