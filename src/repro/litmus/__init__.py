"""Litmus tests, their IR and the two execution backends.

The paper tunes its memory stress against the three classic weak-memory
litmus tests — message passing (MP), load buffering (LB) and store
buffering (SB) — configured with the communication locations in global
memory and the communicating threads in distinct blocks (Sec. 2, 3.1).
This package generalises that triple into a declarative IR
(:mod:`repro.litmus.ir`): N-thread programs of ``st``/``ld``/``fence``/
``rmw`` instructions with a declarative forbidden outcome, a registry of
fenced variants, coherence tests and 3/4-thread idioms
(:mod:`repro.litmus.tests`), a fast direct runner
(:mod:`repro.litmus.runner`), a compiled SIMT-engine backend
(:mod:`repro.litmus.compile`) and a brute-force SC oracle
(:mod:`repro.litmus.sc`).
"""

from .ir import (
    And,
    LocEq,
    Or,
    RegEq,
    evaluate,
    fence,
    format_condition,
    ld,
    rmw,
    st,
)
from .tests import (
    ALL_TESTS,
    FENCED_VARIANTS,
    LB,
    MP,
    SB,
    TUNING_TESTS,
    LitmusTest,
    get_test,
    test_names,
)
from .runner import LitmusInstance, run_litmus
from .compile import (
    CompiledLitmus,
    ParityReport,
    backend_parity,
    compile_test,
    run_litmus_compiled,
)
from .sc import forbidden_sc_reachable, sc_outcomes
from .results import LitmusResult, Tally

__all__ = [
    "MP",
    "LB",
    "SB",
    "ALL_TESTS",
    "TUNING_TESTS",
    "FENCED_VARIANTS",
    "LitmusTest",
    "get_test",
    "test_names",
    "And",
    "Or",
    "RegEq",
    "LocEq",
    "evaluate",
    "format_condition",
    "st",
    "ld",
    "fence",
    "rmw",
    "LitmusInstance",
    "run_litmus",
    "CompiledLitmus",
    "compile_test",
    "run_litmus_compiled",
    "ParityReport",
    "backend_parity",
    "forbidden_sc_reachable",
    "sc_outcomes",
    "LitmusResult",
    "Tally",
]
