"""Litmus tests, their IR and the three execution backends.

The paper tunes its memory stress against the three classic weak-memory
litmus tests — message passing (MP), load buffering (LB) and store
buffering (SB) — configured with the communication locations in global
memory and the communicating threads in distinct blocks (Sec. 2, 3.1).
This package generalises that triple into a declarative IR
(:mod:`repro.litmus.ir`): N-thread programs of ``st``/``ld``/``fence``/
``rmw`` instructions with a declarative forbidden outcome, a registry of
fenced variants, coherence tests and 3/4-thread idioms
(:mod:`repro.litmus.tests`), a fast direct runner
(:mod:`repro.litmus.runner`), a compiled SIMT-engine backend
(:mod:`repro.litmus.compile`), a vectorized mega-batch backend
(:mod:`repro.litmus.vector`) and a brute-force SC oracle
(:mod:`repro.litmus.sc`).
"""

from .ir import (
    And,
    LocEq,
    Or,
    RegEq,
    evaluate,
    fence,
    format_condition,
    ld,
    rmw,
    st,
)
from .tests import (
    ALL_TESTS,
    FENCED_VARIANTS,
    LB,
    MP,
    SB,
    TUNING_TESTS,
    LitmusTest,
    get_test,
    test_names,
)
from .runner import LitmusInstance, run_litmus
from .compile import (
    CompiledLitmus,
    ParityReport,
    backend_parity,
    compile_test,
    run_litmus_compiled,
)
from .vector import run_litmus_vector
from .sc import forbidden_sc_reachable, sc_outcomes
from .results import LitmusResult, Tally

#: Runner dispatch: every litmus backend, keyed by its CLI/ledger name.
#: All three share one signature (chip, test, distance, stress_spec,
#: executions, *, seed, randomise, parallel) and tag their results with
#: ``LitmusResult.backend`` so ledger keys never collide across
#: backends.
BACKENDS = {
    "direct": run_litmus,
    "engine": run_litmus_compiled,
    "vector": run_litmus_vector,
}

__all__ = [
    "MP",
    "LB",
    "SB",
    "ALL_TESTS",
    "TUNING_TESTS",
    "FENCED_VARIANTS",
    "LitmusTest",
    "get_test",
    "test_names",
    "And",
    "Or",
    "RegEq",
    "LocEq",
    "evaluate",
    "format_condition",
    "st",
    "ld",
    "fence",
    "rmw",
    "LitmusInstance",
    "run_litmus",
    "CompiledLitmus",
    "compile_test",
    "run_litmus_compiled",
    "run_litmus_vector",
    "BACKENDS",
    "ParityReport",
    "backend_parity",
    "forbidden_sc_reachable",
    "sc_outcomes",
    "LitmusResult",
    "Tally",
]
