"""Litmus tests and their runner (paper Sec. 2 and Sec. 3.1).

The paper tunes its memory stress against the three classic weak-memory
litmus tests — message passing (MP), load buffering (LB) and store
buffering (SB) — configured with the two communication locations in
global memory and the two communicating threads in distinct blocks.
"""

from .tests import LB, MP, SB, ALL_TESTS, LitmusTest, get_test
from .runner import LitmusInstance, run_litmus
from .results import LitmusResult, Tally

__all__ = [
    "MP",
    "LB",
    "SB",
    "ALL_TESTS",
    "LitmusTest",
    "get_test",
    "LitmusInstance",
    "run_litmus",
    "LitmusResult",
    "Tally",
]
