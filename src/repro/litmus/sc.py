"""Brute-force sequential-consistency oracle for litmus IR tests.

A litmus test's *forbidden* outcome must be unreachable under sequential
consistency — that is what makes observing it evidence of weak memory
(paper Sec. 2).  This module enumerates every SC interleaving of a
test's thread programs (each instruction executes atomically against a
single global memory, in program order per thread) and checks whether
any final state satisfies the forbidden condition.

Registered tests have at most four threads of a few instructions, so
exhaustive enumeration with state memoisation is instant; the test
suite runs every registry entry through :func:`forbidden_sc_reachable`
to guarantee the registry never ships a vacuous test.
"""

from __future__ import annotations

from .tests import LitmusTest


def _final_key(regs: dict, mem: dict) -> tuple:
    return (tuple(sorted(regs.items())), tuple(sorted(mem.items())))


def sc_outcomes(test: LitmusTest) -> set:
    """All final (registers, memory) valuations reachable under SC.

    Returns a set of ``(regs_items, mem_items)`` pairs of sorted item
    tuples.  Registers unwritten at the end (impossible for complete
    programs) and untouched locations default to 0 at evaluation time.
    """
    n = test.n_threads
    programs = test.threads
    lengths = tuple(len(p) for p in programs)
    outcomes: set = set()
    seen: set = set()

    def rec(pcs: tuple, mem: dict, regs: dict) -> None:
        state = (pcs, _final_key(regs, mem))
        if state in seen:
            return
        seen.add(state)
        if pcs == lengths:
            outcomes.add(_final_key(regs, mem))
            return
        for t in range(n):
            pc = pcs[t]
            if pc >= lengths[t]:
                continue
            ins = programs[t][pc]
            kind = ins[0]
            next_pcs = pcs[:t] + (pc + 1,) + pcs[t + 1:]
            if kind == "st":
                mem2 = dict(mem)
                mem2[ins[1]] = ins[2]
                rec(next_pcs, mem2, regs)
            elif kind == "ld":
                regs2 = dict(regs)
                regs2[ins[2]] = mem.get(ins[1], 0)
                rec(next_pcs, mem, regs2)
            elif kind == "rmw":
                regs2 = dict(regs)
                regs2[ins[2]] = mem.get(ins[1], 0)
                mem2 = dict(mem)
                mem2[ins[1]] = ins[3]
                rec(next_pcs, mem2, regs2)
            else:  # fence — no-op under SC
                rec(next_pcs, mem, regs)

    rec((0,) * n, {}, {})
    return outcomes


def forbidden_sc_reachable(test: LitmusTest) -> bool:
    """True when some SC interleaving reaches the forbidden outcome.

    A well-formed litmus test returns False: its forbidden outcome is
    exactly the valuation SC rules out.
    """
    for regs_items, mem_items in sc_outcomes(test):
        regs = dict(regs_items)
        final = dict(mem_items)
        if test.weak(regs, final):
            return True
    return False
