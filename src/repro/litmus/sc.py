"""Brute-force sequential-consistency oracle for litmus IR tests.

A litmus test's *forbidden* outcome must be unreachable under sequential
consistency — that is what makes observing it evidence of weak memory
(paper Sec. 2).  This module enumerates every SC interleaving of a
test's thread programs (each instruction executes atomically against a
single global memory, in program order per thread) and checks whether
any final state satisfies the forbidden condition.

The enumerator is tuned for synthesis-scale use (thousands of candidate
programs filtered per run, see :mod:`repro.axiom.synth`): interleaving
states are hashed index tuples rather than dict copies, the walk is an
iterative worklist instead of recursion, and whole results are memoised
per program under :func:`functools.lru_cache` — two tests with the same
thread programs (conditions differ) share one enumeration.
"""

from __future__ import annotations

from functools import lru_cache

from .ir import I_FENCE, I_LOAD, I_RMW, I_STORE
from .tests import LitmusTest

_ST, _LD, _RMW, _FENCE = 0, 1, 2, 3
_OPCODE = {I_STORE: _ST, I_LOAD: _LD, I_RMW: _RMW, I_FENCE: _FENCE}


@lru_cache(maxsize=4096)
def _sc_outcomes(threads: tuple) -> frozenset:
    """Memoised core: all SC-reachable final states of ``threads``.

    A state during the walk is ``(pcs, regs, mem)`` with registers and
    memory as value tuples over pre-assigned indices.  Whether a
    register has been written or a location stored is a function of
    ``pcs`` alone (each register is the target of exactly one read, and
    stores-before-pc is determined by pc), so the presence masks the
    old dict-based enumerator carried implicitly need not be part of
    the key.
    """
    reg_index: dict = {}
    loc_index: dict = {}
    stored: set = set()
    programs = []
    for program in threads:
        ops = []
        for ins in program:
            code = _OPCODE[ins[0]]
            if code == _FENCE:
                ops.append((code, 0, 0, 0))
                continue
            loc = loc_index.setdefault(ins[1], len(loc_index))
            if code == _ST:
                stored.add(loc)
                ops.append((code, loc, ins[2], 0))
            elif code == _LD:
                reg = reg_index.setdefault(ins[2], len(reg_index))
                ops.append((code, loc, reg, 0))
            else:  # rmw: read old value into reg, store new value
                stored.add(loc)
                reg = reg_index.setdefault(ins[2], len(reg_index))
                ops.append((code, loc, reg, ins[3]))
        programs.append(tuple(ops))

    n = len(programs)
    lengths = tuple(len(p) for p in programs)
    reg_names = tuple(sorted(reg_index, key=reg_index.get))
    # Final memory covers exactly the stored locations, like the
    # dict-based enumerator whose mem only ever gained stored keys.
    stored_locs = tuple(sorted(
        ((name, idx) for name, idx in loc_index.items() if idx in stored),
        key=lambda pair: pair[1],
    ))

    start = ((0,) * n, (0,) * len(reg_index), (0,) * len(loc_index))
    seen = {start}
    stack = [start]
    outcomes = set()
    while stack:
        pcs, regs, mem = stack.pop()
        if pcs == lengths:
            outcomes.add((
                tuple(sorted(zip(reg_names, regs))),
                tuple(sorted((name, mem[idx]) for name, idx in stored_locs)),
            ))
            continue
        for t in range(n):
            pc = pcs[t]
            if pc >= lengths[t]:
                continue
            code, loc, a, b = programs[t][pc]
            next_pcs = pcs[:t] + (pc + 1,) + pcs[t + 1:]
            if code == _ST:
                state = (next_pcs, regs,
                         mem[:loc] + (a,) + mem[loc + 1:])
            elif code == _LD:
                state = (next_pcs,
                         regs[:a] + (mem[loc],) + regs[a + 1:], mem)
            elif code == _RMW:
                state = (next_pcs,
                         regs[:a] + (mem[loc],) + regs[a + 1:],
                         mem[:loc] + (b,) + mem[loc + 1:])
            else:  # fence — no-op under SC
                state = (next_pcs, regs, mem)
            if state not in seen:
                seen.add(state)
                stack.append(state)
    return frozenset(outcomes)


def sc_outcomes(test: LitmusTest) -> set:
    """All final (registers, memory) valuations reachable under SC.

    Returns a set of ``(regs_items, mem_items)`` pairs of sorted item
    tuples.  Registers unwritten at the end (impossible for complete
    programs) and untouched locations default to 0 at evaluation time.
    """
    return set(_sc_outcomes(test.threads))


def forbidden_sc_reachable(test: LitmusTest) -> bool:
    """True when some SC interleaving reaches the forbidden outcome.

    A well-formed litmus test returns False: its forbidden outcome is
    exactly the valuation SC rules out.
    """
    for regs_items, mem_items in _sc_outcomes(test.threads):
        regs = dict(regs_items)
        final = dict(mem_items)
        if test.weak(regs, final):
            return True
    return False
