"""Result records for litmus campaigns."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class LitmusResult:
    """Outcome of ``executions`` runs of one litmus test instance.

    ``backend`` records which execution path produced the result: the
    ``"direct"`` memory-system fast path or the compiled SIMT
    ``"engine"`` path (see :mod:`repro.litmus.compile`).
    """

    test: str
    distance: int
    weak: int
    executions: int
    location: tuple[int, ...] = ()
    backend: str = "direct"

    @property
    def rate(self) -> float:
        """Fraction of executions exhibiting the weak behaviour."""
        return self.weak / self.executions if self.executions else 0.0


@dataclass
class Tally:
    """Accumulates weak-behaviour counts keyed by arbitrary tuples.

    Used by the tuning pipeline to sum scores over distances and
    stressing locations (the paper's per-sequence and per-spread
    "scores").
    """

    counts: dict = field(default_factory=lambda: defaultdict(int))

    def add(self, key, weak: int) -> None:
        self.counts[key] += weak

    def score(self, key) -> int:
        return self.counts.get(key, 0)

    def ranked(self) -> list[tuple[object, int]]:
        """Keys sorted by descending score."""
        return sorted(self.counts.items(), key=lambda kv: -kv[1])
