"""Seeded random-number utilities.

All stochastic components of the simulator and the experiment harness draw
from :class:`numpy.random.Generator` instances created here, so that every
experiment is reproducible from a single integer seed.

Streams are *split* by hashing a parent seed together with a string label,
which keeps independent components (scheduler, memory system, stressing,
campaign driver) decoupled: adding draws to one component does not perturb
another.
"""

from __future__ import annotations

import zlib

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(parent: int, *labels: object) -> int:
    """Derive a child seed from ``parent`` and a sequence of labels.

    The derivation is stable across processes and Python versions (it uses
    CRC32 over the repr of the labels rather than ``hash``, which is
    salted for strings).
    """
    acc = parent & _MASK64
    for label in labels:
        token = repr(label).encode("utf-8")
        acc = (acc * 6364136223846793005 + zlib.crc32(token) + 1) & _MASK64
    return acc


def make_rng(seed: int, *labels: object) -> np.random.Generator:
    """Create a generator for the stream identified by ``seed`` + labels."""
    return np.random.default_rng(derive_seed(seed, *labels))


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Spawn a fresh independent generator from an existing one."""
    return np.random.default_rng(rng.integers(0, _MASK64, dtype=np.uint64))
