"""Seeded random-number utilities.

All stochastic components of the simulator and the experiment harness draw
from :class:`numpy.random.Generator` instances created here, so that every
experiment is reproducible from a single integer seed.

Streams are *split* by hashing a parent seed together with a string label,
which keeps independent components (scheduler, memory system, stressing,
campaign driver) decoupled: adding draws to one component does not perturb
another.
"""

from __future__ import annotations

import zlib

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(parent: int, *labels: object) -> int:
    """Derive a child seed from ``parent`` and a sequence of labels.

    The derivation is stable across processes and Python versions (it uses
    CRC32 over the repr of the labels rather than ``hash``, which is
    salted for strings).
    """
    acc = parent & _MASK64
    for label in labels:
        token = repr(label).encode("utf-8")
        acc = (acc * 6364136223846793005 + zlib.crc32(token) + 1) & _MASK64
    return acc


def make_rng(seed: int, *labels: object) -> np.random.Generator:
    """Create a generator for the stream identified by ``seed`` + labels."""
    return np.random.default_rng(derive_seed(seed, *labels))


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Spawn a fresh independent generator from an existing one."""
    return np.random.default_rng(rng.integers(0, _MASK64, dtype=np.uint64))


#: Raw 64-bit words pre-drawn per refill.
_BLOCK = 128
#: A sync that consumed fewer scalars than this counts as "poor": the
#: stream is interleaving delegated draws too densely for block
#: pre-drawing to pay off.
_POOR_SYNC = 8
#: Consecutive poor syncs before the wrapper degrades to direct mode.
_DIRECT_AFTER = 3

#: ``next_double`` scale factor: a double is ``(uint64 >> 11) * 2**-53``.
_INV53 = 1.0 / 9007199254740992.0
_SHIFT11 = np.uint64(11)
_MASK32 = 0xFFFFFFFF
_2POW32 = 0x100000000
_2POW128 = 1 << 128


class BufferedRNG:
    """Block-buffering wrapper around a :class:`numpy.random.Generator`.

    Scalar ``random()`` and ``integers()`` calls dominate the
    simulator's hot loops, and each one pays the full numpy call
    overhead.  This wrapper pre-draws the underlying PCG64 *bit stream*
    in blocks (``bit_generator.random_raw(size=N)``) and reproduces
    numpy's own output functions from it, bit for bit:

    * ``random()`` — one raw word per double, ``(raw >> 11) * 2**-53``
      (exactly ``next_double``);
    * scalar ``integers(low, high)`` with a span that fits in 32 bits —
      numpy's Lemire rejection over buffered 32-bit halves (low half of
      a raw word first, high half kept for the next draw), including
      the persistent cross-call half-word buffer.

    Because both emulations consume the identical stream the scalar
    calls would have consumed, every downstream statistic is unchanged
    (the golden-statistics suite and ``tests/test_rng.py`` pin this
    against real ``Generator`` histories).

    Any other draw (``choice``, ``uniform``, vector ``integers``, …)
    *delegates* to the real generator.  Before delegating, the wrapper
    syncs: it rewinds the bit generator past the unconsumed pre-draws
    (``PCG64.advance`` by ``2**128 - leftover``; one double is one
    64-bit step) and installs any pending half-word into the real
    generator's state; after a delegated call that may buffer a half
    word (bounded integer paths), it captures that buffer back out.
    The real generator is therefore indistinguishable from one with a
    scalar-only history at every delegation boundary.

    Workloads that interleave delegated draws tightly (the engine's
    scheduler under thread randomisation draws ``choice`` every tick)
    would pay the rewind on every sync; after ``_DIRECT_AFTER``
    consecutive poor syncs the wrapper permanently degrades to direct
    delegation, making it safe to thread through any call site.
    Non-PCG64 bit generators run in direct mode from construction (the
    emulation is PCG64-specific); delegation is correct for every
    Generator, just unbuffered.
    """

    __slots__ = (
        "gen",
        "_bit",
        "_raw",
        "_dbuf",
        "_i",
        "_n",
        "_has32",
        "_u32",
        "_poor_syncs",
        "_direct",
    )

    def __init__(self, gen: np.random.Generator, direct: bool = False):
        if isinstance(gen, BufferedRNG):  # pragma: no cover - misuse guard
            gen = gen.gen
        self.gen = gen
        self._bit = gen.bit_generator
        # The emulation is PCG64-specific: 64-bit raw words, one word
        # per double, advance()-rewind, and the has_uint32/uinteger
        # state schema.  Any other bit generator runs in direct mode —
        # pure delegation, correct for every Generator, just unbuffered.
        if not isinstance(
            self._bit, (np.random.PCG64, np.random.PCG64DXSM)
        ):
            direct = True
        self._raw = None
        self._dbuf: list[float] = []
        self._i = 0
        self._n = 0
        self._has32 = False
        self._u32 = 0
        self._poor_syncs = 0
        self._direct = direct

    # ------------------------------------------------------------------
    # emulated draws
    # ------------------------------------------------------------------
    def random(self, size=None):
        """Uniform double(s); scalar calls are served from the block."""
        if size is not None:
            if self._direct:
                return self.gen.random(size=size)
            self._sync()
            out = self.gen.random(size=size)
            self._capture()
            return out
        if self._direct:
            return self.gen.random()
        i = self._i
        if i >= self._n:
            self._refill()
            i = 0
        self._i = i + 1
        return self._dbuf[i]

    def integers(self, low, high=None, size=None, **kwargs):
        """Bounded integer(s).  The scalar default-dtype case is served
        from the block via numpy's own Lemire-over-halves algorithm;
        anything else delegates."""
        if self._direct:
            # Direct mode owns nothing: the real generator's own
            # half-word buffer carries the cross-call state natively.
            return self.gen.integers(low, high, size=size, **kwargs)
        if (
            size is not None
            or kwargs
            or type(low) is not int
            or (high is not None and type(high) is not int)
        ):
            self._sync()
            out = self.gen.integers(low, high, size=size, **kwargs)
            self._capture()
            return out
        if high is None:
            lo, hi = 0, low
        else:
            lo, hi = low, high
        span = hi - lo - 1  # inclusive range width (numpy's ``rng``)
        if span <= 0 or span >= _MASK32:
            # span==0 draws nothing in numpy; <0 raises; ==2**32-1 and
            # 64-bit spans use different C paths — delegate all of them.
            self._sync()
            out = self.gen.integers(low, high)
            self._capture()
            return out
        return lo + self._lemire32(span + 1)

    def _lemire32(self, span_excl: int) -> int:
        """One bounded draw from ``[0, span_excl)`` — numpy's Lemire
        rejection over 32-bit halves (``span_excl`` must fit 32 bits;
        1 draws nothing, exactly like numpy's zero-width case).  Safe
        on a direct-mode wrapper: it delegates instead of touching the
        block machinery."""
        if span_excl == 1:
            return 0
        if self._direct:
            return int(self.gen.integers(0, span_excl))
        m = self._next32() * span_excl
        leftover = m & _MASK32
        if leftover < span_excl:
            threshold = (_2POW32 - span_excl) % span_excl
            while leftover < threshold:
                m = self._next32() * span_excl
                leftover = m & _MASK32
        return m >> 32

    def _next32(self) -> int:
        """Next 32-bit word: numpy's buffered split of a 64-bit draw
        (low half first, high half kept for the following call)."""
        if self._has32:
            self._has32 = False
            return self._u32
        i = self._i
        if i >= self._n:
            self._refill()
            i = 0
        self._i = i + 1
        r = int(self._raw[i])
        self._has32 = True
        self._u32 = r >> 32
        return r & _MASK32

    def _refill(self) -> None:
        raw = self._bit.random_raw(size=_BLOCK)
        self._raw = raw
        self._dbuf = ((raw >> _SHIFT11) * _INV53).tolist()
        self._n = _BLOCK
        self._i = 0

    # ------------------------------------------------------------------
    # delegation machinery
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Make the real generator's state equal the logical stream
        position (rewind unconsumed pre-draws, install a pending half
        word) so a delegated call draws exactly what a scalar-only
        history would have drawn."""
        leftover = self._n - self._i
        if leftover:
            consumed = self._i
            # One double = one 64-bit PCG64 step; step back past the
            # unconsumed tail (advance is modulo 2**128).
            self._bit.advance(_2POW128 - leftover)
            if consumed < _POOR_SYNC:
                self._poor_syncs += 1
                if self._poor_syncs >= _DIRECT_AFTER:
                    self._direct = True
            else:
                self._poor_syncs = 0
        self._raw = None
        self._dbuf = []
        self._i = 0
        self._n = 0
        if self._has32:
            state = self._bit.state
            state["has_uint32"] = 1
            state["uinteger"] = self._u32
            self._bit.state = state
            self._has32 = False

    def _capture(self) -> None:
        """Take ownership of the real generator's buffered half word
        after a delegated call, so later emulated draws consume it first
        — exactly as a scalar-only history would.  (In direct mode the
        real generator keeps its own buffer.)"""
        if self._direct:
            return
        state = self._bit.state
        if state["has_uint32"]:
            self._has32 = True
            self._u32 = int(state["uinteger"])
            state["has_uint32"] = 0
            state["uinteger"] = 0
            self._bit.state = state

    # -- delegated distributions (sync first, then capture: a pending
    # half word installed by the sync survives double-only draws and
    # must come back under the wrapper's ownership) ---------------------
    def uniform(self, *args, **kwargs):
        if self._direct:
            return self.gen.uniform(*args, **kwargs)
        self._sync()
        out = self.gen.uniform(*args, **kwargs)
        self._capture()
        return out

    def dirichlet(self, *args, **kwargs):
        if self._direct:
            return self.gen.dirichlet(*args, **kwargs)
        self._sync()
        out = self.gen.dirichlet(*args, **kwargs)
        self._capture()
        return out

    def choice(self, a, size=None, replace=True, p=None, axis=0, shuffle=True):
        if (
            not self._direct
            and replace is False
            and p is None
            and shuffle
            and axis == 0
            and type(a) is int
            and type(size) is int
            and 0 < size <= a <= _MASK32
        ):
            # numpy's sample-without-replacement for an integer
            # population: Floyd's algorithm followed by a Fisher-Yates
            # shuffle of the result, all on bounded 32-bit draws —
            # emulated from the block (verified exact in test_rng).
            idx = []
            seen = set()
            for j in range(a - size, a):
                t = self._lemire32(j + 1)
                if t in seen:
                    t = j
                seen.add(t)
                idx.append(t)
            for i in range(size - 1, 0, -1):
                j = self._lemire32(i + 1)
                idx[i], idx[j] = idx[j], idx[i]
            return np.array(idx, dtype=np.int64)
        if self._direct:
            return self.gen.choice(
                a, size=size, replace=replace, p=p, axis=axis, shuffle=shuffle
            )
        self._sync()
        out = self.gen.choice(
            a, size=size, replace=replace, p=p, axis=axis, shuffle=shuffle
        )
        self._capture()
        return out

    def permutation(self, *args, **kwargs):
        if self._direct:
            return self.gen.permutation(*args, **kwargs)
        self._sync()
        out = self.gen.permutation(*args, **kwargs)
        self._capture()
        return out

    def shuffle(self, *args, **kwargs):
        if self._direct:
            return self.gen.shuffle(*args, **kwargs)
        self._sync()
        out = self.gen.shuffle(*args, **kwargs)
        self._capture()
        return out

    def __getattr__(self, name):
        # Rare path: any other Generator attribute.  Sync so even a
        # stored bound method observes a consistent stream; capture
        # conservatively in case the call buffers a half word.
        self._sync()
        attr = getattr(self.gen, name)
        if callable(attr):
            def call_and_capture(*args, **kwargs):
                out = attr(*args, **kwargs)
                self._capture()
                return out

            return call_and_capture
        return attr
