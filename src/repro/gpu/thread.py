"""Thread context: the CUDA-like surface kernels program against.

Kernels are generator functions taking a :class:`ThreadContext` first,
e.g.::

    def dot_kernel(ctx, a, b, c, mutex, n):
        tid = ctx.global_tid()
        acc = 0.0
        while tid < n:
            av = yield from ctx.load(a, tid)
            bv = yield from ctx.load(b, tid)
            acc += av * bv
            tid += ctx.block_dim * ctx.grid_dim
        ...

Every memory operation is a ``yield from`` so the engine can interleave
warps at memory-operation granularity.  Device helper functions (locks,
queue operations) are themselves generators invoked with ``yield from``,
mirroring CUDA ``__device__`` functions.

Fence *sites*: each memory access in an application can carry a ``site``
label.  If the label is in the context's active ``fence_sites`` set, a
device fence is executed immediately after the access — this is the
instrumentation used by empirical fence insertion (paper Sec. 5), whose
starting point is "a fence after every memory access".
"""

from __future__ import annotations

from .addresses import Buffer
from .events import (
    FENCE_BLOCK,
    FENCE_DEVICE,
    OP_BARRIER,
    OP_FENCE,
    OP_ISSUE,
    OP_LOAD,
    OP_NOOP,
    OP_POLL,
    OP_RMW,
    OP_STORE,
)


#: Issue latency of atomic read-modify-writes, in cycles.  GPU atomics
#: are considerably slower than plain accesses; the latency also gives
#: program-order-earlier buffered stores a head start on draining, which
#: is why unlock races are rare natively.
_ATOMIC_LATENCY = 2


class ThreadContext:
    """Per-thread view of the launch: ids, dims and memory operations."""

    __slots__ = (
        "tid",
        "block_id",
        "block_dim",
        "grid_dim",
        "warp_size",
        "fence_sites",
    )

    def __init__(
        self,
        tid: int,
        block_id: int,
        block_dim: int,
        grid_dim: int,
        warp_size: int,
        fence_sites: frozenset[str] = frozenset(),
    ):
        self.tid = tid
        self.block_id = block_id
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.warp_size = warp_size
        self.fence_sites = fence_sites

    # ------------------------------------------------------------------
    # id helpers (CUDA primitives)
    # ------------------------------------------------------------------
    def global_tid(self) -> int:
        """``threadIdx.x + blockIdx.x * blockDim.x``."""
        return self.tid + self.block_id * self.block_dim

    @property
    def warp_id(self) -> int:
        """Warp index of this thread within its block."""
        return self.tid // self.warp_size

    @property
    def lane(self) -> int:
        """Lane index of this thread within its warp."""
        return self.tid % self.warp_size

    @property
    def n_threads(self) -> int:
        """Total threads in the grid."""
        return self.block_dim * self.grid_dim

    # ------------------------------------------------------------------
    # memory operations (generators; use with ``yield from``)
    # ------------------------------------------------------------------
    # Site fences are expanded inline (``site in self.fence_sites``
    # followed by a plain ``yield``) rather than via a helper generator:
    # every memory access would otherwise build and exhaust one
    # sub-generator per operation, a measurable cost in campaign-scale
    # runs.  The yielded op stream is identical either way.

    def load(self, buf: Buffer, idx: int, site: str | None = None):
        """Global load; returns the loaded value."""
        value = yield (OP_LOAD, buf.addr(idx))
        if site is not None and site in self.fence_sites:
            yield (OP_FENCE, FENCE_DEVICE)
        return value

    def store(self, buf: Buffer, idx: int, val, site: str | None = None):
        """Global store (buffered; becomes visible when it drains)."""
        yield (OP_STORE, buf.addr(idx), val)
        if site is not None and site in self.fence_sites:
            yield (OP_FENCE, FENCE_DEVICE)

    def issue_load(self, buf: Buffer, idx: int):
        """Issue a deferred load; returns a handle for ``await_load``.

        The issue/resolve split mirrors how generated litmus kernels
        only read their registers at the very end of the test, so the
        load may resolve after program-order-later operations — the
        LB-shaped reordering (see :class:`repro.gpu.memory.DeferredLoad`).
        """
        handle = yield (OP_ISSUE, buf.addr(idx))
        return handle

    def await_load(self, handle):
        """Block until a deferred load resolves; returns its value."""
        value = yield (OP_POLL, handle)
        return value

    def atomic_cas(
        self, buf: Buffer, idx: int, compare, val, site: str | None = None
    ):
        """``atomicCAS``: returns the old value."""
        for _ in range(_ATOMIC_LATENCY):
            yield (OP_NOOP,)
        old = yield (
            OP_RMW,
            buf.addr(idx),
            lambda cur: val if cur == compare else cur,
        )
        if site is not None and site in self.fence_sites:
            yield (OP_FENCE, FENCE_DEVICE)
        return old

    def atomic_exch(self, buf: Buffer, idx: int, val, site: str | None = None):
        """``atomicExch``: returns the old value."""
        for _ in range(_ATOMIC_LATENCY):
            yield (OP_NOOP,)
        old = yield (OP_RMW, buf.addr(idx), lambda _cur: val)
        if site is not None and site in self.fence_sites:
            yield (OP_FENCE, FENCE_DEVICE)
        return old

    def atomic_add(self, buf: Buffer, idx: int, delta, site: str | None = None):
        """``atomicAdd``: returns the old value."""
        for _ in range(_ATOMIC_LATENCY):
            yield (OP_NOOP,)
        old = yield (OP_RMW, buf.addr(idx), lambda cur: cur + delta)
        if site is not None and site in self.fence_sites:
            yield (OP_FENCE, FENCE_DEVICE)
        return old

    def atomic_inc_mod(
        self, buf: Buffer, idx: int, limit: int, site: str | None = None
    ):
        """``atomicInc``: old value; wraps to 0 when old == limit."""
        for _ in range(_ATOMIC_LATENCY):
            yield (OP_NOOP,)
        old = yield (
            OP_RMW,
            buf.addr(idx),
            lambda cur: 0 if cur >= limit else cur + 1,
        )
        if site is not None and site in self.fence_sites:
            yield (OP_FENCE, FENCE_DEVICE)
        return old

    # ------------------------------------------------------------------
    # ordering operations
    # ------------------------------------------------------------------
    def fence_device(self):
        """``__threadfence()``: order prior accesses device-wide."""
        yield (OP_FENCE, FENCE_DEVICE)

    def fence_block(self):
        """``__threadfence_block()``: order prior accesses block-wide."""
        yield (OP_FENCE, FENCE_BLOCK)

    def syncthreads(self):
        """``__syncthreads()``: block barrier with memory consistency."""
        yield (OP_BARRIER,)

    def compute(self, cycles: int = 1):
        """Model ``cycles`` of pure computation (no memory traffic)."""
        for _ in range(cycles):
            yield (OP_NOOP,)
