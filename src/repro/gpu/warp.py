"""Runtime thread and warp structures.

A :class:`SimThread` owns one kernel coroutine plus the small amount of
state the engine needs to drive it (pending operation, sticky per-op
scratch, barrier/done flags).  A :class:`Warp` groups threads that advance
together: when the scheduler picks a warp, every active thread in it
attempts one operation — the simulator's rendering of SIMT lock-step.

Hot-path bookkeeping: each thread stores its SM (assigned at grid build,
replacing a per-run key->SM dict) and a back-reference to its warp, and
each warp maintains an ``n_active`` counter so runnability is an O(1)
attribute read instead of an O(warp-size) scan per scheduler pick.  The
engine owns the counter transitions (thread finished, thread parked at a
barrier, barrier released); ``Warp.runnable`` just reads it.
"""

from __future__ import annotations

from .thread import ThreadContext


class SimThread:
    """One simulated GPU thread."""

    __slots__ = (
        "key",
        "ctx",
        "gen",
        "sm",
        "warp",
        "op",
        "op_state",
        "to_send",
        "started",
        "done",
        "at_barrier",
        "sleep_until",
    )

    def __init__(self, key: int, ctx: ThreadContext, gen, sm: int = 0):
        self.key = key
        self.ctx = ctx
        self.gen = gen
        self.sm = sm
        self.warp: "Warp | None" = None
        self.op: tuple | None = None
        self.op_state: dict = {}
        self.to_send: object = None
        self.started = False
        self.done = False
        self.at_barrier = False
        self.sleep_until = 0

    @property
    def active(self) -> bool:
        """Thread can make progress this tick."""
        return not self.done and not self.at_barrier


class Warp:
    """A set of threads that advance together (lock-step)."""

    __slots__ = ("block_id", "warp_id", "index", "threads", "n_active")

    def __init__(self, block_id: int, warp_id: int, threads: list[SimThread]):
        self.block_id = block_id
        self.warp_id = warp_id
        #: Position in the grid's flat warp list (set by :class:`Grid`);
        #: the scheduler keeps its runnable list in this order.
        self.index = 0
        self.threads = threads
        #: Threads that are neither done nor parked at a barrier.  The
        #: engine decrements/increments this on the corresponding thread
        #: transitions; it must always equal ``sum(t.active)``.
        self.n_active = len(threads)
        for thread in threads:
            thread.warp = self

    @property
    def finished(self) -> bool:
        return all(t.done for t in self.threads)

    @property
    def runnable(self) -> bool:
        return self.n_active > 0
