"""Runtime thread and warp structures.

A :class:`SimThread` owns one kernel coroutine plus the small amount of
state the engine needs to drive it (pending operation, sticky per-op
scratch, barrier/done flags).  A :class:`Warp` groups threads that advance
together: when the scheduler picks a warp, every active thread in it
attempts one operation — the simulator's rendering of SIMT lock-step.
"""

from __future__ import annotations

from .thread import ThreadContext


class SimThread:
    """One simulated GPU thread."""

    __slots__ = (
        "key",
        "ctx",
        "gen",
        "op",
        "op_state",
        "to_send",
        "started",
        "done",
        "at_barrier",
        "sleep_until",
    )

    def __init__(self, key: int, ctx: ThreadContext, gen):
        self.key = key
        self.ctx = ctx
        self.gen = gen
        self.op: tuple | None = None
        self.op_state: dict = {}
        self.to_send: object = None
        self.started = False
        self.done = False
        self.at_barrier = False
        self.sleep_until = 0

    @property
    def active(self) -> bool:
        """Thread can make progress this tick."""
        return not self.done and not self.at_barrier


class Warp:
    """A set of threads that advance together (lock-step)."""

    __slots__ = ("block_id", "warp_id", "threads")

    def __init__(self, block_id: int, warp_id: int, threads: list[SimThread]):
        self.block_id = block_id
        self.warp_id = warp_id
        self.threads = threads

    @property
    def finished(self) -> bool:
        return all(t.done for t in self.threads)

    @property
    def runnable(self) -> bool:
        return any(t.active for t in self.threads)
