"""Operation kinds exchanged between kernel coroutines and the engine.

Kernel code never constructs these directly; the :class:`ThreadContext`
methods yield them.  They are plain tuples for speed — the first element
is one of the ``OP_*`` constants below — since the engine processes
millions of them in a large campaign.

Formats::

    (OP_LOAD,  addr)                 -> engine sends the loaded value
    (OP_STORE, addr, value)          -> acknowledged when buffered
    (OP_RMW,   addr, fn)             -> engine sends the old value;
                                        fn(old) returns the new value
    (OP_FENCE, level)                -> level is "device" or "block"
    (OP_BARRIER,)                    -> block-wide barrier
    (OP_NOOP,)                       -> one cycle of compute
    (OP_ISSUE, addr)                 -> engine sends a DeferredLoad
                                        handle (issue/resolve split)
    (OP_POLL,  handle)               -> engine sends the value once the
                                        deferred load has resolved

The issue/poll pair is how compiled litmus kernels observe LB-shaped
reordering on the engine backend: real litmus tests only inspect their
registers at the end, so their loads may resolve late.
"""

from __future__ import annotations

OP_LOAD = "ld"
OP_STORE = "st"
OP_RMW = "rmw"
OP_FENCE = "fence"
OP_BARRIER = "bar"
OP_NOOP = "noop"
OP_ISSUE = "issue"
OP_POLL = "poll"

FENCE_DEVICE = "device"
FENCE_BLOCK = "block"

#: Sentinel returned by the memory system when an operation cannot
#: complete this tick and must be retried (buffer full, fence pending,
#: same-channel ordering stall).
STALL = object()
