"""The weak memory subsystem.

Operational model (see DESIGN.md Sec. 4 for the rationale):

* Global memory is a flat word-addressed store.
* Each SM owns a bounded store buffer.  A store enters its SM's buffer
  and becomes visible to other SMs only when it *drains*.  Threads on the
  same SM see buffered stores early (forwarding), which keeps intra-block
  communication strong — matching real GPUs, where the paper found only
  *inter*-block idioms at risk.
* Entries to the same channel (and a fortiori the same address) drain in
  FIFO order; entries to different channels may swap with a probability
  that grows with stress pressure on the older entry's channel.  This is
  the MP-shaped write reordering.  Swaps are additionally gated on the
  two addresses being at least ``store_store_min_distance`` words apart
  (write-combining within a cache line), which is why the paper sees no
  weak behaviour for distances below the critical patch size.
* A load first forwards from its own SM's buffer.  If the loading thread
  itself has unrelated stores buffered, the load normally waits for them
  (program order); with a pressure-dependent probability it *bypasses*
  them instead — the SB-shaped reordering.
* Deferred loads (issue/resolve split, used by the litmus runner the way
  real litmus tests only inspect registers at the end) may resolve late,
  after program-order-later stores have drained — the LB-shaped
  reordering.
* Atomic read-modify-writes act on global memory immediately and are
  **not** fences: program-order-earlier buffered stores can still be
  pending when the RMW becomes visible.  This reproduces, e.g., the
  cbe-dot spinlock bug of the paper's Fig. 1.
* A device fence drains the issuing thread's stores and resolves its
  deferred loads, charging the chip's fence stall cost.

All probabilistic decisions flow from the chip profile and the stress
field; on the ``sc-ref`` chip every probability is zero and the subsystem
is sequentially consistent.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..chips.profile import HardwareProfile
from .events import STALL
from .pressure import StressField

#: Probability ceiling for any single reordering decision.
_P_MAX = 0.45
#: Baseline drain latency in ticks (natively a store drains almost
#: immediately once eligible — native weak behaviours are rare).
_BASE_LATENCY = 0.05
#: Stores younger than this many ticks are not eligible to drain.
_MIN_AGE = 1
#: Base per-tick resolution probability of a slow (delayed) load;
#: pressure on the load's channel slows resolution further.
_SLOW_RESOLVE_P = 0.25
#: SB-shaped bypass is easier than store-store swaps on real silicon
#: (plain store buffering); boost relative to the chip's reorder gain.
_BYPASS_BOOST = 2.2
#: Entries the drain loop may commit per SM per tick.
_DRAIN_WIDTH = 8

#: Drain-probability multiplier for a parked store.  A store that has
#: been overtaken (by a cross-channel swap or an atomic bypass) was
#: sitting in a congested queue; it keeps draining slowly, which is what
#: gives consumers a realistic window to observe the stale value.
_PARKED_DRAIN = 0.2

# Store-buffer entry field indices (plain lists for speed).
_E_THREAD = 0
_E_ADDR = 1
_E_VAL = 2
_E_CH = 3
_E_TICK = 4
_E_PARKED = 5


class DeferredLoad:
    """A load that has been issued but whose value may resolve later.

    ``block_mode`` carries the program-order constraint the load picked
    up at issue time:

    * ``None`` — unconstrained (resolves immediately, or randomly late
      when ``slow`` — the LB-shaped delay);
    * ``("channel", ch)`` — must wait for the issuing thread's pending
      stores on channel ``ch`` (same-channel FIFO);
    * ``("stores", None)`` — must wait for all of the issuing thread's
      pending stores (a failed SB bypass);
    * ``("load", handle)`` — must wait for an earlier load by the same
      thread on the same channel (loads within a channel stay ordered,
      so MP-shaped read reordering needs distinct channels).
    """

    __slots__ = (
        "thread",
        "sm",
        "addr",
        "ch",
        "slow",
        "block_mode",
        "resolved",
        "value",
    )

    def __init__(
        self,
        thread: int,
        sm: int,
        addr: int,
        ch: int,
        slow: bool,
        block_mode: tuple | None = None,
    ):
        self.thread = thread
        self.sm = sm
        self.addr = addr
        self.ch = ch
        self.slow = slow
        self.block_mode = block_mode
        self.resolved = False
        self.value: object = None


class MemorySystem:
    """Weak global memory shared by all SMs of one simulated chip."""

    def __init__(
        self,
        profile: HardwareProfile,
        stress: StressField | None = None,
        rng: np.random.Generator | None = None,
        weak_scale: float = 1.0,
    ):
        self.profile = profile
        self.stress = stress if stress is not None else StressField.zero(profile)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.weak_scale = weak_scale

        self.mem: dict[int, object] = {}
        self.sm_buffers: list[list[list]] = [[] for _ in range(profile.n_sms)]
        self.tick = 0
        self._fencing: set[int] = set()
        self._deferred: list[DeferredLoad] = []

        # Statistics (consumed by tests and the cost model).
        self.n_drains = 0
        self.n_swaps = 0
        self.n_bypasses = 0
        self.n_slow_loads = 0

        self._precompute()

    # ------------------------------------------------------------------
    # precomputed per-channel probabilities (the stress field is static)
    # ------------------------------------------------------------------
    def _precompute(self) -> None:
        prof, stress, scale = self.profile, self.stress, self.weak_scale
        n = prof.n_channels
        turb = stress.turbulence
        sens = prof.sensitivity
        press = stress.press

        # Effective pressure per channel: stress on a channel acts with
        # that channel's sensitivity and bleeds mildly onto neighbouring
        # channels (shared arbitration), which is what gives the paper's
        # Fig. 3 its patches of *varying* height.
        idx = np.arange(n)
        dist = np.abs(idx[:, None] - idx[None, :])
        dist = np.minimum(dist, n - dist)  # ring topology
        bleed = np.where(dist == 0, 1.0, np.where(dist == 1, 0.35, 0.08))
        eff = bleed @ (press * sens)

        # Drain probability per tick for a store on channel ch.  The
        # slowdown, like the reordering probabilities, works through the
        # chip's channel sensitivity and the turbulence of the field —
        # diffuse or uniform stress barely delays any one line, which is
        # why rand-str and cache-str are weak (paper Tab. 5).
        self.drain_p = 1.0 / (
            1.0
            + _BASE_LATENCY
            + prof.latency_gain * press * sens * turb * scale
        )
        # Cross-channel store-store swap probability matrix
        # [older channel, younger channel].
        pair = eff[:, None] + prof.cross_channel_weight * eff[None, :]
        swap = prof.reorder_base + prof.reorder_gain * pair * turb
        self.swap_p = np.minimum(swap * scale + prof.store_swap_leak, _P_MAX)
        # Store-load bypass probability (SB) keyed by the *store*'s channel.
        bypass = (
            prof.reorder_base
            + _BYPASS_BOOST * prof.reorder_gain * eff * turb
        )
        self.bypass_p = np.minimum(bypass * scale, _P_MAX)
        # Slow-load probability (LB) keyed by the load's channel.
        slow = prof.load_delay_base + prof.load_delay_gain * eff * turb
        self.slow_p = np.minimum(slow * scale, _P_MAX)
        # Slow loads resolve more slowly on pressured channels.
        self.resolve_p = _SLOW_RESOLVE_P / (
            1.0 + prof.latency_gain * press * sens * turb * scale
        )
        assert self.drain_p.shape == (n,)

    def set_stress(self, stress: StressField) -> None:
        """Swap the stress field (e.g. once a scratchpad is allocated)."""
        self.stress = stress
        self._precompute()

    # ------------------------------------------------------------------
    # thread-facing operations
    # ------------------------------------------------------------------
    def read(
        self, sm: int, thread: int, addr: int, op_state: dict | None = None
    ) -> object:
        """Blocking load.  Returns the value, or ``STALL`` to retry.

        ``op_state`` is per-operation scratch owned by the engine; it
        makes the bypass decision sticky across retries so that a stalled
        load does not re-roll the dice every tick.
        """
        buf = self.sm_buffers[sm]
        load_ch = self.profile.channel(addr)
        own_pending = None
        own_same_channel = False
        for entry in reversed(buf):
            if entry[_E_ADDR] == addr:
                return entry[_E_VAL]  # SM-local forwarding
            if entry[_E_THREAD] == thread:
                if own_pending is None:
                    own_pending = entry
                if entry[_E_CH] == load_ch:
                    own_same_channel = True
        if own_same_channel:
            # Same-channel FIFO: the load waits for the store to drain.
            # This is why SB-shaped weak behaviour needs the two
            # communication locations in different patches.
            return STALL
        if own_pending is not None:
            if op_state is not None and op_state.get("waiting"):
                return STALL
            p = self.bypass_p[own_pending[_E_CH]]
            if self.rng.random() >= p:
                if op_state is not None:
                    op_state["waiting"] = True
                return STALL
            self.n_bypasses += 1
        return self.mem.get(addr, 0)

    def write(self, sm: int, thread: int, addr: int, val: object) -> bool:
        """Buffered store.  Returns False when the buffer is full."""
        buf = self.sm_buffers[sm]
        if len(buf) >= self.profile.store_buffer_capacity * 8:
            return False
        ch = self.profile.channel(addr)
        # Program order, same address: an earlier deferred load by this
        # thread must see the pre-store value.
        self._resolve_matching(thread, addr)
        buf.append([thread, addr, val, ch, self.tick, False])
        return True

    def rmw(
        self,
        sm: int,
        thread: int,
        addr: int,
        fn: Callable[[object], object],
        op_state: dict | None = None,
    ) -> object:
        """Atomic read-modify-write.  Returns the old value or ``STALL``.

        Atomics act on global memory through the atomic pipeline, so
        they are *not* ordered against the issuing thread's buffered
        stores by the channel FIFO; but neither are they fences.  The
        atomic normally waits for the thread's earlier stores to drain;
        with a pressure-dependent probability it overtakes them instead
        — this is the store/atomic reordering behind the paper's
        unlock-before-critical-store bugs (Fig. 1) and the stale-partial
        bugs of sdk-red and ct-octree.
        """
        buf = self.sm_buffers[sm]
        own_pending = None
        for entry in reversed(buf):
            if entry[_E_THREAD] == thread and entry[_E_ADDR] != addr:
                own_pending = entry
                break
        if own_pending is not None:
            if op_state is not None and op_state.get("waiting"):
                return STALL
            if self.rng.random() >= self.bypass_p[own_pending[_E_CH]]:
                if op_state is not None:
                    op_state["waiting"] = True
                return STALL
            self.n_bypasses += 1
            # The atomic jumped this thread's queued stores; they stay
            # parked in the congested write queue.
            for entry in buf:
                if entry[_E_THREAD] == thread:
                    entry[_E_PARKED] = True
        # Coherence: same-address buffered stores on this SM are ordered
        # before the atomic; commit them now (in order).
        same = [e for e in buf if e[_E_ADDR] == addr]
        for entry in same:
            buf.remove(entry)
            self._commit(entry)
        old = self.mem.get(addr, 0)
        self.mem[addr] = fn(old)
        return old

    def issue_load(self, sm: int, thread: int, addr: int) -> DeferredLoad:
        """Issue a deferred load; resolve time depends on pressure.

        Applies the same program-order constraints as a blocking
        :meth:`read` — forwarding, same-channel FIFO, and the SB bypass
        roll against the thread's own buffered stores — but without
        blocking the caller: constrained loads park on the deferred list
        and resolve when their blocking stores drain.
        """
        ch = self.profile.channel(addr)
        buf = self.sm_buffers[sm]
        # Loads within a channel stay ordered, as do loads closer than
        # the chip's reorder distance threshold (on Maxwell this is what
        # pushes observable MP read reordering out to d >= 256): chain
        # behind an earlier unresolved load by this thread.
        min_dist = self.profile.store_store_min_distance
        for earlier in self._deferred:
            if (
                not earlier.resolved
                and earlier.thread == thread
                and (
                    earlier.ch == ch
                    or abs(earlier.addr - addr) < min_dist
                )
            ):
                handle = DeferredLoad(
                    thread, sm, addr, ch, slow=False,
                    block_mode=("load", earlier),
                )
                self._deferred.append(handle)
                return handle
        own_pending = None
        own_same_channel = False
        for entry in reversed(buf):
            if entry[_E_ADDR] == addr:
                handle = DeferredLoad(thread, sm, addr, ch, slow=False)
                handle.value = entry[_E_VAL]
                handle.resolved = True
                return handle
            if entry[_E_THREAD] == thread:
                if own_pending is None:
                    own_pending = entry
                if entry[_E_CH] == ch:
                    own_same_channel = True
        if own_same_channel:
            handle = DeferredLoad(
                thread, sm, addr, ch, slow=False, block_mode=("channel", ch)
            )
            self._deferred.append(handle)
            return handle
        if own_pending is not None:
            if self.rng.random() >= self.bypass_p[own_pending[_E_CH]]:
                handle = DeferredLoad(
                    thread, sm, addr, ch, slow=False,
                    block_mode=("stores", None),
                )
                self._deferred.append(handle)
                return handle
            self.n_bypasses += 1
        slow = self.rng.random() < self.slow_p[ch]
        handle = DeferredLoad(thread, sm, addr, ch, slow)
        if slow:
            self.n_slow_loads += 1
            self._deferred.append(handle)
        else:
            self._resolve_pending(handle)
        return handle

    def poll_load(self, handle: DeferredLoad) -> object:
        """Value of a deferred load, or ``STALL`` if still in flight."""
        if not handle.resolved:
            return STALL
        return handle.value

    # ------------------------------------------------------------------
    # fences
    # ------------------------------------------------------------------
    def thread_pending(self, sm: int, thread: int) -> bool:
        """True when the thread has buffered stores or in-flight loads."""
        for entry in self.sm_buffers[sm]:
            if entry[_E_THREAD] == thread:
                return True
        return any(
            h.thread == thread and not h.resolved for h in self._deferred
        )

    def fence_begin(self, thread: int) -> None:
        """Mark a thread as fencing: its stores get priority FIFO drain.

        The thread's unconstrained slow loads resolve immediately;
        blocked loads resolve naturally once the priority drain clears
        their blocking stores.
        """
        self._fencing.add(thread)
        for handle in self._deferred:
            if handle.thread == thread and handle.block_mode is None:
                self._resolve_pending(handle)
        self._deferred = [h for h in self._deferred if not h.resolved]

    def fence_done(self, sm: int, thread: int) -> bool:
        """True when the fencing thread has no pending stores or loads."""
        for entry in self.sm_buffers[sm]:
            if entry[_E_THREAD] == thread:
                return False
        for handle in self._deferred:
            if handle.thread == thread and not handle.resolved:
                return False
        self._fencing.discard(thread)
        return True

    def drain_thread(self, sm: int, thread: int) -> None:
        """Synchronously drain one thread's stores in order (barriers)."""
        buf = self.sm_buffers[sm]
        keep = []
        for entry in buf:
            if entry[_E_THREAD] == thread:
                self._commit(entry)
            else:
                keep.append(entry)
        buf[:] = keep

    # ------------------------------------------------------------------
    # the drain pump, called once per engine tick
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one tick: resolve slow loads, drain store buffers."""
        self.tick += 1
        if self._deferred:
            self._step_deferred()
        for sm, buf in enumerate(self.sm_buffers):
            if buf:
                self._step_buffer(sm, buf)

    def _step_deferred(self) -> None:
        still = []
        for handle in self._deferred:
            if handle.resolved:
                continue
            if handle.block_mode is not None:
                if self._unblocked(handle):
                    self._resolve_pending(handle)
                else:
                    still.append(handle)
            elif self.rng.random() < self.resolve_p[handle.ch]:
                self._resolve_pending(handle)
            else:
                still.append(handle)
        self._deferred = still

    def _unblocked(self, handle: DeferredLoad) -> bool:
        mode, arg = handle.block_mode
        if mode == "load":
            return arg.resolved
        for entry in self.sm_buffers[handle.sm]:
            if entry[_E_THREAD] != handle.thread:
                continue
            if mode == "stores" or entry[_E_CH] == arg:
                return False
        return True

    def _step_buffer(self, sm: int, buf: list[list]) -> None:
        rng = self.rng
        fencing = self._fencing
        if fencing:
            # Priority FIFO drain for fencing threads.
            for entry in [e for e in buf if e[_E_THREAD] in fencing]:
                buf.remove(entry)
                self._commit(entry)
            if not buf:
                return
        horizon = self.tick - _MIN_AGE
        committed = 0
        while buf and committed < _DRAIN_WIDTH:
            head = buf[0]
            if head[_E_TICK] > horizon:
                break  # head too young; younger entries behind it too
            idx = 0
            if len(buf) > 1:
                idx = self._maybe_swap(buf, horizon, rng)
            if idx != 0:
                # A successful swap *is* the early out-of-order commit;
                # the overtaken head is parked in the congested queue.
                entry = buf.pop(idx)
                buf[0][_E_PARKED] = True
                self._commit(entry)
                committed += 1
                continue
            entry = buf[0]
            p = self.drain_p[entry[_E_CH]]
            if entry[_E_PARKED]:
                p *= _PARKED_DRAIN
            if rng.random() < p:
                del buf[0]
                self._commit(entry)
                committed += 1
            else:
                break

    def _maybe_swap(
        self, buf: list[list], horizon: int, rng: np.random.Generator
    ) -> int:
        """Index of the entry to drain: 0, or a younger entry that is
        allowed to overtake the head."""
        head = buf[0]
        min_dist = self.profile.store_store_min_distance
        for j in range(1, len(buf)):
            cand = buf[j]
            if cand[_E_TICK] > horizon:
                break
            if cand[_E_CH] == head[_E_CH]:
                if self.profile.store_swap_leak <= 0.0:
                    continue
                # Maxwell write-combining leak: rare same-channel swap.
                if rng.random() < self.profile.store_swap_leak:
                    if self._oldest_for_addr(buf, j):
                        self.n_swaps += 1
                        return j
                continue
            if abs(cand[_E_ADDR] - head[_E_ADDR]) < min_dist:
                continue
            if rng.random() < self.swap_p[head[_E_CH], cand[_E_CH]]:
                if self._oldest_for_addr(buf, j):
                    self.n_swaps += 1
                    return j
            return 0
        return 0

    @staticmethod
    def _oldest_for_addr(buf: list[list], j: int) -> bool:
        """Coherence guard: ``buf[j]`` may only overtake if no older entry
        targets the same address."""
        addr = buf[j][_E_ADDR]
        return all(buf[i][_E_ADDR] != addr for i in range(j))

    # ------------------------------------------------------------------
    # commit / resolve internals
    # ------------------------------------------------------------------
    def _commit(self, entry: list) -> None:
        # Program order within a channel: this thread's earlier deferred
        # loads of this address *or channel* must resolve before the
        # store lands (LB-shaped reordering needs distinct channels).
        self._resolve_matching(entry[_E_THREAD], entry[_E_ADDR], entry[_E_CH])
        self.mem[entry[_E_ADDR]] = entry[_E_VAL]
        self.n_drains += 1

    def _resolve_matching(
        self, thread: int, addr: int, ch: int | None = None
    ) -> None:
        if not self._deferred:
            return
        for handle in self._deferred:
            if (
                not handle.resolved
                and handle.thread == thread
                and (handle.addr == addr or (ch is not None and handle.ch == ch))
            ):
                self._resolve_pending(handle)
        self._deferred = [h for h in self._deferred if not h.resolved]

    def _resolve_pending(self, handle: DeferredLoad) -> None:
        handle.value = self.mem.get(handle.addr, 0)
        handle.resolved = True

    # ------------------------------------------------------------------
    # host-side access (kernel launch boundaries; no weak effects)
    # ------------------------------------------------------------------
    def host_read(self, buf, idx: int) -> object:
        """Read committed memory from the host (after a flush)."""
        return self.mem.get(buf.addr(idx), 0)

    def host_write(self, buf, idx: int, val: object) -> None:
        """Initialise memory from the host before a launch."""
        self.mem[buf.addr(idx)] = val

    def host_fill(self, buf, values) -> None:
        """Bulk host initialisation of a buffer."""
        for i, val in enumerate(values):
            self.mem[buf.addr(i)] = val

    # ------------------------------------------------------------------
    # introspection helpers (tests, debugging)
    # ------------------------------------------------------------------
    def pending_stores(self) -> int:
        """Total stores currently buffered across all SMs."""
        return sum(len(buf) for buf in self.sm_buffers)

    def flush_all(self) -> None:
        """Commit every buffered store in FIFO order (end of kernel)."""
        for buf in self.sm_buffers:
            for entry in buf:
                self._commit(entry)
            buf.clear()
        for handle in self._deferred:
            if not handle.resolved:
                self._resolve_pending(handle)
        self._deferred = []
